"""Deterministic fault injection for chaos testing (see README).

Public surface: :func:`fire_fault` / :func:`corrupt_payload` are the
engine-side checks threaded through the storage stack; tests configure the
process-global :class:`FaultInjector` through :func:`get_injector` or the
``REPRO_FAULTS`` spec; :func:`fault_points` enumerates every registered
injection point at runtime.
"""

from .injector import (FAULTS_ENV_VAR, FaultInjector, FaultRule,
                       corrupt_payload, fault_points, fire_fault,
                       get_injector, parse_spec)
from .points import FAULT_POINTS, FaultPoint

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPoint",
    "FaultRule",
    "corrupt_payload",
    "fault_points",
    "fire_fault",
    "get_injector",
    "parse_spec",
]
