"""Central registry of fault-injection point names.

Every place in the engine that calls :func:`repro.faults.fire_fault` or
:func:`repro.faults.corrupt_payload` names a point registered here, and the
FAULT001 lint rule (``python -m repro.analysis src/``) proves the two stay in
sync: firing an unregistered point or registering a point that is never fired
both fail the build, and each registered point must appear in the README's
fault-point table.  Keeping the registry in one flat module also makes every
point discoverable at runtime (``repro.faults.fault_points()``), so chaos
tests can enumerate the fault surface instead of hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class FaultPoint:
    """One named place where the engine consults the fault injector."""

    name: str
    description: str


#: Every injection point the engine exposes, in storage-stack order.
#: FAULT001 extracts this tuple statically, so entries must be literal
#: ``FaultPoint("name", "...")`` calls.
FAULT_POINTS: Tuple[FaultPoint, ...] = (
    FaultPoint("device.read",
               "Start of SimulatedStorageDevice.record_read, before counters."),
    FaultPoint("device.write",
               "Start of SimulatedStorageDevice.record_write, before counters."),
    FaultPoint("file.read_page",
               "File-manager page read; corrupt rules flip bytes in the "
               "uncompressed page before its checksum is verified."),
    FaultPoint("file.write_page",
               "Start of file-manager write_page, before any state changes."),
    FaultPoint("buffercache.miss",
               "Buffer-cache miss, before the backing file-manager fetch."),
    FaultPoint("wal.append",
               "WAL append before the record is logged; corrupt rules flip "
               "payload bytes so the record's CRC no longer matches (a torn "
               "record for recovery to truncate)."),
    FaultPoint("wal.truncate",
               "Start of WAL truncate/truncate_partition."),
    FaultPoint("scheduler.flush",
               "Before each attempt of a background flush task."),
    FaultPoint("scheduler.merge",
               "Before each attempt of a background merge task."),
    FaultPoint("cache.lookup",
               "Plan-cache / column-slice-cache lookup; injected errors "
               "degrade to a cache miss (re-plan / re-decode), never to a "
               "wrong answer."),
    FaultPoint("cache.store",
               "Plan-cache / column-slice-cache store; injected errors skip "
               "the store, so the entry is rebuilt on the next execution."),
)

_POINT_NAMES = frozenset(point.name for point in FAULT_POINTS)


def is_registered(name: str) -> bool:
    return name in _POINT_NAMES
