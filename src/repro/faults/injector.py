"""Deterministic, seedable fault injection.

The engine consults this module at the named points registered in
:mod:`repro.faults.points` (device read/write, file-manager page I/O,
buffer-cache misses, WAL append/truncate, scheduler task bodies).  With no
rules configured the check is a flag read — cheap enough to leave compiled
into every hot path.  Rules come from the code API
(``get_injector().add_rule(...)``) or the ``REPRO_FAULTS`` spec:

    point:p=<float>|nth=<int>[:error=transient|permanent|corrupt]
         [:seed=<int>][:times=<int>]

with multiple rules separated by ``;``.  A probability rule fires each hit
with chance ``p`` from the rule's own seeded RNG; an ``nth`` rule fires on
every nth hit of its point.  ``times`` caps the total number of firings.
Identical seeds and schedules produce identical fault sequences, which is
what lets the chaos suite replay a failing schedule exactly.

``error`` picks the raised type: ``transient`` →
:class:`~repro.errors.TransientIOError` (the scheduler retries these with
backoff), ``permanent`` → :class:`~repro.errors.PermanentIOError`,
``corrupt`` → byte-flip the payload at :func:`corrupt_payload` points so the
page/record checksum catches it downstream (at plain :func:`fire_fault`
points a corrupt rule raises :class:`~repro.errors.CorruptPageError`
directly).
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from ..config import env_str
from ..errors import (CorruptPageError, FaultSpecError, PermanentIOError,
                      TransientIOError)
from ..obs import MetricsRegistry, get_registry
from .points import FAULT_POINTS, FaultPoint, is_registered

#: Spec string configuring the process-global injector, read lazily on the
#: first fault check so tests can monkeypatch it before touching storage.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_ERROR_CLASSES = ("transient", "permanent", "corrupt")


class FaultRule:
    """One trigger: fire ``error`` at ``point`` per ``probability``/``nth``."""

    __slots__ = ("point", "error", "probability", "nth", "seed", "times",
                 "hits", "fires", "_rng")

    def __init__(self, point: str, probability: Optional[float] = None,
                 nth: Optional[int] = None, error: str = "transient",
                 seed: Optional[int] = None, times: Optional[int] = None) -> None:
        if not is_registered(point):
            raise FaultSpecError(f"unknown fault point {point!r}; see "
                                 f"repro.faults.fault_points() for the registry")
        if (probability is None) == (nth is None):
            raise FaultSpecError(
                f"fault rule for {point!r} needs exactly one trigger: "
                f"p=<float> or nth=<int>")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise FaultSpecError(f"fault probability must be in [0, 1], got {probability}")
        if nth is not None and nth < 1:
            raise FaultSpecError(f"fault nth must be >= 1, got {nth}")
        if error not in _ERROR_CLASSES:
            raise FaultSpecError(f"unknown fault error class {error!r}; "
                                 f"expected one of {', '.join(_ERROR_CLASSES)}")
        if times is not None and times < 1:
            raise FaultSpecError(f"fault times must be >= 1, got {times}")
        self.point = point
        self.probability = probability
        self.nth = nth
        self.error = error
        # Unseeded rules still get a deterministic stream (derived from the
        # point name) so two runs of the same schedule inject identically.
        self.seed = seed if seed is not None else zlib.crc32(point.encode("utf-8"))
        self.times = times
        self.hits = 0
        self.fires = 0
        self._rng = random.Random(self.seed)

    # requires-lock: FaultInjector._lock
    def should_fire(self) -> bool:
        self.hits += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.probability is not None:
            fire = self._rng.random() < self.probability
        else:
            fire = self.hits % self.nth == 0
        if fire:
            self.fires += 1
        return fire

    def describe(self) -> str:
        trigger = f"p={self.probability}" if self.probability is not None else f"nth={self.nth}"
        suffix = f":times={self.times}" if self.times is not None else ""
        return f"{self.point}:{trigger}:error={self.error}:seed={self.seed}{suffix}"


class FaultInjector:
    """Holds fault rules and decides, per hit, whether a point fires.

    Thread-safe: rule state (hit counters, RNG streams) mutates under
    ``_lock``; the raise itself happens after the lock is released.  The
    ``active`` flag is a plain bool read without the lock on the no-rules
    fast path — it only changes when rules are (re)configured.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._rules: List[FaultRule] = []  # guarded-by: _lock
        self._hit_counts: Dict[str, int] = {}  # guarded-by: _lock
        self.active = False
        self.metrics = metrics if metrics is not None else get_registry()
        self._counters: Dict[str, object] = {}

    # -- configuration ---------------------------------------------------------

    def add_rule(self, point: str, probability: Optional[float] = None,
                 nth: Optional[int] = None, error: str = "transient",
                 seed: Optional[int] = None, times: Optional[int] = None) -> FaultRule:
        rule = FaultRule(point, probability=probability, nth=nth, error=error,
                         seed=seed, times=times)
        with self._lock:
            self._rules.append(rule)
        self.active = True
        return rule

    def load_spec(self, spec: str) -> List[FaultRule]:
        """Parse a ``REPRO_FAULTS`` spec string and add every rule in it."""
        return [self.add_rule(point, **kwargs) for point, kwargs in parse_spec(spec)]

    def clear(self) -> None:
        with self._lock:
            self._rules = []
            self._hit_counts = {}
        self.active = False

    def rules(self) -> List[str]:
        """Human-readable descriptions of the configured rules."""
        with self._lock:
            return [rule.describe() for rule in self._rules]

    def hit_counts(self) -> Dict[str, int]:
        """Times each point was *consulted* (fired or not) since configure."""
        with self._lock:
            return dict(self._hit_counts)

    # -- the hot path ----------------------------------------------------------

    def _evaluate(self, point: str) -> Optional[str]:
        """Return the error class to inject at ``point``, or ``None``."""
        if not self.active:
            return None
        triggered = None
        with self._lock:
            hit = False
            for rule in self._rules:
                if rule.point != point:
                    continue
                hit = True
                if triggered is None and rule.should_fire():
                    triggered = rule.error
            if hit:
                self._hit_counts[point] = self._hit_counts.get(point, 0) + 1
        if triggered is not None:
            counter = self._counters.get(point)
            if counter is None:
                counter = self.metrics.counter("faults_injected_total", point=point)
                self._counters[point] = counter
            counter.inc()
        return triggered

    def fire(self, point: str) -> None:
        """Raise the injected error for ``point`` if a rule triggers."""
        error = self._evaluate(point)
        if error is None:
            return
        if error == "transient":
            raise TransientIOError(f"injected transient I/O fault at {point}")
        if error == "permanent":
            raise PermanentIOError(f"injected permanent I/O fault at {point}")
        raise CorruptPageError(f"injected corruption at {point}")

    def corrupt(self, point: str, payload: bytes) -> bytes:
        """Maybe corrupt ``payload`` at ``point`` (or raise, per the rule)."""
        error = self._evaluate(point)
        if error is None or not payload:
            return payload
        if error == "transient":
            raise TransientIOError(f"injected transient I/O fault at {point}")
        if error == "permanent":
            raise PermanentIOError(f"injected permanent I/O fault at {point}")
        mutated = bytearray(payload)
        # Deterministic position: rule RNGs drive firing decisions, so reuse
        # a cheap hash of the payload length + fire ordinal via the counters.
        index = zlib.crc32(payload[:16]) % len(mutated)
        mutated[index] ^= 0xFF
        return bytes(mutated)


# The process-global injector every engine fault check consults.  Created
# empty at import; the REPRO_FAULTS spec is folded in lazily on first use so
# tests can set the variable before any storage is touched.
_INJECTOR = FaultInjector()
_env_loaded = False


def get_injector() -> FaultInjector:
    """The process-global injector (spec from ``REPRO_FAULTS`` applied once)."""
    global _env_loaded
    if not _env_loaded:
        _env_loaded = True
        spec = env_str(FAULTS_ENV_VAR)
        if spec:
            _INJECTOR.load_spec(spec)
    return _INJECTOR


def fire_fault(point: str) -> None:
    """Engine-side check: raise the injected error for ``point`` if due."""
    injector = get_injector()
    if injector.active:
        injector.fire(point)


def corrupt_payload(point: str, payload: bytes) -> bytes:
    """Engine-side check for payload-carrying points (pages, WAL records)."""
    injector = get_injector()
    if injector.active:
        return injector.corrupt(point, payload)
    return payload


def fault_points() -> Tuple[FaultPoint, ...]:
    """Every registered injection point (name + description)."""
    return FAULT_POINTS


def parse_spec(spec: str) -> List[Tuple[str, dict]]:
    """Parse a ``REPRO_FAULTS`` string into ``(point, rule_kwargs)`` pairs."""
    parsed: List[Tuple[str, dict]] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        segments = chunk.split(":")
        point = segments[0].strip()
        kwargs: dict = {}
        for segment in segments[1:]:
            key, sep, value = segment.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise FaultSpecError(f"malformed fault spec segment {segment!r} "
                                     f"in rule {chunk!r}")
            try:
                if key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key == "nth":
                    kwargs["nth"] = int(value)
                elif key == "error":
                    kwargs["error"] = value
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "times":
                    kwargs["times"] = int(value)
                else:
                    raise FaultSpecError(f"unknown fault spec key {key!r} "
                                         f"in rule {chunk!r}")
            except ValueError:
                raise FaultSpecError(f"bad value {value!r} for {key!r} "
                                     f"in rule {chunk!r}") from None
        # Validation (registered point, exactly-one trigger) happens in
        # FaultRule so the code API and the spec path agree exactly.
        parsed.append((point, kwargs))
    return parsed
