"""LSM lifecycle callbacks — the hook the tuple compactor piggybacks on.

The paper's central architectural idea is that flush (and merge) operations
are a natural place to run extra work over the records being written: the
records are immutable for the duration of the operation and the operation is
atomic, so a transformation applied during it is atomic too (paper §3.1.2).
AsterixDB exposes this through LSM I/O operation callbacks; this module
defines the equivalent interface.

:class:`FlushCallback` is a no-op base class.  The engine invokes it as::

    callback.begin_flush(component_id)
    for entry in memtable (key order):
        callback.process_antischema(antischema)        # deletes & upserts
        payload = callback.transform_record(key, record, encoded)   # inserts
    schema_bytes, schema = callback.end_flush()

and, for merges::

    schema_bytes, schema = callback.select_merge_schema(components)

The tuple compactor (:mod:`repro.core.tuple_compactor`) implements schema
inference and record compaction on top of these hooks; datasets without the
compactor run with the default pass-through behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..schema import InferredSchema
from .component import OnDiskComponent
from .component_id import ComponentId


class FlushCallback:
    """Pass-through lifecycle callback (no schema inference, no compaction)."""

    #: Whether delete/upsert operations must fetch the old record's
    #: anti-schema via a point lookup (paper §3.2.2).  Pass-through datasets
    #: skip that lookup entirely, which is why the paper's open/closed
    #: configurations ingest the 50 %-update workload at insert-only speed.
    needs_antischema = False

    def begin_flush(self, component_id: ComponentId) -> None:
        """Called when a flush starts, before any entry is processed."""

    def transform_record(self, key: Any, record: Optional[Dict[str, Any]], encoded: bytes) -> bytes:
        """Transform one inserted record's payload before it is written.

        The default keeps the in-memory encoding unchanged; the tuple
        compactor returns the compacted form here.
        """
        return encoded

    def process_antischema(self, antischema: Optional[Dict[str, Any]]) -> None:
        """Handle the anti-schema carried by a delete/upsert entry."""

    def end_flush(self) -> Tuple[bytes, Optional[InferredSchema]]:
        """Called after the last entry; returns the schema blob to persist."""
        return b"", None

    def select_merge_schema(self, components: Sequence[OnDiskComponent]) -> Tuple[bytes, Optional[InferredSchema]]:
        """Pick the schema persisted with a merged component.

        The default persists nothing; the tuple compactor returns the most
        recent component's schema (paper §3.1: merges never need to touch the
        in-memory schema, so flushes and merges can proceed concurrently).
        """
        return b"", None

    def on_component_deleted(self, component: OnDiskComponent) -> None:
        """Called when a merged-away (or invalid) component is dropped."""

    def snapshot_state(self) -> Any:
        """Capture whatever cumulative state a flush mutates.

        Taken by the engine before each flush attempt so a failed attempt can
        be rolled back with :meth:`restore_state` and retried safely — the
        tuple compactor's inferred schema grows in ``transform_record`` /
        ``process_antischema``, and replaying a half-processed memtable
        without the rollback would double-count every field.  The default
        callback keeps no state.
        """
        return None

    def restore_state(self, state: Any) -> None:
        """Roll back to a :meth:`snapshot_state` capture after a failed flush."""
