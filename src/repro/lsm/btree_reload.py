"""Re-opening auxiliary per-component B+-trees after a restart.

Primary-key indexes and secondary indexes are written with their own footer
and metadata section (see
:meth:`repro.lsm.lsm_index.LSMBTree._build_auxiliary_indexes`), so after a
crash they can simply be re-opened rather than rebuilt.  An auxiliary file
that is itself INVALID (crash during its construction) is discarded; the
information it held is reconstructable from the primary component, so the
recovered component just runs without it.
"""

from __future__ import annotations

from ..btree import BTree
from .component import OnDiskComponent, read_component_metadata


def reload_auxiliary_tree(index, component: OnDiskComponent) -> None:
    """Attach the primary-key and secondary index trees of ``component``."""
    manager = index.buffer_cache.file_manager
    if index.maintain_primary_key_index:
        pk_file = component.file_name + ".pk"
        if manager.exists(pk_file):
            metadata = read_component_metadata(index.buffer_cache, pk_file)
            if metadata is not None:
                component.primary_key_file = pk_file
                component.primary_key_index = BTree(index.buffer_cache, pk_file, metadata.btree_info)
            else:
                manager.delete_file(pk_file)
    if index.secondary_indexes:
        component.secondary_files = {}
        component.secondary_trees = {}
        component.secondary_stats = {}
        for definition in index.secondary_indexes:
            ix_file = f"{component.file_name}.ix.{definition.name}"
            if not manager.exists(ix_file):
                continue
            metadata = read_component_metadata(index.buffer_cache, ix_file)
            if metadata is None:
                manager.delete_file(ix_file)
                continue
            tree = BTree(index.buffer_cache, ix_file, metadata.btree_info)
            component.secondary_files[definition.name] = ix_file
            component.secondary_trees[definition.name] = tree
            # Re-derive this component's field statistics for the cost model
            # from two page reads: the tree is sorted on (value, primary_key),
            # so min/max are the first and last entries and the count is in
            # the component metadata — no full tree walk needed.
            from ..datasets.stats import FieldStatistics

            statistics = FieldStatistics(field_path=definition.field_path or ())
            statistics.count = metadata.record_count
            first, last = tree.first_entry(), tree.last_entry()
            if first is not None and last is not None:
                statistics.min_value = first.key[0]
                statistics.max_value = last.key[0]
            component.secondary_stats[definition.name] = statistics
