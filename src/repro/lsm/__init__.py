"""LSM storage engine: components, flush/merge, policies, recovery."""

from .component import (
    ComponentMetadata,
    ComponentWriter,
    InMemoryComponent,
    MemEntry,
    OnDiskComponent,
    read_component_metadata,
)
from .component_id import ComponentId
from .lifecycle import FlushCallback
from .lsm_index import (
    IngestStats,
    LSMBTree,
    SealedMemtable,
    SearchResult,
    SecondaryIndexDef,
)
from .merge_policy import (
    ConstantMergePolicy,
    MergePolicy,
    NoMergePolicy,
    PrefixMergePolicy,
    make_merge_policy,
)
from .recovery import RecoveryReport, recover_index
from .scheduler import LSMIOScheduler, SchedulerStats

__all__ = [
    "ComponentId",
    "ComponentMetadata",
    "ComponentWriter",
    "InMemoryComponent",
    "MemEntry",
    "OnDiskComponent",
    "read_component_metadata",
    "FlushCallback",
    "LSMBTree",
    "SearchResult",
    "SecondaryIndexDef",
    "IngestStats",
    "MergePolicy",
    "NoMergePolicy",
    "ConstantMergePolicy",
    "PrefixMergePolicy",
    "make_merge_policy",
    "RecoveryReport",
    "recover_index",
    "SealedMemtable",
    "LSMIOScheduler",
    "SchedulerStats",
]
