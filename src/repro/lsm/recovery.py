"""Crash recovery for LSM indexes (paper §2.2 and §3.1.2).

Recovery follows AsterixDB's protocol:

1. discover the component files of the index and inspect their validity —
   a component whose footer never made it to disk is INVALID and removed;
2. reload the surviving VALID components, newest first, and load the
   *newest* valid component's persisted schema into the tuple compactor
   ("As C0 is the newest valid flushed component, the recovery manager will
   read and load the schema S0 into memory");
3. replay the write-ahead log records that were not yet covered by a valid
   flush to rebuild the in-memory component;
4. flush the restored in-memory component, during which the tuple compactor
   operates normally.

Because the engine is single-process, "crash" in tests and examples means:
throw away the :class:`LSMBTree` object (its memtable and component list)
while keeping the page files and the WAL, then run :func:`recover_index`
over a freshly constructed index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ReproError
from ..schema import InferredSchema
from ..storage.wal import LogRecordType, WriteAheadLog
from ..types import Datatype
from .btree_reload import reload_auxiliary_tree
from .component import OnDiskComponent, read_component_metadata
from .lsm_index import LSMBTree


@dataclass
class RecoveryReport:
    """What recovery did — surfaced to callers, tests, and examples."""

    valid_components: int = 0
    invalid_components_removed: int = 0
    replayed_log_records: int = 0
    #: WAL records dropped by torn-tail detection: the log is truncated at
    #: the first record whose CRC32 no longer matches (a crash mid-append).
    torn_records_dropped: int = 0
    schema_loaded: bool = False
    flushed_after_replay: bool = False
    removed_files: List[str] = field(default_factory=list)


def recover_index(index: LSMBTree, wal: Optional[WriteAheadLog] = None,
                  datatype: Optional[Datatype] = None,
                  payload_decoder: Optional[Callable[[bytes], Dict[str, Any]]] = None,
                  flush_after_replay: bool = True) -> RecoveryReport:
    """Bring a freshly constructed index back to its pre-crash state.

    Parameters
    ----------
    index:
        A new :class:`LSMBTree` configured identically to the crashed one
        (same name, partition, buffer cache, callback, policies).
    wal:
        The surviving write-ahead log; when omitted, only component
        discovery/validation happens.
    datatype:
        Declared datatype used to deserialize persisted schemas.
    payload_decoder:
        Decodes a WAL payload back into a record dict for replayed
        inserts/upserts (needed because the memtable keeps record objects
        alongside their encodings).
    """
    report = RecoveryReport()
    manager = index.buffer_cache.file_manager
    prefix = index.file_prefix()
    component_files = [
        name for name in manager.list_files()
        if name.startswith(prefix) and ".pk" not in name and ".ix." not in name
    ]

    recovered: List[OnDiskComponent] = []
    for file_name in component_files:
        metadata = read_component_metadata(index.buffer_cache, file_name)
        if metadata is None:
            # INVALID component: remove it and any auxiliary files it left.
            report.invalid_components_removed += 1
            report.removed_files.append(file_name)
            index.buffer_cache.invalidate_file(file_name)
            manager.delete_file(file_name)
            for candidate in list(manager.list_files()):
                if candidate.startswith(file_name + "."):
                    manager.delete_file(candidate)
                    report.removed_files.append(candidate)
            continue
        schema = None
        if metadata.schema_bytes:
            schema = InferredSchema.from_bytes(metadata.schema_bytes, datatype)
        component = OnDiskComponent(metadata.component_id, file_name, index.buffer_cache,
                                    metadata, schema=schema, valid=True)
        reload_auxiliary_tree(index, component)
        recovered.append(component)
    recovered.sort(key=lambda component: component.component_id, reverse=True)
    index.components = recovered
    report.valid_components = len(recovered)
    if recovered:
        index._next_sequence = recovered[0].component_id.max_seq + 1

    # Load the newest valid component's schema into the tuple compactor.
    loader = getattr(index.flush_callback, "load_schema", None)
    if loader is not None and recovered and recovered[0].schema is not None:
        loader(recovered[0].schema)
        report.schema_loaded = True

    # Replay the surviving log records into the in-memory component —
    # after cutting the log at the first torn (checksum-failing) record,
    # which models everything a real log would lose after a mid-append
    # power cut.  Only records *behind* the tear replay.
    if wal is not None:
        report.torn_records_dropped = wal.drop_torn_tail()
        for record in wal.replay(dataset=index.name, partition=index.partition):
            report.replayed_log_records += 1
            if record.record_type is LogRecordType.DELETE:
                try:
                    index.delete(record.key)
                except ReproError:
                    # The deleted record's anti-schema may be unavailable if
                    # its insert is also being replayed later; fall back to a
                    # plain anti-matter entry.
                    from .component import MemEntry

                    index.memory_component.put(MemEntry(record.key, is_antimatter=True))
                continue
            if payload_decoder is None:
                raise ReproError("replaying inserts requires a payload_decoder")
            decoded = payload_decoder(record.payload)
            if record.record_type is LogRecordType.INSERT:
                index.insert(record.key, decoded, record.payload)
            else:
                index.upsert(record.key, decoded, record.payload)

    if flush_after_replay and not index.memory_component.is_empty:
        index.flush()
        report.flushed_after_replay = True
    return report
