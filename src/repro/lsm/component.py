"""LSM components: the mutable in-memory component and immutable on-disk ones.

The in-memory component accumulates inserts, deletes (anti-matter entries),
and upserts until its encoded size exceeds the configured memory budget; a
flush then turns it into an on-disk component — an immutable B+-tree page
file followed by a metadata section and a one-page footer.

The footer doubles as the paper's *validity bit* (§2.2): it is the very last
page written during a flush or merge, so a component file without a
complete, well-formed footer is exactly an INVALID component and is removed
during crash recovery.  The metadata section holds the B+-tree shape, the
key range, basic statistics, and — for datasets with the tuple compactor
enabled — the serialized schema snapshot that covers the component
(paper §3.1: "the component's inferred in-memory schema is persisted in the
component's Metadata Page before setting the component as VALID").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..btree import BTree, BTreeInfo, BulkLoader, LeafEntry
from ..errors import ComponentStateError, StorageError
from ..schema import InferredSchema
from ..storage.buffer_cache import BufferCache
from .component_id import ComponentId

_FOOTER_MAGIC = 0x4C534D43  # "LSMC"
_FOOTER = struct.Struct("<IIIII")  # magic, valid, metadata_start, metadata_pages, metadata_length


@dataclass
class MemEntry:
    """One entry of the in-memory component."""

    key: Any
    is_antimatter: bool
    record: Optional[Dict[str, Any]] = None
    encoded: bytes = b""
    #: Anti-schema of the record version this entry supersedes (delete/upsert
    #: over an already-flushed record); processed by the tuple compactor at
    #: flush time and never written to disk.
    antischema: Optional[Dict[str, Any]] = None

    @property
    def size_bytes(self) -> int:
        return len(self.encoded) + 64  # entry payload + bookkeeping overhead


class InMemoryComponent:
    """The mutable component receiving all writes (one per partition index)."""

    def __init__(self) -> None:
        self._entries: Dict[Any, MemEntry] = {}
        self.size_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def get(self, key: Any) -> Optional[MemEntry]:
        return self._entries.get(key)

    def put(self, entry: MemEntry) -> None:
        existing = self._entries.get(entry.key)
        if existing is not None:
            self.size_bytes -= existing.size_bytes
        self._entries[entry.key] = entry
        self.size_bytes += entry.size_bytes

    def sorted_entries(self) -> List[MemEntry]:
        """Entries in key order (the flush path sorts once here).

        The returned list is a *snapshot*: the copy of the entry dict is a
        single C-level operation (atomic under the GIL), so concurrent
        readers — parallel query workers scanning while another partition of
        the same dataset flushes — never observe a half-mutated dict.
        """
        entries = list(self._entries.values())
        entries.sort(key=lambda entry: entry.key)
        return entries

    def clear(self) -> None:
        self._entries.clear()
        self.size_bytes = 0

    def iter_entries(self) -> Iterator[MemEntry]:
        return iter(self._entries.values())


@dataclass
class ComponentMetadata:
    """Everything persisted in a component's metadata section."""

    component_id: ComponentId
    btree_info: BTreeInfo
    entry_count: int
    record_count: int
    antimatter_count: int
    min_key: Any = None
    max_key: Any = None
    schema_bytes: bytes = b""

    def to_bytes(self) -> bytes:
        from ..btree.keycodec import encode_key

        def _key_blob(key: Any) -> bytes:
            if key is None:
                return struct.pack("<I", 0)
            payload = encode_key(key)
            return struct.pack("<I", len(payload)) + payload

        header = struct.pack(
            "<iiIIIIIII",
            self.component_id.min_seq,
            self.component_id.max_seq,
            self.btree_info.root_page,
            self.btree_info.leaf_count,
            self.btree_info.page_count,
            self.btree_info.entry_count,
            self.entry_count,
            self.record_count,
            self.antimatter_count,
        )
        schema_blob = struct.pack("<I", len(self.schema_bytes)) + self.schema_bytes
        return header + _key_blob(self.min_key) + _key_blob(self.max_key) + schema_blob

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ComponentMetadata":
        from ..btree.keycodec import decode_key

        values = struct.unpack_from("<iiIIIIIII", payload, 0)
        cursor = struct.calcsize("<iiIIIIIII")

        def _read_key(cursor: int) -> Tuple[Any, int]:
            (length,) = struct.unpack_from("<I", payload, cursor)
            cursor += 4
            if length == 0:
                return None, cursor
            key, _ = decode_key(payload, cursor)
            return key, cursor + length

        min_key, cursor = _read_key(cursor)
        max_key, cursor = _read_key(cursor)
        (schema_length,) = struct.unpack_from("<I", payload, cursor)
        cursor += 4
        schema_bytes = payload[cursor:cursor + schema_length]
        return cls(
            component_id=ComponentId(values[0], values[1]),
            btree_info=BTreeInfo(root_page=values[2], leaf_count=values[3],
                                 page_count=values[4], entry_count=values[5]),
            entry_count=values[6],
            record_count=values[7],
            antimatter_count=values[8],
            min_key=min_key,
            max_key=max_key,
            schema_bytes=schema_bytes,
        )


class OnDiskComponent:
    """One immutable, flushed or merged LSM component."""

    def __init__(self, component_id: ComponentId, file_name: str,
                 buffer_cache: BufferCache, metadata: ComponentMetadata,
                 schema: Optional[InferredSchema] = None, valid: bool = False) -> None:
        self.component_id = component_id
        self.file_name = file_name
        self.buffer_cache = buffer_cache
        self.metadata = metadata
        self.schema = schema
        self.valid = valid
        self.btree = BTree(buffer_cache, file_name, metadata.btree_info)
        #: Optional key-only B+-tree used to cheapen upsert existence checks.
        self.primary_key_index: Optional[BTree] = None
        self.primary_key_file: Optional[str] = None

    # -- convenience -----------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self.metadata.record_count

    @property
    def entry_count(self) -> int:
        return self.metadata.entry_count

    def size_bytes(self) -> int:
        total = self.buffer_cache.file_manager.file_size(self.file_name)
        if self.primary_key_file is not None:
            total += self.buffer_cache.file_manager.file_size(self.primary_key_file)
        return total

    def search(self, key: Any) -> Optional[LeafEntry]:
        if not self.valid:
            raise ComponentStateError(f"component {self.component_id} is not VALID")
        return self.btree.search(key)

    def scan(self) -> Iterator[LeafEntry]:
        if not self.valid:
            raise ComponentStateError(f"component {self.component_id} is not VALID")
        return self.btree.scan_all()

    def key_may_exist(self, key: Any) -> bool:
        """Existence check served by the primary-key index when present."""
        if self.primary_key_index is not None:
            return self.primary_key_index.search(key) is not None
        return self.search(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "VALID" if self.valid else "INVALID"
        return f"OnDiskComponent({self.component_id}, {state}, records={self.record_count})"


class ComponentWriter:
    """Builds one on-disk component file: B+-tree, metadata section, footer."""

    def __init__(self, buffer_cache: BufferCache, file_name: str) -> None:
        self.buffer_cache = buffer_cache
        self.file_name = file_name
        self.page_size = buffer_cache.page_size

    def write(self, component_id: ComponentId, entries: List[LeafEntry],
              schema_bytes: bytes = b"",
              fail_before_footer: bool = False) -> ComponentMetadata:
        """Write the whole component; returns its metadata.

        ``fail_before_footer`` aborts just before the footer page is written,
        leaving the component INVALID on disk — used by crash-recovery tests
        to model a crash in the middle of a flush (paper §3.1.2).
        """
        manager = self.buffer_cache.file_manager
        if manager.exists(self.file_name):
            # Component files are write-once; an existing file is a leftover
            # from a failed earlier attempt (e.g. a transient I/O fault mid
            # flush).  Resuming into it would violate the sequential-write
            # invariant, so recreate from scratch — that is what makes
            # flush/merge tasks safely retryable.
            self.buffer_cache.invalidate_file(self.file_name)
            manager.delete_file(self.file_name)
        manager.create_file(self.file_name)
        info = BulkLoader(self.buffer_cache, self.file_name).build(entries)

        record_count = sum(1 for entry in entries if not entry.is_antimatter)
        antimatter_count = len(entries) - record_count
        metadata = ComponentMetadata(
            component_id=component_id,
            btree_info=info,
            entry_count=len(entries),
            record_count=record_count,
            antimatter_count=antimatter_count,
            min_key=entries[0].key if entries else None,
            max_key=entries[-1].key if entries else None,
            schema_bytes=schema_bytes,
        )
        metadata_blob = metadata.to_bytes()
        metadata_start = info.page_count
        metadata_pages = self._write_metadata(metadata_blob, metadata_start)
        if fail_before_footer:
            raise ComponentStateError("simulated crash before component validation")
        footer = _FOOTER.pack(_FOOTER_MAGIC, 1, metadata_start, metadata_pages, len(metadata_blob))
        footer_page = footer + b"\x00" * (self.page_size - len(footer))
        self.buffer_cache.write_page(self.file_name, metadata_start + metadata_pages, footer_page)
        return metadata

    def _write_metadata(self, blob: bytes, start_page: int) -> int:
        pages = 0
        for offset in range(0, max(len(blob), 1), self.page_size):
            chunk = blob[offset:offset + self.page_size]
            page = chunk + b"\x00" * (self.page_size - len(chunk))
            self.buffer_cache.write_page(self.file_name, start_page + pages, page)
            pages += 1
        return pages


def read_component_metadata(buffer_cache: BufferCache, file_name: str) -> Optional[ComponentMetadata]:
    """Load a component's metadata, or ``None`` when the component is INVALID.

    A component is INVALID when its footer page is missing or malformed —
    i.e. the flush/merge that was writing it never completed.
    """
    manager = buffer_cache.file_manager
    if not manager.exists(file_name):
        return None
    page_count = manager.num_pages(file_name)
    if page_count == 0:
        return None
    try:
        footer_page = buffer_cache.read_page(file_name, page_count - 1)
    except StorageError:
        return None
    magic, valid, metadata_start, metadata_pages, metadata_length = _FOOTER.unpack_from(footer_page, 0)
    if magic != _FOOTER_MAGIC or not valid:
        return None
    blob = bytearray()
    for page_no in range(metadata_start, metadata_start + metadata_pages):
        blob += buffer_cache.read_page(file_name, page_no)
    return ComponentMetadata.from_bytes(bytes(blob[:metadata_length]))
