"""LSM merge policies.

AsterixDB's default is the *prefix* merge policy (paper §4.3): it merges the
suffix of most-recent small components once their count crosses a threshold,
and never touches components that have already grown past the maximum
mergeable size.  A constant policy (merge everything once ``k`` components
accumulate) and a no-merge policy are provided for experiments that want to
isolate flush behaviour from merge behaviour.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ReproError
from .component import OnDiskComponent


class MergePolicy:
    """Decides which on-disk components (newest-first list) to merge."""

    name = "abstract"

    def select_merge(self, components: Sequence[OnDiskComponent]) -> List[OnDiskComponent]:
        """Return the components to merge (possibly empty), newest first.

        The returned components must be contiguous in recency order so their
        component ids remain mergeable.
        """
        raise NotImplementedError


class NoMergePolicy(MergePolicy):
    """Never merge; used by experiments that want pure flush behaviour."""

    name = "none"

    def select_merge(self, components: Sequence[OnDiskComponent]) -> List[OnDiskComponent]:
        return []


class ConstantMergePolicy(MergePolicy):
    """Merge *all* components whenever at least ``component_threshold`` exist."""

    name = "constant"

    def __init__(self, component_threshold: int = 5) -> None:
        if component_threshold < 2:
            raise ReproError("constant merge policy needs a threshold of at least 2")
        self.component_threshold = component_threshold

    def select_merge(self, components: Sequence[OnDiskComponent]) -> List[OnDiskComponent]:
        if len(components) >= self.component_threshold:
            return list(components)
        return []


class PrefixMergePolicy(MergePolicy):
    """AsterixDB's prefix merge policy.

    Looking from the most recent component backwards, collect components whose
    individual size is below ``max_mergable_component_size`` and whose running
    total stays below it as well; once that suffix holds at least
    ``max_tolerable_component_count`` components, merge it.  Components larger
    than the threshold are left alone (they are the already-merged "prefix" of
    the sequence).
    """

    name = "prefix"

    def __init__(self, max_mergable_component_size: int = 1024 * 1024 * 1024,
                 max_tolerable_component_count: int = 5) -> None:
        if max_tolerable_component_count < 2:
            raise ReproError("prefix merge policy needs a component count of at least 2")
        self.max_mergable_component_size = max_mergable_component_size
        self.max_tolerable_component_count = max_tolerable_component_count

    def select_merge(self, components: Sequence[OnDiskComponent]) -> List[OnDiskComponent]:
        mergeable: List[OnDiskComponent] = []
        total_size = 0
        for component in components:  # newest first
            size = component.size_bytes()
            if size > self.max_mergable_component_size:
                break
            if total_size + size > self.max_mergable_component_size:
                break
            mergeable.append(component)
            total_size += size
        if len(mergeable) >= self.max_tolerable_component_count:
            return mergeable
        return []


def make_merge_policy(name: str, max_mergable_component_size: int,
                      max_tolerable_component_count: int) -> MergePolicy:
    """Build a merge policy from an :class:`~repro.config.LSMConfig` triple."""
    if name == "prefix":
        return PrefixMergePolicy(max_mergable_component_size, max_tolerable_component_count)
    if name == "constant":
        return ConstantMergePolicy(max_tolerable_component_count)
    if name == "none":
        return NoMergePolicy()
    raise ReproError(f"unknown merge policy {name!r}")
