"""Background LSM maintenance scheduler: asynchronous flushes and merges.

The paper's tuple-compaction framework piggybacks on AsterixDB's LSM
lifecycle, where flushes and merges are *asynchronous* I/O operations that
overlap ingestion (§2.2: the tree manager schedules them on dedicated
threads while the writer keeps appending to a fresh in-memory component).
:class:`LSMIOScheduler` reproduces that lifecycle: two bounded worker pools
— one for flushes, one for merges — run maintenance off the ingest path,
while :class:`~repro.lsm.LSMBTree` handles memtable rotation, sealing, and
writer backpressure.

Design contract with the index:

* **Per-index ordering** — an index's sealed memtables must flush oldest
  first (component sequence numbers encode recency).  The scheduler does not
  order tasks itself; each submitted flush task pops *the oldest* sealed
  memtable under the index's maintenance lock, so any worker executing any
  task preserves seal order.
* **Failure propagation** — *transient* I/O failures
  (:class:`~repro.errors.TransientIOError`) are retried inside the worker
  with exponential backoff and jitter up to a retry budget
  (``REPRO_RETRY_BUDGET``); tasks restore their pre-attempt state on failure
  so re-running them is safe.  Any other exception — or an exhausted budget —
  is recorded and re-raised (wrapped in :class:`~repro.errors.SchedulerError`)
  by the writer's backpressure wait, by :meth:`drain`, and by :meth:`close`,
  so a failed flush surfaces deterministically instead of hanging writers.
  The latch is explicit: only :meth:`clear_failure` resets it.
* **Quiescence** — :meth:`drain` blocks until every submitted task has
  finished; :meth:`close` drains, then shuts the pools down.  Both are
  idempotent, and a closed scheduler makes indexes fall back to synchronous
  (inline) maintenance, so ``Dataset.close()`` is safe to call twice.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from ..config import env_int
from ..errors import SchedulerError, TransientIOError
from ..faults import fire_fault
from ..obs import MetricsRegistry, StatsDictMixin, get_registry
from ..obs import tracer as _tracer

#: Retries each background task gets for *transient* I/O failures before the
#: failure latches (overridable per scheduler via ``retry_budget=``).
RETRY_BUDGET_ENV_VAR = "REPRO_RETRY_BUDGET"

_DEFAULT_RETRY_BUDGET = 4

#: First-retry backoff in seconds; doubles per attempt, with deterministic
#: jitter in [0.5x, 1x).  Small because simulated-device hiccups clear
#: immediately; a real deployment would raise it by orders of magnitude.
_BACKOFF_BASE_SECONDS = 0.002


@dataclass
class SchedulerStats(StatsDictMixin):
    """Counters describing one scheduler's lifetime activity."""

    flushes_submitted: int = 0
    flushes_completed: int = 0
    merges_submitted: int = 0
    merges_completed: int = 0
    flush_retries: int = 0
    merge_retries: int = 0


class LSMIOScheduler:
    """Bounded worker pools executing LSM flushes and merges asynchronously."""

    def __init__(self, max_flush_workers: int = 2, max_merge_workers: int = 1,
                 metrics: Optional[MetricsRegistry] = None,
                 retry_budget: Optional[int] = None,
                 backoff_base: float = _BACKOFF_BASE_SECONDS) -> None:
        if max_flush_workers < 1:
            raise SchedulerError("max_flush_workers must be >= 1")
        if max_merge_workers < 1:
            raise SchedulerError("max_merge_workers must be >= 1")
        if retry_budget is None:
            try:
                retry_budget = env_int(RETRY_BUDGET_ENV_VAR)
            except ValueError as exc:
                raise SchedulerError(str(exc)) from None
            if retry_budget is None:
                retry_budget = _DEFAULT_RETRY_BUDGET
        if retry_budget < 0:
            raise SchedulerError("retry_budget must be >= 0")
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.max_flush_workers = max_flush_workers
        self.max_merge_workers = max_merge_workers
        self._flush_pool = ThreadPoolExecutor(
            max_workers=max_flush_workers, thread_name_prefix="repro-lsm-flush")
        self._merge_pool = ThreadPoolExecutor(
            max_workers=max_merge_workers, thread_name_prefix="repro-lsm-merge")
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._failure: Optional[BaseException] = None  # guarded-by: _lock
        self.stats = SchedulerStats()
        metrics = metrics if metrics is not None else get_registry()
        self._pending_gauge = metrics.gauge("scheduler_pending_tasks")
        self._submitted_metrics = {
            False: metrics.counter("scheduler_tasks_submitted", kind="flush"),
            True: metrics.counter("scheduler_tasks_submitted", kind="merge"),
        }
        self._completed_metrics = {
            False: metrics.counter("scheduler_tasks_completed", kind="flush"),
            True: metrics.counter("scheduler_tasks_completed", kind="merge"),
        }
        self._retry_metrics = {
            False: metrics.counter("maintenance_retries_total", kind="flush"),
            True: metrics.counter("maintenance_retries_total", kind="merge"),
        }
        # Deterministic jitter stream: chaos runs with a fixed schedule must
        # back off identically, or they stop being replayable.
        self._retry_rng = random.Random(0x5EED)  # guarded-by: _lock

    # ------------------------------------------------------------------ submission

    @property
    def closed(self) -> bool:
        return self._closed

    def submit_flush(self, task: Callable[[], None],
                     on_abandoned: Optional[Callable[[], None]] = None) -> Future:
        """Queue one flush task (must be safe to run on any flush worker).

        ``on_abandoned`` runs exactly once if the submission terminally fails
        (non-transient error, or transient retries exhausted) — the hook for
        releasing bookkeeping the submitter tied to the task's completion.
        """
        return self._submit(self._flush_pool, task, is_merge=False,
                            on_abandoned=on_abandoned)

    def submit_merge(self, task: Callable[[], None],
                     on_abandoned: Optional[Callable[[], None]] = None) -> Future:
        """Queue one merge task."""
        return self._submit(self._merge_pool, task, is_merge=True,
                            on_abandoned=on_abandoned)

    def _submit(self, pool: ThreadPoolExecutor, task: Callable[[], None],
                is_merge: bool,
                on_abandoned: Optional[Callable[[], None]] = None) -> Future:
        with self._lock:
            if self._closed:
                raise SchedulerError("cannot submit work to a closed scheduler")
            self._pending += 1
            self._pending_gauge.set(self._pending)
            if is_merge:
                self.stats.merges_submitted += 1
            else:
                self.stats.flushes_submitted += 1
            self._submitted_metrics[is_merge].inc()
        try:
            # Carry the submitter's tracing context onto the worker thread:
            # a flush scheduled while an ingest span is open becomes its
            # child in the trace.  No-op (returns `task` itself) when
            # tracing is disabled.
            future = pool.submit(self._run, _tracer.wrap_context(task), is_merge,
                                 on_abandoned)
        except BaseException:
            with self._lock:
                self._pending -= 1
                self._pending_gauge.set(self._pending)
                self._idle.notify_all()
            raise
        return future

    def _run(self, task: Callable[[], None], is_merge: bool,
             on_abandoned: Optional[Callable[[], None]] = None) -> None:
        point = "scheduler.merge" if is_merge else "scheduler.flush"
        try:
            attempt = 0
            while True:
                try:
                    fire_fault(point)
                    task()
                    break
                except TransientIOError:
                    # Classify-retry-or-surface: transient I/O failures are
                    # retried in place with exponential backoff + jitter
                    # (tasks restore their pre-attempt state on failure, see
                    # LSMBTree._flush_memtable_impl), so a hiccup never
                    # latches the scheduler.  Anything else — or a budget
                    # exhausted — surfaces through the failure latch below.
                    if attempt >= self.retry_budget:
                        raise
                    attempt += 1
                    with self._lock:
                        if is_merge:
                            self.stats.merge_retries += 1
                        else:
                            self.stats.flush_retries += 1
                        jitter = 0.5 + 0.5 * self._retry_rng.random()
                    self._retry_metrics[is_merge].inc()
                    time.sleep(self.backoff_base * (2 ** (attempt - 1)) * jitter)
            with self._lock:
                if is_merge:
                    self.stats.merges_completed += 1
                else:
                    self.stats.flushes_completed += 1
                self._completed_metrics[is_merge].inc()
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised at drain
            with self._lock:
                if self._failure is None:
                    self._failure = exc
            if on_abandoned is not None:
                try:
                    on_abandoned()
                except BaseException:  # noqa: BLE001 - the original failure wins
                    pass
        finally:
            with self._lock:
                self._pending -= 1
                self._pending_gauge.set(self._pending)
                self._idle.notify_all()

    # ------------------------------------------------------------------ quiescence

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished (queued or running)."""
        with self._lock:
            return self._pending

    def raise_if_failed(self) -> None:
        """Surface the first background failure, if any, on the caller's thread."""
        with self._lock:
            failure = self._failure
        if failure is not None:
            raise SchedulerError(
                f"background LSM maintenance failed: {failure!r}") from failure

    def clear_failure(self) -> Optional[BaseException]:
        """Explicitly reset the failure latch; returns the cleared exception.

        The latch has deliberate semantics: an in-task retry that *succeeds*
        never sets it, and nothing clears it implicitly — a recorded failure
        keeps surfacing until an operator (or ``Dataset.resume_maintenance``)
        acknowledges it here, then resubmits whatever work it interrupted.
        """
        with self._lock:
            failure = self._failure
            self._failure = None
        return failure

    def drain(self) -> None:
        """Block until every submitted flush/merge has finished.

        Tasks may submit follow-up work (a flush scheduling a merge) while we
        wait; the pending counter covers those too, so returning means the
        maintenance pipeline is genuinely quiet.  Raises
        :class:`~repro.errors.SchedulerError` if any task failed.
        """
        with self._idle:
            while self._pending:
                self._idle.wait(timeout=0.1)
                failure = self._failure
                if failure is not None:
                    break
        self.raise_if_failed()

    def close(self) -> None:
        """Drain, then shut the worker pools down.  Idempotent.

        A drain failure still shuts the pools down (no half-closed state),
        then re-raises, so callers in ``finally`` blocks always release the
        threads.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            self.raise_if_failed()
            return
        try:
            with self._idle:
                while self._pending:
                    self._idle.wait(timeout=0.1)
                    if self._failure is not None:
                        break
        finally:
            self._flush_pool.shutdown(wait=True)
            self._merge_pool.shutdown(wait=True)
        self.raise_if_failed()

    def __enter__(self) -> "LSMIOScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else f"pending={self._pending}"
        return (f"LSMIOScheduler(flush_workers={self.max_flush_workers}, "
                f"merge_workers={self.max_merge_workers}, {state})")
