"""Background LSM maintenance scheduler: asynchronous flushes and merges.

The paper's tuple-compaction framework piggybacks on AsterixDB's LSM
lifecycle, where flushes and merges are *asynchronous* I/O operations that
overlap ingestion (§2.2: the tree manager schedules them on dedicated
threads while the writer keeps appending to a fresh in-memory component).
:class:`LSMIOScheduler` reproduces that lifecycle: two bounded worker pools
— one for flushes, one for merges — run maintenance off the ingest path,
while :class:`~repro.lsm.LSMBTree` handles memtable rotation, sealing, and
writer backpressure.

Design contract with the index:

* **Per-index ordering** — an index's sealed memtables must flush oldest
  first (component sequence numbers encode recency).  The scheduler does not
  order tasks itself; each submitted flush task pops *the oldest* sealed
  memtable under the index's maintenance lock, so any worker executing any
  task preserves seal order.
* **Failure propagation** — the first exception raised by a background task
  is recorded and re-raised (wrapped in :class:`~repro.errors.SchedulerError`)
  by the writer's backpressure wait, by :meth:`drain`, and by :meth:`close`,
  so a failed flush surfaces deterministically instead of hanging writers.
* **Quiescence** — :meth:`drain` blocks until every submitted task has
  finished; :meth:`close` drains, then shuts the pools down.  Both are
  idempotent, and a closed scheduler makes indexes fall back to synchronous
  (inline) maintenance, so ``Dataset.close()`` is safe to call twice.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SchedulerError
from ..obs import MetricsRegistry, StatsDictMixin, get_registry
from ..obs import tracer as _tracer


@dataclass
class SchedulerStats(StatsDictMixin):
    """Counters describing one scheduler's lifetime activity."""

    flushes_submitted: int = 0
    flushes_completed: int = 0
    merges_submitted: int = 0
    merges_completed: int = 0


class LSMIOScheduler:
    """Bounded worker pools executing LSM flushes and merges asynchronously."""

    def __init__(self, max_flush_workers: int = 2, max_merge_workers: int = 1,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_flush_workers < 1:
            raise SchedulerError("max_flush_workers must be >= 1")
        if max_merge_workers < 1:
            raise SchedulerError("max_merge_workers must be >= 1")
        self.max_flush_workers = max_flush_workers
        self.max_merge_workers = max_merge_workers
        self._flush_pool = ThreadPoolExecutor(
            max_workers=max_flush_workers, thread_name_prefix="repro-lsm-flush")
        self._merge_pool = ThreadPoolExecutor(
            max_workers=max_merge_workers, thread_name_prefix="repro-lsm-merge")
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._failure: Optional[BaseException] = None  # guarded-by: _lock
        self.stats = SchedulerStats()
        metrics = metrics if metrics is not None else get_registry()
        self._pending_gauge = metrics.gauge("scheduler_pending_tasks")
        self._submitted_metrics = {
            False: metrics.counter("scheduler_tasks_submitted", kind="flush"),
            True: metrics.counter("scheduler_tasks_submitted", kind="merge"),
        }
        self._completed_metrics = {
            False: metrics.counter("scheduler_tasks_completed", kind="flush"),
            True: metrics.counter("scheduler_tasks_completed", kind="merge"),
        }

    # ------------------------------------------------------------------ submission

    @property
    def closed(self) -> bool:
        return self._closed

    def submit_flush(self, task: Callable[[], None]) -> Future:
        """Queue one flush task (must be safe to run on any flush worker)."""
        return self._submit(self._flush_pool, task, is_merge=False)

    def submit_merge(self, task: Callable[[], None]) -> Future:
        """Queue one merge task."""
        return self._submit(self._merge_pool, task, is_merge=True)

    def _submit(self, pool: ThreadPoolExecutor, task: Callable[[], None],
                is_merge: bool) -> Future:
        with self._lock:
            if self._closed:
                raise SchedulerError("cannot submit work to a closed scheduler")
            self._pending += 1
            self._pending_gauge.set(self._pending)
            if is_merge:
                self.stats.merges_submitted += 1
            else:
                self.stats.flushes_submitted += 1
            self._submitted_metrics[is_merge].inc()
        try:
            # Carry the submitter's tracing context onto the worker thread:
            # a flush scheduled while an ingest span is open becomes its
            # child in the trace.  No-op (returns `task` itself) when
            # tracing is disabled.
            future = pool.submit(self._run, _tracer.wrap_context(task), is_merge)
        except BaseException:
            with self._lock:
                self._pending -= 1
                self._pending_gauge.set(self._pending)
                self._idle.notify_all()
            raise
        return future

    def _run(self, task: Callable[[], None], is_merge: bool) -> None:
        try:
            task()
            with self._lock:
                if is_merge:
                    self.stats.merges_completed += 1
                else:
                    self.stats.flushes_completed += 1
                self._completed_metrics[is_merge].inc()
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised at drain
            with self._lock:
                if self._failure is None:
                    self._failure = exc
        finally:
            with self._lock:
                self._pending -= 1
                self._pending_gauge.set(self._pending)
                self._idle.notify_all()

    # ------------------------------------------------------------------ quiescence

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished (queued or running)."""
        with self._lock:
            return self._pending

    def raise_if_failed(self) -> None:
        """Surface the first background failure, if any, on the caller's thread."""
        failure = self._failure
        if failure is not None:
            raise SchedulerError(
                f"background LSM maintenance failed: {failure!r}") from failure

    def drain(self) -> None:
        """Block until every submitted flush/merge has finished.

        Tasks may submit follow-up work (a flush scheduling a merge) while we
        wait; the pending counter covers those too, so returning means the
        maintenance pipeline is genuinely quiet.  Raises
        :class:`~repro.errors.SchedulerError` if any task failed.
        """
        with self._idle:
            while self._pending:
                self._idle.wait(timeout=0.1)
                failure = self._failure
                if failure is not None:
                    break
        self.raise_if_failed()

    def close(self) -> None:
        """Drain, then shut the worker pools down.  Idempotent.

        A drain failure still shuts the pools down (no half-closed state),
        then re-raises, so callers in ``finally`` blocks always release the
        threads.
        """
        with self._lock:
            if self._closed:
                self.raise_if_failed()
                return
            self._closed = True
        try:
            with self._idle:
                while self._pending:
                    self._idle.wait(timeout=0.1)
                    if self._failure is not None:
                        break
        finally:
            self._flush_pool.shutdown(wait=True)
            self._merge_pool.shutdown(wait=True)
        self.raise_if_failed()

    def __enter__(self) -> "LSMIOScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else f"pending={self._pending}"
        return (f"LSMIOScheduler(flush_workers={self.max_flush_workers}, "
                f"merge_workers={self.max_merge_workers}, {state})")
