"""LSM component identifiers (paper §2.2).

Flushed components receive monotonically increasing sequence numbers
(``C0``, ``C1``, ...); a merged component's id is the *range* of the ids it
covers (``[C0, C1]``).  The engine infers recency from these ids — a
component whose range ends at a larger sequence number is more recent — and
the tuple compactor relies on that ordering to pick "the most recent
schema" when components merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from ..errors import ComponentStateError


@total_ordering
@dataclass(frozen=True)
class ComponentId:
    """Identifier covering the flush-sequence range ``[min_seq, max_seq]``."""

    min_seq: int
    max_seq: int

    def __post_init__(self) -> None:
        if self.min_seq > self.max_seq:
            raise ComponentStateError(f"invalid component id range [{self.min_seq}, {self.max_seq}]")

    @classmethod
    def flushed(cls, sequence: int) -> "ComponentId":
        """Id of a freshly flushed component."""
        return cls(sequence, sequence)

    @classmethod
    def merged(cls, ids: "list[ComponentId]") -> "ComponentId":
        """Id of the component produced by merging ``ids`` (must be adjacent)."""
        if not ids:
            raise ComponentStateError("cannot merge zero components")
        ordered = sorted(ids)
        for older, newer in zip(ordered, ordered[1:]):
            if newer.min_seq != older.max_seq + 1:
                raise ComponentStateError(
                    f"components {older} and {newer} are not adjacent and cannot be merged"
                )
        return cls(ordered[0].min_seq, ordered[-1].max_seq)

    @property
    def is_merged(self) -> bool:
        return self.max_seq > self.min_seq

    def is_newer_than(self, other: "ComponentId") -> bool:
        """Recency comparison used when reconciling duplicate keys."""
        return self.max_seq > other.max_seq

    def __lt__(self, other: "ComponentId") -> bool:
        return (self.max_seq, self.min_seq) < (other.max_seq, other.min_seq)

    def __str__(self) -> str:
        if self.is_merged:
            return f"C{self.min_seq}-{self.max_seq}"
        return f"C{self.min_seq}"

    @property
    def file_suffix(self) -> str:
        """Stable suffix used when naming the component's page files."""
        return f"{self.min_seq}_{self.max_seq}"
