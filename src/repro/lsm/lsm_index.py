"""The LSM B+-tree primary index (one per dataset partition).

This is the storage engine the paper builds on (§2.2): writes go to an
in-memory component; when it exceeds its memory budget the *tree manager*
flushes it into an immutable on-disk component; on-disk components are
periodically merged according to a merge policy; deletes insert anti-matter
entries; upserts are a delete followed by an insert with the same key.

The tuple compactor does not live here — it is attached as a
:class:`~repro.lsm.lifecycle.FlushCallback`, so the index stays agnostic of
record formats: it stores opaque payload bytes and returns them together
with the schema snapshot of the component they came from.
"""

from __future__ import annotations

import heapq
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..btree import BTree, BulkLoader, LeafEntry
from ..errors import (
    ComponentStateError,
    CorruptPageError,
    DuplicateKeyError,
    KeyNotFoundError,
    MaintenanceDecodeError,
    QuarantinedComponentError,
    SchedulerError,
)
from ..obs import (COMPONENT_QUARANTINED, MetricsRegistry, StatsDictMixin,
                   emit_event, get_registry)
from ..obs import tracer as _tracer
from ..schema import InferredSchema
from ..storage.buffer_cache import BufferCache
from ..storage.wal import LogRecordType, WriteAheadLog
from .component import (
    ComponentWriter,
    InMemoryComponent,
    MemEntry,
    OnDiskComponent,
    read_component_metadata,
)
from .component_id import ComponentId
from .lifecycle import FlushCallback
from .merge_policy import MergePolicy, NoMergePolicy
from .scheduler import LSMIOScheduler


@dataclass
class SecondaryIndexDef:
    """Definition of one secondary index over the primary index's records.

    ``extractor`` receives the stored payload bytes and the component's
    schema and returns the indexed value (or ``None`` to skip the record).
    ``field_path`` is the indexed field's path when the index covers a plain
    field access — the optimizer matches WHERE conjuncts against it.  Field
    statistics (min/max/count for the cost model) live per component in
    ``component.secondary_stats`` and are aggregated by
    :meth:`LSMBTree.secondary_statistics`.
    """

    name: str
    extractor: Callable[[bytes, Optional[InferredSchema]], Any]
    field_path: Optional[Tuple[str, ...]] = None


@dataclass
class IngestStats(StatsDictMixin):
    """Counters describing one index's ingestion activity."""

    _DERIVED = ("write_amplification",)

    inserts: int = 0
    deletes: int = 0
    upserts: int = 0
    flushes: int = 0
    merges: int = 0
    maintenance_point_lookups: int = 0
    bytes_flushed: int = 0
    bytes_merged: int = 0
    #: Wall seconds the writer spent blocked in backpressure waits (sealed
    #: memtables at the cap, or merge debt) under background maintenance.
    ingest_stall_seconds: float = 0.0

    @property
    def write_amplification(self) -> float:
        """Maintenance bytes written per flushed byte (1.0 = no merges)."""
        if self.bytes_flushed == 0:
            return 0.0
        return (self.bytes_flushed + self.bytes_merged) / self.bytes_flushed


@dataclass
class SealedMemtable:
    """An immutable, flush-pending in-memory component.

    Sealed at memtable rotation: the writer moves its full mutable memtable
    here, installs a fresh empty one, and hands this object to the background
    flush pipeline.  ``up_to_lsn`` records the last WAL position the sealed
    entries cover, so the flush that persists them truncates exactly that
    prefix of the partition's log — entries logged after the seal (living in
    newer memtables) survive for crash recovery.
    """

    memtable: InMemoryComponent
    up_to_lsn: int


@dataclass
class SearchResult:
    """Payload returned by point lookups and scans."""

    key: Any
    payload: bytes
    schema: Optional[InferredSchema]
    from_memory: bool = False
    record: Optional[Dict[str, Any]] = None  # set only for memtable hits
    #: Decoded column values (aligned to the scan's requested paths) when the
    #: row was served through the column-slice cache; None on every other
    #: path, in which case callers decode ``payload`` as before.
    values: Optional[Tuple[Any, ...]] = None


class LSMBTree:
    """LSM-tree of immutable B+-tree components plus one in-memory component."""

    def __init__(self, name: str, partition: int, buffer_cache: BufferCache,
                 memory_budget: int, merge_policy: Optional[MergePolicy] = None,
                 flush_callback: Optional[FlushCallback] = None,
                 wal: Optional[WriteAheadLog] = None,
                 maintain_primary_key_index: bool = False,
                 check_duplicate_keys: bool = False,
                 scheduler: Optional[LSMIOScheduler] = None,
                 max_sealed_memtables: int = 2,
                 max_merge_debt: int = 12,
                 metrics: Optional[MetricsRegistry] = None,
                 column_cache=None) -> None:
        self.name = name
        self.partition = partition
        self.buffer_cache = buffer_cache
        self.memory_budget = memory_budget
        self.merge_policy = merge_policy or NoMergePolicy()
        self.flush_callback = flush_callback or FlushCallback()
        self.wal = wal
        self.maintain_primary_key_index = maintain_primary_key_index
        self.check_duplicate_keys = check_duplicate_keys
        #: Background maintenance scheduler; ``None`` = synchronous mode
        #: (flushes and merges run inline on the writer's thread).
        self.scheduler = scheduler
        self.max_sealed_memtables = max_sealed_memtables
        self.max_merge_debt = max_merge_debt
        #: Decoded column-slice cache shared by the owning environment's
        #: datasets (:class:`repro.cache.ColumnSliceCache`), or None.  The
        #: index only *invalidates* it (component drops and quarantines);
        #: population happens on the scan path via ``component_source``.
        self.column_cache = column_cache
        #: Monotone component-lifecycle counter: bumped by every flush,
        #: merge, bulk load, CREATE INDEX backfill, and quarantine — i.e.
        #: whenever the component set (and with it the per-component
        #: FieldStatistics the optimizer prices against) changes.  Part of
        #: the dataset's plan-cache reuse epoch.
        self.structure_version = 0

        self.memory_component = InMemoryComponent()
        #: Sealed (immutable, flush-pending) memtables, oldest first.  Only
        #: populated under background maintenance; flushed strictly in order
        #: so component sequence numbers keep encoding recency.
        # guarded-by: _rotation_cond
        self.sealed_memtables: List[SealedMemtable] = []
        #: On-disk components, newest first.
        self.components: List[OnDiskComponent] = []
        self.secondary_indexes: List[SecondaryIndexDef] = []
        self.stats = IngestStats()
        # Lifecycle counters published into the shared metrics registry
        # (cross-partition totals; per-index detail stays in self.stats).
        metrics = metrics if metrics is not None else get_registry()
        self._flushes_metric = metrics.counter("lsm_flushes")
        self._merges_metric = metrics.counter("lsm_merges")
        self._seals_metric = metrics.counter("lsm_memtable_seals")
        self._bytes_flushed_metric = metrics.counter("lsm_bytes_flushed")
        self._bytes_merged_metric = metrics.counter("lsm_bytes_merged")
        self._stall_metric = metrics.counter("lsm_ingest_stall_seconds")
        self._sealed_gauge = metrics.gauge("lsm_sealed_memtables")
        self._next_sequence = 0
        # Reader bookkeeping: scans/probes snapshot the component list, so a
        # merge must not delete merged-away component *files* while any
        # reader's snapshot may still reference them.  Deletions observed
        # while readers are active are deferred and drained by the last
        # reader to finish (a lightweight stand-in for AsterixDB's
        # reference-counted component lifecycle).
        self._read_lock = threading.Lock()
        self._active_reads = 0  # guarded-by: _read_lock
        self._deferred_drops: List[OnDiskComponent] = []  # guarded-by: _read_lock
        #: Components whose pages failed their CRC32 check, keyed by file
        #: name with the failure reason.  With no replica to route to, every
        #: read touching a quarantined component raises
        #: QuarantinedComponentError — a typed error beats silently missing
        #: rows (the chaos suite's core guarantee).
        self._quarantined: Dict[str, str] = {}  # guarded-by: _read_lock
        # Maintenance bookkeeping.  The maintenance lock serializes all
        # structure-mutating operations (flush, merge) of this index — the
        # background pools parallelize *across* partitions, never within one.
        # The rotation condition guards the sealed-memtable list and the
        # in-flight counters, and is what backpressured writers and
        # drain_maintenance() wait on.
        self._maintenance_lock = threading.Lock()
        # An explicit plain Lock (not Condition()'s implicit RLock) so the
        # dynamic lock tracker sees rotation acquisitions (LOCK002).
        self._rotation_cond = threading.Condition(threading.Lock())
        self._inflight_flushes = 0  # guarded-by: _rotation_cond
        self._inflight_merges = 0  # guarded-by: _rotation_cond
        self._merge_scheduled = False  # guarded-by: _rotation_cond

    # ------------------------------------------------------------------ naming

    def _component_file(self, component_id: ComponentId) -> str:
        return f"{self.name}_p{self.partition}_c{component_id.file_suffix}"

    def file_prefix(self) -> str:
        return f"{self.name}_p{self.partition}_c"

    # ------------------------------------------------------------------ write path

    def insert(self, key: Any, record: Dict[str, Any], encoded: bytes) -> None:
        """Insert a new record (data feeds and loads; key assumed fresh)."""
        if self.check_duplicate_keys and self._exists_anywhere(key):
            raise DuplicateKeyError(f"primary key {key!r} already exists")
        self._log(LogRecordType.INSERT, key, encoded)
        self.memory_component.put(MemEntry(key, is_antimatter=False, record=record, encoded=encoded))
        self.stats.inserts += 1
        self._flush_if_full()

    def delete(self, key: Any) -> None:
        """Delete by key, inserting an anti-matter entry (paper §2.2, §3.2.2)."""
        if self.flush_callback.needs_antischema:
            antischema = self._antischema_for(key)
            if antischema is _NOT_FOUND:
                raise KeyNotFoundError(f"cannot delete unknown key {key!r}")
        else:
            antischema = None
        self._log(LogRecordType.DELETE, key, b"")
        self.memory_component.put(MemEntry(key, is_antimatter=True, antischema=antischema))
        self.stats.deletes += 1
        self._flush_if_full()

    def upsert(self, key: Any, record: Dict[str, Any], encoded: bytes) -> None:
        """Upsert = delete (if present) followed by an insert with the same key."""
        if self.flush_callback.needs_antischema:
            antischema = self._antischema_for(key)
            if antischema is _NOT_FOUND:
                antischema = None
        else:
            antischema = None
        self._log(LogRecordType.UPSERT, key, encoded)
        self.memory_component.put(
            MemEntry(key, is_antimatter=False, record=record, encoded=encoded, antischema=antischema)
        )
        self.stats.upserts += 1
        self._flush_if_full()

    def _antischema_for(self, key: Any):
        """Fetch the anti-schema of the record version ``key`` currently has.

        Follows the paper's §3.2.2 maintenance protocol: a point lookup
        retrieves the old record so its schema can be decremented during the
        next flush.  The primary-key index, when maintained, answers the
        common "key does not exist yet" case without touching the (larger)
        primary components.
        """
        from ..schema import extract_antischema

        memory_entry = self.memory_component.get(key)
        if memory_entry is not None:
            if memory_entry.is_antimatter:
                return _NOT_FOUND
            # The old version only ever lived in memory: it was never observed
            # by the schema, so carry forward whatever it was itself carrying.
            return memory_entry.antischema

        for sealed in reversed(list(self.sealed_memtables)):  # newest first
            entry = sealed.memtable.get(key)
            if entry is None:
                continue
            if entry.is_antimatter:
                return _NOT_FOUND
            # A sealed version *will* be observed by the schema: its flush is
            # ordered before the mutable memtable's flush, so by the time this
            # new entry's anti-schema is processed the old version has been
            # counted — decrement it like a disk-resident version.
            return extract_antischema(entry.record)

        # Guarded like the query paths: with background maintenance a merge
        # worker may retire components concurrently with this writer-thread
        # lookup, and the read guard keeps the snapshotted components' files
        # alive until the lookup finishes.
        with self.read_guard():
            if self.maintain_primary_key_index:
                if not any(component.key_may_exist(key) for component in list(self.components)):
                    return _NOT_FOUND
            result = self._search_disk(key)
            self.stats.maintenance_point_lookups += 1
            if result is None:
                return _NOT_FOUND
            payload, component = result
            record = self._decode_for_maintenance(payload, component)
        return extract_antischema(record)

    def _decode_for_maintenance(self, payload: bytes, component: OnDiskComponent) -> Dict[str, Any]:
        """Decode a stored payload far enough to extract its anti-schema."""
        decoder = getattr(self.flush_callback, "decode_record", None)
        if decoder is not None:
            return decoder(payload, component.schema)
        raise MaintenanceDecodeError(
            "this index stores opaque payloads; deletes/upserts need a flush callback "
            "with a decode_record() method"
        )

    def _memory_lookup(self, key: Any) -> Optional[MemEntry]:
        """Newest in-memory version of ``key``: mutable, then sealed memtables."""
        entry = self.memory_component.get(key)
        if entry is not None:
            return entry
        for sealed in reversed(list(self.sealed_memtables)):  # newest first
            entry = sealed.memtable.get(key)
            if entry is not None:
                return entry
        return None

    def _exists_anywhere(self, key: Any) -> bool:
        entry = self._memory_lookup(key)
        if entry is not None:
            return not entry.is_antimatter
        with self.read_guard():  # survive a concurrent background merge
            return self._search_disk(key) is not None

    def _log(self, record_type: LogRecordType, key: Any, payload: bytes) -> None:
        if self.wal is not None:
            self.wal.append(record_type, self.name, self.partition, key=key, payload=payload)

    def _flush_if_full(self) -> None:
        if self.memory_component.size_bytes < self.memory_budget:
            return
        if self._background_active():
            self._rotate_and_submit()
        else:
            self.flush()

    def _background_active(self) -> bool:
        return self.scheduler is not None and not self.scheduler.closed

    # ------------------------------------------------------------------ flush

    def flush(self, fail_before_footer: bool = False) -> Optional[OnDiskComponent]:
        """Flush the in-memory component into a new on-disk component.

        Under background maintenance this is a *synchronous barrier*: it
        first drains every pending sealed-memtable flush and merge of this
        index (preserving flush order), then flushes the mutable memtable
        inline, then drains again so a merge the flush scheduled has settled
        before returning — callers like ``flush_all()`` and feed ``close()``
        keep their deterministic semantics.
        """
        if self._background_active():
            self.drain_maintenance()
            with self._maintenance_lock:
                component = self._flush_memtable(self.memory_component,
                                                 fail_before_footer=fail_before_footer)
            self.drain_maintenance()
            return component
        with self._maintenance_lock:
            return self._flush_memtable(self.memory_component,
                                        fail_before_footer=fail_before_footer)

    def _flush_memtable(self, memtable: InMemoryComponent,
                        up_to_lsn: Optional[int] = None,
                        fail_before_footer: bool = False) -> Optional[OnDiskComponent]:
        """Flush one memtable (mutable or sealed); caller holds the
        maintenance lock.  ``up_to_lsn`` bounds the WAL truncation for sealed
        memtables; ``None`` means "everything logged so far" (the synchronous
        path, where the memtable covers the whole unflushed log)."""
        if memtable.is_empty:
            return None
        with _tracer.span("lsm.flush", index=self.name,
                          partition=self.partition) as span:
            # Bytes come from the stats delta, not component.size_bytes():
            # the post-flush merge inside the impl may already have deleted
            # the new component's file by the time the span closes.
            bytes_before = self.stats.bytes_flushed
            component = self._flush_memtable_impl(memtable, up_to_lsn, fail_before_footer)
            if component is not None:
                span.set_attribute("component", component.file_name)
                span.set_attribute("bytes", self.stats.bytes_flushed - bytes_before)
            return component

    def _flush_memtable_impl(self, memtable: InMemoryComponent,
                             up_to_lsn: Optional[int] = None,
                             fail_before_footer: bool = False) -> Optional[OnDiskComponent]:
        component_id = ComponentId.flushed(self._next_sequence)
        callback = self.flush_callback
        # Everything before the in-memory install below is rolled back on
        # failure (callback state restored, partial files deleted), so the
        # scheduler can retry a transiently-failed flush task from scratch.
        # The one exception is the simulated crash (fail_before_footer),
        # which must leave its partial file behind for recovery to find —
        # a crashed process does not get to clean up.
        callback_state = callback.snapshot_state()
        file_name = self._component_file(component_id)
        component: Optional[OnDiskComponent] = None
        try:
            callback.begin_flush(component_id)

            leaf_entries: List[LeafEntry] = []
            for entry in memtable.sorted_entries():
                if entry.antischema is not None or entry.is_antimatter:
                    callback.process_antischema(entry.antischema)
                if entry.is_antimatter:
                    leaf_entries.append(LeafEntry(entry.key, b"", is_antimatter=True))
                else:
                    payload = callback.transform_record(entry.key, entry.record, entry.encoded)
                    leaf_entries.append(LeafEntry(entry.key, payload, is_antimatter=False))

            schema_bytes, schema = callback.end_flush()
            if self.wal is not None:
                self.wal.append(LogRecordType.FLUSH_START, self.name, self.partition)
            writer = ComponentWriter(self.buffer_cache, file_name)
            metadata = writer.write(component_id, leaf_entries, schema_bytes,
                                    fail_before_footer=fail_before_footer)
            component = OnDiskComponent(component_id, file_name, self.buffer_cache, metadata,
                                        schema=schema, valid=True)
            self._build_auxiliary_indexes(component, leaf_entries)
            if self.wal is not None:
                # Per-partition truncation: the log is shared across
                # partitions, and under background flushing only the sealed
                # prefix of *this* partition's records is covered by the new
                # component.  Truncating before the install is safe — the
                # component's validity bit is already on disk — and keeps
                # the install the last, infallible step, so a retried task
                # never observes a half-committed flush.
                covered_lsn = self.wal.last_lsn if up_to_lsn is None else up_to_lsn
                self.wal.append(LogRecordType.FLUSH_END, self.name, self.partition)
                self.wal.truncate_partition(self.name, self.partition, covered_lsn)
        except BaseException:
            callback.restore_state(callback_state)
            if not fail_before_footer:
                if component is not None:
                    self._delete_component_files(component)
                elif self.buffer_cache.file_manager.exists(file_name):
                    self.buffer_cache.invalidate_file(file_name)
                    self.buffer_cache.file_manager.delete_file(file_name)
            raise

        # Commit point: pure in-memory bookkeeping, nothing below can fail.
        self.components.insert(0, component)
        self._next_sequence += 1
        self.structure_version += 1
        self.stats.flushes += 1
        self.stats.bytes_flushed += component.size_bytes()
        self._flushes_metric.inc()
        self._bytes_flushed_metric.inc(component.size_bytes())
        if memtable is self.memory_component:
            memtable.clear()
        self._after_flush_maintenance()
        return component

    def _after_flush_maintenance(self) -> None:
        """Run (synchronous) or schedule (background) the post-flush merge."""
        if not self._background_active():
            self.maybe_merge()
            return
        with self._rotation_cond:
            if self._merge_scheduled:
                return
            if len(self.merge_policy.select_merge(self.components)) < 2:
                return
            self._merge_scheduled = True
        try:
            self.scheduler.submit_merge(self._background_merge,
                                        on_abandoned=self._retire_merge_submission)
        except SchedulerError:
            with self._rotation_cond:
                self._merge_scheduled = False
            self.maybe_merge()

    # ------------------------------------------------------------------ background lifecycle

    def _rotate_and_submit(self) -> None:
        """Seal the mutable memtable and queue its flush on the scheduler.

        Writer backpressure (AsterixDB-style) lives here: when the sealed
        queue is at ``max_sealed_memtables``, or merge debt has piled past
        ``max_merge_debt`` components while a merge is pending, the writer
        blocks until maintenance catches up.  A failed background operation
        surfaces as :class:`~repro.errors.SchedulerError` instead of hanging.
        """
        scheduler = self.scheduler
        stall_started: Optional[float] = None
        with self._rotation_cond:
            while (len(self.sealed_memtables) >= self.max_sealed_memtables
                   or self._merge_debt_exceeded()):
                scheduler.raise_if_failed()
                if stall_started is None:
                    stall_started = time.perf_counter()
                self._rotation_cond.wait(timeout=0.05)
            if stall_started is not None:
                stalled = time.perf_counter() - stall_started
                self.stats.ingest_stall_seconds += stalled
                self._stall_metric.inc(stalled)
            if self.memory_component.is_empty:
                return
            sealed = SealedMemtable(
                self.memory_component,
                self.wal.last_lsn if self.wal is not None else 0)
            # Ordering contract with readers: the memtable is appended to the
            # sealed list *before* the fresh mutable one is installed, and
            # readers snapshot the mutable memtable *before* the sealed list —
            # so every entry is visible in at least one snapshot (duplicates
            # reconcile by recency rank).
            self.sealed_memtables.append(sealed)
            self.memory_component = InMemoryComponent()
            self._inflight_flushes += 1
            self._seals_metric.inc()
            self._sealed_gauge.set(len(self.sealed_memtables))
        try:
            scheduler.submit_flush(self._background_flush,
                                   on_abandoned=self._retire_flush_submission)
        except SchedulerError:
            # Scheduler closed between the rotation and the submission: fall
            # back to flushing the sealed memtable inline (synchronously).
            try:
                self._background_flush()
            except BaseException:
                self._retire_flush_submission()
                raise

    def _merge_debt_exceeded(self) -> bool:
        """True while a merge is pending and components have piled up past
        the debt cap — never true without a merge in flight (no deadlock)."""
        if not (self._merge_scheduled or self._inflight_merges):
            return False
        return len(self.components) >= self.max_merge_debt

    def _background_flush(self) -> None:
        """Flush the *oldest* sealed memtable (runs on a flush worker).

        Tasks are anonymous — any worker executing any task pops the oldest
        sealed memtable under the maintenance lock, so per-index flush order
        matches seal order even with several flush workers.

        ``_inflight_flushes`` is per-*submission*, not per-attempt: the
        scheduler may run this task several times (transient-failure
        retries), so the count drops only on success here — or exactly once
        via :meth:`_flush_abandoned` when the scheduler gives up on the
        submission (including giving up before the task body ever ran), so
        the count drops exactly once per submission either way.
        """
        with self._maintenance_lock:
            with self._rotation_cond:
                sealed = self.sealed_memtables[0] if self.sealed_memtables else None
            if sealed is not None:
                with self._maintenance_io_scope():
                    self._flush_memtable(sealed.memtable, up_to_lsn=sealed.up_to_lsn)
                # Pop only after the on-disk component is installed (and
                # while still holding the maintenance lock, so the next
                # flush task cannot observe this memtable again): readers
                # always find the entries in the sealed snapshot or the
                # component snapshot.
                with self._rotation_cond:
                    self.sealed_memtables.pop(0)
                    self._sealed_gauge.set(len(self.sealed_memtables))
                    self._rotation_cond.notify_all()
        self._retire_flush_submission()

    def _retire_flush_submission(self) -> None:
        """Drop one flush submission's in-flight count (done or abandoned)."""
        with self._rotation_cond:
            self._inflight_flushes -= 1
            self._rotation_cond.notify_all()

    def _retire_merge_submission(self) -> None:
        """Unblock drain when the scheduler abandons a merge submission
        (``_inflight_merges`` is attempt-local, but ``_merge_scheduled`` is
        per-submission and would otherwise stay set forever)."""
        with self._rotation_cond:
            self._merge_scheduled = False
            self._rotation_cond.notify_all()

    def _background_merge(self) -> None:
        """Re-evaluate the merge policy and merge (runs on a merge worker)."""
        try:
            with self._maintenance_lock:
                with self._rotation_cond:
                    self._merge_scheduled = False
                    self._inflight_merges += 1
                with self._maintenance_io_scope():
                    selected = self.merge_policy.select_merge(self.components)
                    if len(selected) >= 2:
                        self.merge(selected)
        finally:
            with self._rotation_cond:
                self._inflight_merges -= 1
                self._rotation_cond.notify_all()

    def _maintenance_io_scope(self):
        """Tag this worker's device traffic with the "maintenance" I/O class."""
        device = getattr(self.buffer_cache.file_manager, "device", None)
        if device is None:
            return nullcontext()
        return device.io_class_scope("maintenance")

    def resume_maintenance(self) -> int:
        """Resubmit flush tasks for sealed memtables orphaned by a failure.

        When a background flush exhausts its retry budget, its task dies with
        the sealed memtable still queued — nothing would ever flush it, so
        ``flush()``/``drain()`` would raise forever even after the operator
        clears the scheduler's failure latch.  Called by
        :meth:`~repro.core.dataset.Dataset.resume_maintenance` after
        ``clear_failure()``; returns the number of flush tasks resubmitted.
        """
        if self.scheduler is None or self.scheduler.closed:
            return 0
        resubmitted = 0
        with self._rotation_cond:
            missing = len(self.sealed_memtables) - self._inflight_flushes
            for _ in range(max(0, missing)):
                self.scheduler.submit_flush(
                    self._background_flush,
                    on_abandoned=self._retire_flush_submission)
                self._inflight_flushes += 1
                resubmitted += 1
        return resubmitted

    def drain_maintenance(self) -> None:
        """Block until no sealed memtable, flush, or merge is outstanding.

        The deterministic quiescence point of the background lifecycle:
        ``Dataset.close()``/``flush_all()`` call this so post-drain state
        (component counts, stats, WAL) is identical to synchronous mode's.
        Raises :class:`~repro.errors.SchedulerError` if maintenance failed.
        """
        if self.scheduler is None:
            return
        with self._rotation_cond:
            while (self.sealed_memtables or self._inflight_flushes
                   or self._inflight_merges or self._merge_scheduled):
                self.scheduler.raise_if_failed()
                self._rotation_cond.wait(timeout=0.05)
        self.scheduler.raise_if_failed()

    # ------------------------------------------------------------------ bulk load

    def load(self, rows: Sequence[Tuple[Any, Dict[str, Any], bytes]]) -> Optional[OnDiskComponent]:
        """Bulk-load pre-encoded records into a single on-disk component.

        This is AsterixDB's LOAD path (paper §4.3): the rows are sorted by
        primary key, the B+-tree is built bottom-up in one pass, and the
        tuple compactor infers the schema and compacts records during that
        pass, leaving one component with one schema.  The WAL is not
        involved (loads are not logged in AsterixDB either).
        """
        if not self.memory_component.is_empty or self.sealed_memtables or self.components:
            raise ComponentStateError("bulk load requires an empty index")
        if not rows:
            return None
        ordered = sorted(rows, key=lambda row: row[0])
        component_id = ComponentId.flushed(self._next_sequence)
        callback = self.flush_callback
        callback.begin_flush(component_id)
        leaf_entries = []
        previous_key = object()
        for key, record, encoded in ordered:
            if key == previous_key:
                raise DuplicateKeyError(f"bulk load saw duplicate primary key {key!r}")
            previous_key = key
            payload = callback.transform_record(key, record, encoded)
            leaf_entries.append(LeafEntry(key, payload, is_antimatter=False))
        schema_bytes, schema = callback.end_flush()
        file_name = self._component_file(component_id)
        metadata = ComponentWriter(self.buffer_cache, file_name).write(
            component_id, leaf_entries, schema_bytes)
        component = OnDiskComponent(component_id, file_name, self.buffer_cache, metadata,
                                    schema=schema, valid=True)
        self._build_auxiliary_indexes(component, leaf_entries)
        self.components.insert(0, component)
        self._next_sequence += 1
        self.structure_version += 1
        self.stats.inserts += len(leaf_entries)
        self.stats.flushes += 1
        self.stats.bytes_flushed += component.size_bytes()
        return component

    # ------------------------------------------------------------------ merge

    def maybe_merge(self) -> Optional[OnDiskComponent]:
        """Ask the merge policy whether to merge; perform the merge if so."""
        selected = self.merge_policy.select_merge(self.components)
        if len(selected) < 2:
            return None
        return self.merge(selected)

    def merge(self, selected: Sequence[OnDiskComponent]) -> OnDiskComponent:
        """Merge ``selected`` (contiguous, newest first) into one component."""
        with _tracer.span("lsm.merge", index=self.name, partition=self.partition,
                          inputs=len(selected)) as span:
            bytes_before = self.stats.bytes_merged
            merged = self._merge_impl(selected)
            span.set_attribute("component", merged.file_name)
            span.set_attribute("bytes", self.stats.bytes_merged - bytes_before)
            return merged

    def _merge_impl(self, selected: Sequence[OnDiskComponent]) -> OnDiskComponent:
        selected = list(selected)
        selected_ids = {id(component) for component in selected}
        for component in selected:
            if not component.valid:
                raise ComponentStateError("cannot merge an INVALID component")
        merged_id = ComponentId.merged([component.component_id for component in selected])
        # Anti-matter entries may only be garbage-collected when nothing older
        # than the merged range remains (otherwise they must keep shadowing).
        oldest_selected = min(component.component_id for component in selected)
        has_older_left = any(
            component.component_id < oldest_selected and id(component) not in selected_ids
            for component in self.components
        )
        file_name = self._component_file(merged_id)
        merged: Optional[OnDiskComponent] = None
        try:
            entries = list(self._merge_entries(selected, drop_antimatter=not has_older_left))

            schema_bytes, schema = self.flush_callback.select_merge_schema(selected)
            writer = ComponentWriter(self.buffer_cache, file_name)
            metadata = writer.write(merged_id, entries, schema_bytes)
            merged = OnDiskComponent(merged_id, file_name, self.buffer_cache, metadata,
                                     schema=schema, valid=True)
            self._build_auxiliary_indexes(merged, entries)
        except BaseException:
            # Merges mutate nothing until the component-list swap below, so
            # rollback is just removing the partial output file; the inputs
            # stay live and a retried merge task re-selects from scratch.
            if merged is not None:
                self._delete_component_files(merged)
            elif self.buffer_cache.file_manager.exists(file_name):
                self.buffer_cache.invalidate_file(file_name)
                self.buffer_cache.file_manager.delete_file(file_name)
            raise

        # Swap in the post-merge component list with a single assignment so a
        # concurrent scan snapshotting `self.components` never observes an
        # intermediate state (some inputs removed, merged result not yet in).
        new_components: List[OnDiskComponent] = []
        replaced = False
        for component in self.components:
            if id(component) in selected_ids:
                if not replaced:
                    new_components.append(merged)
                    replaced = True
                continue
            new_components.append(component)
        self.components = new_components
        self.structure_version += 1
        for component in selected:
            self._drop_component(component)
        self.stats.merges += 1
        self.stats.bytes_merged += merged.size_bytes()
        self._merges_metric.inc()
        self._bytes_merged_metric.inc(merged.size_bytes())
        return merged

    def _merge_entries(self, selected: Sequence[OnDiskComponent],
                       drop_antimatter: bool) -> Iterator[LeafEntry]:
        """K-way merge of the selected components' leaf entries.

        For duplicate keys the entry from the most recent component wins; a
        winning anti-matter entry annihilates the older record and is itself
        dropped when ``drop_antimatter`` is true (paper Figure 4b).
        """
        # heap items: (key, recency_rank, sequence, entry) — rank 0 is newest.
        iterators = []
        for rank, component in enumerate(selected):
            iterators.append((rank, component.scan()))
        heap: List[Tuple[Any, int, int, LeafEntry]] = []
        sequence = 0
        for rank, iterator in iterators:
            entry = next(iterator, None)
            if entry is not None:
                heap.append((entry.key, rank, sequence, entry))
                sequence += 1
        heapq.heapify(heap)
        advance: Dict[int, Iterator[LeafEntry]] = {rank: iterator for rank, iterator in iterators}

        current_key = object()
        winner: Optional[LeafEntry] = None
        winner_rank = None
        while heap:
            key, rank, _, entry = heapq.heappop(heap)
            following = next(advance[rank], None)
            if following is not None:
                heapq.heappush(heap, (following.key, rank, sequence, following))
                sequence += 1
            if key != current_key:
                if winner is not None:
                    if not (winner.is_antimatter and drop_antimatter):
                        yield winner
                current_key = key
                winner = entry
                winner_rank = rank
            elif rank < winner_rank:
                winner = entry
                winner_rank = rank
        if winner is not None and not (winner.is_antimatter and drop_antimatter):
            yield winner

    def _drop_component(self, component: OnDiskComponent) -> None:
        self.flush_callback.on_component_deleted(component)
        with self._read_lock:
            if self._active_reads:
                # A concurrent scan/probe may still hold this component in
                # its snapshot; a merged-away component stays readable (and
                # VALID) until the last reader finishes and deletes its
                # files — the moral equivalent of AsterixDB's ref-counted
                # component lifecycle.
                self._deferred_drops.append(component)
                return
        self._delete_component_files(component)

    def _delete_component_files(self, component: OnDiskComponent) -> None:
        component.valid = False
        manager = self.buffer_cache.file_manager
        if self.column_cache is not None:
            # Evict decoded slices before the file goes away: a cached read
            # must never resurrect a merged-away component.
            self.column_cache.invalidate_component(component.file_name)
        self.buffer_cache.invalidate_file(component.file_name)
        manager.delete_file(component.file_name)
        if component.primary_key_file is not None:
            manager.delete_file(component.primary_key_file)
        for file_name in getattr(component, "secondary_files", {}).values():
            manager.delete_file(file_name)

    @contextmanager
    def read_guard(self):
        """Mark a component-list reader as active for the enclosed block.

        Ordering contract with :meth:`merge`: readers increment the counter
        *before* snapshotting ``self.components``; merge swaps the list
        *before* checking the counter in :meth:`_drop_component`.  Any
        snapshot that can still reference a merged-away component was
        therefore taken by a reader the merge sees as active, and the
        component's files are deferred instead of deleted mid-read.
        """
        with self._read_lock:
            self._active_reads += 1
        drained: List[OnDiskComponent] = []
        try:
            yield
        finally:
            with self._read_lock:
                self._active_reads -= 1
                if self._active_reads == 0 and self._deferred_drops:
                    drained = self._deferred_drops
                    self._deferred_drops = []
            for component in drained:
                self._delete_component_files(component)

    # ------------------------------------------------------------------ auxiliary indexes

    def add_secondary_index(self, definition: SecondaryIndexDef) -> None:
        """Register a secondary index, backfilling existing on-disk components.

        Newly flushed/merged components index themselves as they are built;
        components that already exist are scanned once here so that
        ``CREATE INDEX`` works on datasets with data (AsterixDB's bulk
        secondary-index build).
        """
        if any(existing.name == definition.name for existing in self.secondary_indexes):
            raise ComponentStateError(f"secondary index {definition.name!r} already exists")
        try:
            for component in self.components:
                entries = list(component.scan())
                self._build_secondary_tree(component, definition, entries)
        except Exception:
            # Atomic create: a backfill failure (e.g. values of incomparable
            # mixed types that cannot share one sort order) must not leave a
            # half-built index behind.
            self._remove_secondary_index_artifacts(definition.name)
            raise
        self.secondary_indexes.append(definition)
        self.structure_version += 1

    def _remove_secondary_index_artifacts(self, index_name: str) -> None:
        manager = self.buffer_cache.file_manager
        for component in self.components:
            files = getattr(component, "secondary_files", None) or {}
            ix_file = files.pop(index_name, None)
            (getattr(component, "secondary_trees", None) or {}).pop(index_name, None)
            (getattr(component, "secondary_stats", None) or {}).pop(index_name, None)
            if ix_file is not None and manager.exists(ix_file):
                self.buffer_cache.invalidate_file(ix_file)
                manager.delete_file(ix_file)

    def _build_auxiliary_indexes(self, component: OnDiskComponent,
                                 entries: Sequence[LeafEntry]) -> None:
        """Build the per-component primary-key and secondary index B+-trees.

        Auxiliary trees are written through :class:`ComponentWriter` too so
        that they carry their own footer/metadata and can be re-opened during
        crash recovery without rebuilding them.
        """
        if self.maintain_primary_key_index:
            pk_file = component.file_name + ".pk"
            pk_entries = [LeafEntry(entry.key, b"", entry.is_antimatter) for entry in entries]
            metadata = ComponentWriter(self.buffer_cache, pk_file).write(
                component.component_id, pk_entries)
            component.primary_key_file = pk_file
            component.primary_key_index = BTree(self.buffer_cache, pk_file, metadata.btree_info)
        for definition in self.secondary_indexes:
            self._build_secondary_tree(component, definition, entries)

    def _build_secondary_tree(self, component: OnDiskComponent,
                              definition: SecondaryIndexDef,
                              entries: Sequence[LeafEntry]) -> None:
        """Build one component's B+-tree for one secondary index definition."""
        if not hasattr(component, "secondary_files") or component.secondary_files is None:
            component.secondary_files = {}
            component.secondary_trees = {}
        if not hasattr(component, "secondary_stats") or component.secondary_stats is None:
            component.secondary_stats = {}
        from ..datasets.stats import FieldStatistics

        statistics = FieldStatistics(field_path=definition.field_path or ())
        keyed = []
        for entry in entries:
            if entry.is_antimatter:
                continue
            value = definition.extractor(entry.value, component.schema)
            if value is None:
                continue
            statistics.observe(value)
            keyed.append(((value, entry.key), entry.key))
        keyed.sort(key=lambda pair: pair[0])
        ix_file = f"{component.file_name}.ix.{definition.name}"
        ix_entries = [LeafEntry(key, _encode_primary_ref(primary))
                      for key, primary in keyed]
        metadata = ComponentWriter(self.buffer_cache, ix_file).write(
            component.component_id, ix_entries)
        component.secondary_files[definition.name] = ix_file
        component.secondary_trees[definition.name] = BTree(
            self.buffer_cache, ix_file, metadata.btree_info)
        component.secondary_stats[definition.name] = statistics

    def secondary_index_def(self, index_name: str) -> Optional[SecondaryIndexDef]:
        for definition in self.secondary_indexes:
            if definition.name == index_name:
                return definition
        return None

    def secondary_statistics(self, index_name: str):
        """Aggregated field statistics of one index across live components.

        Per-component statistics are summed, so the total reflects the
        entries actually present in the index's trees — merges replace the
        merged-away components' contribution instead of double-counting.
        Keys shadowed across components (or by unflushed memtable writes)
        still contribute once per indexed version; the cost model only needs
        an estimate.  Returns None for an unknown index.
        """
        definition = self.secondary_index_def(index_name)
        if definition is None:
            return None
        from ..datasets.stats import FieldStatistics

        merged = FieldStatistics(field_path=definition.field_path or ())
        for component in list(self.components):
            statistics = (getattr(component, "secondary_stats", None) or {}).get(index_name)
            if statistics is not None:
                merged = merged.merge(statistics)
        return merged

    def secondary_range_lookup(self, index_name: str, low: Any, high: Any) -> List[Any]:
        """Primary keys whose indexed value lies in ``[low, high]``."""
        return self.secondary_candidate_keys(index_name, low, high)

    def secondary_candidate_keys(self, index_name: str, low: Any, high: Any,
                                 low_inclusive: bool = True,
                                 high_inclusive: bool = True) -> List[Any]:
        """Distinct primary keys whose indexed value lies in the given range.

        Candidates, not answers: a key may have been re-written since the
        component that indexed it was built, so callers must re-check the
        predicate against the key's *newest* record version (the executor's
        residual filter does exactly that).  Keys are deduplicated across
        components; anti-matter reconciliation is likewise the caller's
        point-lookup problem.
        """
        if self.secondary_index_def(index_name) is None:
            raise KeyNotFoundError(f"unknown secondary index {index_name!r}")
        keys: List[Any] = []
        seen: set = set()
        components = list(self.components)
        self._raise_if_quarantined(components)
        for component in components:
            tree = getattr(component, "secondary_trees", {}).get(index_name)
            if tree is None:
                continue
            try:
                try:
                    matched = self._tree_range_keys(tree, low, high, low_inclusive, high_inclusive)
                except TypeError:
                    # The bounds and this component's indexed values do not share
                    # an order (e.g. a numeric predicate over a string-valued
                    # component): the B+-tree descent cannot compare them.  Fall
                    # back to walking the whole tree, keeping only entries that
                    # *are* comparable and in range — incomparable values can
                    # never satisfy the predicate, exactly like the scan path,
                    # where the residual comparison evaluates to MISSING.
                    matched = self._tree_filtered_keys(tree, low, high, low_inclusive, high_inclusive)
            except CorruptPageError as exc:
                self._quarantine_component(component, exc)
            for primary_key in matched:
                if primary_key in seen:
                    continue
                seen.add(primary_key)
                keys.append(primary_key)
        return keys

    @staticmethod
    def _tree_range_keys(tree: BTree, low: Any, high: Any,
                         low_inclusive: bool, high_inclusive: bool) -> List[Any]:
        # The composite keys are (value, primary_key); a 1-tuple lower
        # bound compares below every composite sharing the same value.
        low_key = (low,) if low is not None else None
        matched: List[Any] = []
        for entry in tree.range_scan(low_key, None):
            value, primary_key = entry.key
            if high is not None and (value > high
                                     or (not high_inclusive and value == high)):
                break
            if not low_inclusive and low is not None and value == low:
                continue
            matched.append(primary_key)
        return matched

    @staticmethod
    def _tree_filtered_keys(tree: BTree, low: Any, high: Any,
                            low_inclusive: bool, high_inclusive: bool) -> List[Any]:
        matched: List[Any] = []
        for entry in tree.scan_all():
            value, primary_key = entry.key
            try:
                if low is not None and (value < low
                                        or (not low_inclusive and value == low)):
                    continue
                if high is not None and (value > high
                                         or (not high_inclusive and value == high)):
                    continue
            except TypeError:
                continue
            matched.append(primary_key)
        return matched

    # ------------------------------------------------------------------ read path

    def search(self, key: Any) -> Optional[SearchResult]:
        """Point lookup: memtable first, then components newest to oldest.

        Guarded like scans: the component-list snapshot inside
        ``_search_disk`` must keep its files alive across a concurrent merge.
        """
        with self.read_guard():
            entry = self._memory_lookup(key)
            if entry is not None:
                if entry.is_antimatter:
                    return None
                return SearchResult(key, entry.encoded, self.current_schema(), from_memory=True,
                                    record=entry.record)
            disk = self._search_disk(key)
            if disk is None:
                return None
            payload, component = disk
            return SearchResult(key, payload, component.schema)

    def _search_disk(self, key: Any) -> Optional[Tuple[bytes, OnDiskComponent]]:
        components = list(self.components)
        self._raise_if_quarantined(components)
        for component in components:
            try:
                found = component.search(key)
            except CorruptPageError as exc:
                self._quarantine_component(component, exc)
            if found is None:
                continue
            if found.is_antimatter:
                return None
            return found.value, component
        return None

    # ------------------------------------------------------------------ quarantine

    def quarantined_components(self) -> Dict[str, str]:
        """Quarantined component file names with their failure reasons."""
        with self._read_lock:
            return dict(self._quarantined)

    def _raise_if_quarantined(self, components: Sequence[OnDiskComponent]) -> None:
        """Fail fast when a read snapshot includes a quarantined component.

        A query whose snapshot needs a corrupt, replica-less component can
        only be answered wrong; the typed error is the correct outcome.
        """
        with self._read_lock:
            if not self._quarantined:
                return
            for component in components:
                reason = self._quarantined.get(component.file_name)
                if reason is not None:
                    raise QuarantinedComponentError(
                        f"component {component.file_name} is quarantined: {reason}",
                        component_name=component.file_name)

    def _quarantine_component(self, component: OnDiskComponent,
                              exc: CorruptPageError) -> None:
        """Record a corrupt component and surface the typed error."""
        with self._read_lock:
            first_offender = component.file_name not in self._quarantined
            self._quarantined[component.file_name] = str(exc)
        if first_offender:
            self.structure_version += 1
            if self.column_cache is not None:
                # A corrupt component's decoded slices must not outlive its
                # quarantine: evict them so every later read goes through
                # _raise_if_quarantined instead of a warm cache.
                self.column_cache.invalidate_component(component.file_name)
            emit_event(COMPONENT_QUARANTINED, dataset=self.name,
                       partition=self.partition, component=component.file_name,
                       reason=str(exc))
        raise QuarantinedComponentError(
            f"component {component.file_name} is quarantined: {exc}",
            component_name=component.file_name) from exc

    def scan(self, component_source=None) -> Iterator[SearchResult]:
        """Full scan in key order, reconciling duplicates by recency.

        Both sources are snapshotted up front so the scan stays consistent
        while a concurrent flush runs: the memtable *must* be snapshotted
        before the component list, because a flush installs the new on-disk
        component before clearing the memtable — in that order a scan either
        sees the data in the memtable snapshot, in the component snapshot,
        or in both (reconciled by recency rank), but never in neither.
        The read guard keeps concurrent merges from deleting snapshotted
        components' files while this generator is live.

        ``component_source(component)``, when given, replaces the raw
        ``component.scan()`` iterator per on-disk component (the column-slice
        cache hook).  It must yield the same rows in the same key order as
        the component itself, as ``(key, is_antimatter, payload, record,
        schema, values)`` items; ``values`` flows through to
        :attr:`SearchResult.values` for rows that win reconciliation.
        """
        with self.read_guard():
            yield from self._scan_guarded(component_source)

    def _scan_guarded(self, component_source=None) -> Iterator[SearchResult]:
        # Snapshot order matters: mutable memtable first (rotation appends to
        # the sealed list *before* installing a fresh mutable memtable), then
        # the sealed memtables (flush completion installs the on-disk
        # component *before* popping the sealed source), then the component
        # list — every entry is visible in at least one snapshot, and
        # duplicates reconcile by recency rank.
        memory_snapshots: List[List[MemEntry]] = [self.memory_component.sorted_entries()]
        for sealed in reversed(list(self.sealed_memtables)):  # newest first
            memory_snapshots.append(sealed.memtable.sorted_entries())
        schema = self.current_schema()
        components = list(self.components)
        self._raise_if_quarantined(components)

        # Sources by recency: mutable memtable, sealed memtables newest
        # first (negative ranks), then components (ranks 0..) by recency.
        # Items are (key, is_antimatter, payload, record, schema, values).
        sources: List[Tuple[int, Iterator[Tuple]]] = []

        def memory_iterator(entries: List[MemEntry]):
            for entry in entries:
                yield entry.key, entry.is_antimatter, entry.encoded, entry.record, schema, None

        def component_iterator(component: OnDiskComponent):
            try:
                if component_source is not None:
                    yield from component_source(component)
                else:
                    for entry in component.scan():
                        yield entry.key, entry.is_antimatter, entry.value, None, component.schema, None
            except CorruptPageError as exc:
                self._quarantine_component(component, exc)

        for position, entries in enumerate(memory_snapshots):
            sources.append((position - len(memory_snapshots), memory_iterator(entries)))
        for rank, component in enumerate(components):
            sources.append((rank, component_iterator(component)))

        heap: List[Tuple[Any, int, int, Tuple]] = []
        sequence = 0
        iterators = {}
        for rank, iterator in sources:
            iterators[rank] = iterator
            item = next(iterator, None)
            if item is not None:
                heap.append((item[0], rank, sequence, item))
                sequence += 1
        heapq.heapify(heap)

        current_key = object()
        best_rank = None
        best_item = None
        while heap:
            key, rank, _, item = heapq.heappop(heap)
            following = next(iterators[rank], None)
            if following is not None:
                heapq.heappush(heap, (following[0], rank, sequence, following))
                sequence += 1
            if key != current_key:
                if best_item is not None and not best_item[1]:
                    yield SearchResult(best_item[0], best_item[2], best_item[4],
                                       from_memory=best_rank < 0, record=best_item[3],
                                       values=best_item[5])
                current_key = key
                best_rank = rank
                best_item = item
            elif rank < best_rank:
                best_rank = rank
                best_item = item
        if best_item is not None and not best_item[1]:
            yield SearchResult(best_item[0], best_item[2], best_item[4],
                               from_memory=best_rank < 0, record=best_item[3],
                               values=best_item[5])

    # ------------------------------------------------------------------ inspection

    def current_schema(self) -> Optional[InferredSchema]:
        """Schema exposed by the flush callback (None for pass-through datasets)."""
        return getattr(self.flush_callback, "schema", None)

    def storage_size(self) -> int:
        """Total on-disk bytes of all valid components and auxiliary indexes."""
        return sum(component.size_bytes() for component in self.components)

    def component_count(self) -> int:
        return len(self.components)

    def memory_entries_snapshot(self) -> List[MemEntry]:
        """Newest in-memory version of every key with an in-memory entry.

        Reconciles the mutable memtable with the sealed (flush-pending)
        memtables — the mutable version wins, then sealed newest-first — and
        returns the winners in key order.  The index-probe path sweeps this
        instead of the raw memtable, since sealed entries are not yet
        secondary-indexed either.
        """
        merged: Dict[Any, MemEntry] = {}
        mutable_snapshot = self.memory_component.sorted_entries()
        for sealed in list(self.sealed_memtables):  # oldest -> newest
            for entry in sealed.memtable.sorted_entries():
                merged[entry.key] = entry
        for entry in mutable_snapshot:
            merged[entry.key] = entry
        return sorted(merged.values(), key=lambda entry: entry.key)

    def record_count(self) -> int:
        """Live records across disk components and the memtables (approximate:
        exact when keys are not duplicated across components/memtables)."""
        disk = sum(component.record_count for component in list(self.components))
        memory = sum(1 for entry in self.memory_entries_snapshot()
                     if not entry.is_antimatter)
        return disk + memory

    def exact_count(self) -> int:
        """Exact number of live records (reconciles shadowed/deleted keys)."""
        return sum(1 for _ in self.scan())


_NOT_FOUND = object()


def _encode_primary_ref(primary_key: Any) -> bytes:
    from ..btree.keycodec import encode_key

    return encode_key(primary_key)
