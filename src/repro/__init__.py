"""repro — a reproduction of "An LSM-based Tuple Compaction Framework for
Apache AsterixDB" (Alkowaileet, Alsubaiee, Carey; PVLDB 13(9), 2020).

The package implements, from scratch and in Python:

* an LSM B+-tree document-store storage engine with flush/merge lifecycles,
  anti-matter deletes, merge policies, WAL + crash recovery, page-level
  compression with look-aside files, and per-component auxiliary indexes;
* the paper's tuple compaction framework: flush-time schema inference, a
  counter-maintained schema tree structure, and record compaction;
* the vector-based physical record format with consolidated field access;
* a partitioned, operator-based query engine with the optimizer rewrites
  the paper relies on (field-access consolidation/pushdown, schema
  broadcast for repartitioning queries);
* synthetic Twitter/Web-of-Science/Sensors workload generators and the
  benchmark harness that regenerates every table and figure of the paper's
  evaluation section.

* a SQL++ text front-end (lexer, recursive-descent parser, AST, binder)
  compiling query strings into the same executable plans the fluent builder
  produces, plus ``CREATE INDEX`` DDL;
* cost-based access-path selection: WHERE predicates over secondary-indexed
  fields are routed through an index probe or a full scan, whichever the
  device-profile cost model prices cheaper, with an ``explain()`` surface
  showing the decision.

Quick start::

    from repro import Dataset, StorageFormat

    dataset = Dataset.create("Employee", StorageFormat.INFERRED)
    dataset.insert({"id": 1, "name": "Ann", "age": 26})
    dataset.flush_all()
    print(dataset.describe_schema())
    for row in dataset.query("SELECT e.name AS name FROM Employee AS e WHERE e.age < 30"):
        print(row)
"""

from .config import (
    ClusterConfig,
    DatasetConfig,
    DeviceKind,
    LSM_SCHEDULER_ENV_VAR,
    LSMConfig,
    StorageConfig,
    StorageFormat,
)
from .cache import (
    COLUMN_CACHE_BYTES_ENV_VAR,
    ColumnSliceCache,
    PLAN_CACHE_ENV_VAR,
    PlanCache,
)
from .core import Dataset, Partition, PreparedStatement, StorageEnvironment, TupleCompactor
from .errors import (
    CorruptPageError,
    FaultSpecError,
    PermanentIOError,
    QuarantinedComponentError,
    QueryDeadlineError,
    ReproError,
    SchedulerError,
    SqlppError,
    TransientIOError,
)
from .faults import FAULTS_ENV_VAR, FaultInjector, fault_points, get_injector
from .lsm import LSMIOScheduler
from .obs import (
    MetricsRegistry,
    TRACE_ENV_VAR,
    get_registry,
    get_tracer,
    metrics_delta,
)
from .sqlpp import CompiledCreateIndex, CompiledQuery, parse, unparse
from .sqlpp import compile as compile_sqlpp
from .schema import InferredSchema
from .types import (
    ADate,
    ADateTime,
    AMultiset,
    APoint,
    ATime,
    Datatype,
    FieldDeclaration,
    MISSING,
    TypeTag,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "StorageFormat",
    "DeviceKind",
    "DatasetConfig",
    "StorageConfig",
    "LSMConfig",
    "ClusterConfig",
    "Dataset",
    "Partition",
    "PreparedStatement",
    "StorageEnvironment",
    "TupleCompactor",
    "PlanCache",
    "ColumnSliceCache",
    "PLAN_CACHE_ENV_VAR",
    "COLUMN_CACHE_BYTES_ENV_VAR",
    "InferredSchema",
    "ReproError",
    "SchedulerError",
    "SqlppError",
    "TransientIOError",
    "PermanentIOError",
    "CorruptPageError",
    "QuarantinedComponentError",
    "FaultSpecError",
    "QueryDeadlineError",
    "FaultInjector",
    "get_injector",
    "fault_points",
    "FAULTS_ENV_VAR",
    "LSMIOScheduler",
    "LSM_SCHEDULER_ENV_VAR",
    "MetricsRegistry",
    "get_registry",
    "get_tracer",
    "metrics_delta",
    "TRACE_ENV_VAR",
    "parse",
    "unparse",
    "compile_sqlpp",
    "CompiledQuery",
    "CompiledCreateIndex",
    "TypeTag",
    "Datatype",
    "FieldDeclaration",
    "ADate",
    "ADateTime",
    "ATime",
    "APoint",
    "AMultiset",
    "MISSING",
]
