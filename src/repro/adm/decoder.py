"""Decoder and lazy navigation for the ADM physical record format.

Two access styles are provided:

* :func:`ADMDecoder.decode` — materialize the whole record back into Python
  objects (dicts, lists, :class:`~repro.types.AMultiset`, value wrappers).
* :class:`ADMRecordView` — lazy field access that follows the embedded
  offset tables without materializing siblings.  This is the
  "logarithmic/direct time" access the paper contrasts with the
  vector-based format's linear scan (§3.3.1), and it is what the query
  engine's ``get_field`` uses for open/closed datasets.

Declared (closed-part) fields do not carry names or nested declarations in
the payload, so decoding them correctly requires the dataset's
:class:`~repro.types.Datatype`; nested object and collection-item
declarations are threaded through the recursion via a small *type context*:
``None`` (self-describing), a ``Datatype`` (object context), or
``("items", Datatype)`` (collection whose object items are declared).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DecodingError
from ..types import AMultiset, Datatype, MISSING, TypeTag, unpack_fixed, unpack_variable

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Type context threaded through decoding (see module docstring).
TypeContext = Union[None, Datatype, Tuple[str, Optional[Datatype]]]


def _read_u16(buffer: bytes, offset: int) -> int:
    return _U16.unpack_from(buffer, offset)[0]


def _read_u32(buffer: bytes, offset: int) -> int:
    return _U32.unpack_from(buffer, offset)[0]


def _context_for_declaration(declaration) -> TypeContext:
    """Type context of a declared field's value."""
    if declaration.type_tag is TypeTag.OBJECT and declaration.nested is not None:
        return declaration.nested
    if declaration.item_nested is not None:
        return ("items", declaration.item_nested)
    return None


class ADMDecoder:
    """Decodes ADM physical bytes back into Python values."""

    def __init__(self, datatype: Optional[Datatype] = None) -> None:
        self.datatype = datatype

    def decode(self, payload: bytes) -> Dict[str, Any]:
        """Materialize a full record."""
        value, _ = self._decode_value(payload, 0, self.datatype)
        if not isinstance(value, dict):
            raise DecodingError("top-level ADM payload is not an object")
        return value

    def decode_value(self, payload: bytes) -> Any:
        """Materialize an arbitrary tagged value."""
        value, _ = self._decode_value(payload, 0, None)
        return value

    # -- recursive decoding ---------------------------------------------------

    def _decode_value(self, buffer: bytes, offset: int, context: TypeContext) -> Tuple[Any, int]:
        try:
            tag = TypeTag(buffer[offset])
        except (ValueError, IndexError) as exc:
            raise DecodingError(f"bad type tag at offset {offset}") from exc
        if tag is TypeTag.OBJECT:
            declared = context if isinstance(context, Datatype) else None
            return self._decode_object(buffer, offset, declared)
        if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
            item_nested = context[1] if isinstance(context, tuple) else None
            return self._decode_collection(buffer, offset, tag, item_nested)
        if tag is TypeTag.NULL:
            return None, offset + 1
        if tag is TypeTag.MISSING:
            return MISSING, offset + 1
        if tag.is_fixed_length:
            width = tag.fixed_length
            return unpack_fixed(tag, buffer, offset + 1), offset + 1 + width
        if tag.is_variable_length:
            length = _read_u32(buffer, offset + 1)
            start = offset + 5
            return unpack_variable(tag, bytes(buffer[start:start + length])), start + length
        raise DecodingError(f"unexpected tag {tag.name} at offset {offset}")

    def _decode_object(self, buffer: bytes, offset: int,
                       declared: Optional[Datatype]) -> Tuple[Dict[str, Any], int]:
        total_length = _read_u32(buffer, offset + 1)
        n_closed = _read_u16(buffer, offset + 5)
        declared_fields = list(declared.fields) if declared is not None else []
        if declared is not None and n_closed != len(declared_fields):
            raise DecodingError(
                f"record declares {n_closed} closed fields but datatype "
                f"{declared.name!r} declares {len(declared_fields)}"
            )
        record: Dict[str, Any] = {}
        cursor = offset + 7
        for index in range(n_closed):
            value_offset = _read_u32(buffer, cursor)
            cursor += 4
            if value_offset == 0:
                continue
            if index < len(declared_fields):
                declaration = declared_fields[index]
                context = _context_for_declaration(declaration)
                name = declaration.name
            else:
                context, name = None, f"_closed_{index}"
            value, _ = self._decode_value(buffer, offset + value_offset, context)
            record[name] = value
        open_header = self._open_part_offset(buffer, offset, n_closed)
        n_open = _read_u16(buffer, open_header)
        cursor = open_header + 2
        for _ in range(n_open):
            entry_offset = _read_u32(buffer, cursor)
            cursor += 4
            name, value = self._decode_open_entry(buffer, offset + entry_offset)
            record[name] = value
        return record, offset + total_length

    def _open_part_offset(self, buffer: bytes, object_offset: int, n_closed: int) -> int:
        """Locate the open-part header of an object.

        The open part starts right after the last closed value.  Closed
        payloads are written contiguously in declaration order, so the open
        header sits at the maximum (offset + encoded length) among present
        closed fields, or directly after the offsets table when all declared
        fields are absent.
        """
        header_end = object_offset + 7 + 4 * n_closed
        end = header_end
        cursor = object_offset + 7
        for _ in range(n_closed):
            value_offset = _read_u32(buffer, cursor)
            cursor += 4
            if value_offset == 0:
                continue
            value_end = self._value_end(buffer, object_offset + value_offset)
            end = max(end, value_end)
        return end

    def _value_end(self, buffer: bytes, offset: int) -> int:
        tag = TypeTag(buffer[offset])
        if tag in (TypeTag.OBJECT, TypeTag.ARRAY, TypeTag.MULTISET):
            return offset + _read_u32(buffer, offset + 1)
        if tag in (TypeTag.NULL, TypeTag.MISSING):
            return offset + 1
        if tag.is_fixed_length:
            return offset + 1 + tag.fixed_length
        if tag.is_variable_length:
            return offset + 5 + _read_u32(buffer, offset + 1)
        raise DecodingError(f"unexpected tag {tag.name} at offset {offset}")

    def _decode_open_entry(self, buffer: bytes, offset: int) -> Tuple[str, Any]:
        name_length = _read_u16(buffer, offset)
        name_start = offset + 2
        name = bytes(buffer[name_start:name_start + name_length]).decode("utf-8")
        value, _ = self._decode_value(buffer, name_start + name_length, None)
        return name, value

    def _decode_collection(self, buffer: bytes, offset: int, tag: TypeTag,
                           item_nested: Optional[Datatype] = None):
        n_items = _read_u32(buffer, offset + 5)
        cursor = offset + 9
        items: List[Any] = []
        for _ in range(n_items):
            item_offset = _read_u32(buffer, cursor)
            cursor += 4
            value, _ = self._decode_value(buffer, offset + item_offset, item_nested)
            items.append(value)
        end = offset + _read_u32(buffer, offset + 1)
        if tag is TypeTag.MULTISET:
            return AMultiset(items), end
        return items, end


def _navigate_plain(value: Any, path) -> Any:
    """Navigate a path over already-materialized Python values."""
    current = value
    for step in path:
        if isinstance(step, str):
            if not isinstance(current, dict) or step not in current:
                return MISSING
            current = current[step]
        else:
            items = list(current.items) if isinstance(current, AMultiset) else current
            if not isinstance(items, list) or not isinstance(step, int):
                return MISSING
            if step < 0 or step >= len(items):
                return MISSING
            current = items[step]
    return current


class ADMRecordView:
    """Lazy field access over an encoded ADM record.

    ``get_field`` navigates one path without materializing unrelated values;
    this models AsterixDB's ``getField()`` runtime function whose cost does
    not depend on the position of the requested field within the record.
    """

    def __init__(self, payload: bytes, datatype: Optional[Datatype] = None) -> None:
        self.payload = payload
        self.datatype = datatype
        self._decoder = ADMDecoder(datatype)

    def materialize(self) -> Dict[str, Any]:
        """Decode the full record."""
        return self._decoder.decode(self.payload)

    def get_field(self, *path: Any) -> Any:
        """Follow ``path`` (field names and array indexes) and return the value.

        Returns :data:`~repro.types.MISSING` when any step is absent, which
        matches SQL++ MISSING propagation.  A ``"*"`` step matches every item
        of a collection and turns the result into a list (one entry per item).
        """
        if "*" in path:
            index = path.index("*")
            prefix, suffix = path[:index], path[index + 1:]
            collection = self.get_field(*prefix) if prefix else self.materialize()
            if isinstance(collection, AMultiset):
                items = list(collection.items)
            elif isinstance(collection, list):
                items = collection
            else:
                return MISSING
            if not suffix:
                return items
            return [_navigate_plain(item, suffix) for item in items]
        return self._get(0, self.datatype, list(path))

    def get_items(self, *path: Any) -> Sequence[Any]:
        """Return all items of the collection found at ``path`` (for UNNEST)."""
        value = self.get_field(*path)
        if isinstance(value, AMultiset):
            return list(value.items)
        if isinstance(value, list):
            return value
        if value is MISSING or value is None:
            return []
        return [value]

    # -- internal navigation --------------------------------------------------

    def _get(self, offset: int, context: TypeContext, path: List[Any]) -> Any:
        if not path:
            value, _ = self._decoder._decode_value(self.payload, offset, context)
            return value
        step, rest = path[0], path[1:]
        tag = TypeTag(self.payload[offset])
        if isinstance(step, str):
            if tag is not TypeTag.OBJECT:
                return MISSING
            declared = context if isinstance(context, Datatype) else None
            return self._get_object_field(offset, declared, step, rest)
        if isinstance(step, int):
            if tag not in (TypeTag.ARRAY, TypeTag.MULTISET):
                return MISSING
            item_nested = context[1] if isinstance(context, tuple) else None
            return self._get_collection_item(offset, item_nested, step, rest)
        raise DecodingError(f"unsupported path step {step!r}")

    def _get_object_field(self, offset: int, declared: Optional[Datatype],
                          name: str, rest: List[Any]) -> Any:
        buffer = self.payload
        n_closed = _read_u16(buffer, offset + 5)
        declared_fields = list(declared.fields) if declared is not None else []
        if declared is not None:
            index = declared.index_of(name)
            if index is not None and index < n_closed:
                value_offset = _read_u32(buffer, offset + 7 + 4 * index)
                if value_offset == 0:
                    return MISSING
                context = _context_for_declaration(declared_fields[index])
                return self._get(offset + value_offset, context, rest)
        open_header = self._decoder._open_part_offset(buffer, offset, n_closed)
        n_open = _read_u16(buffer, open_header)
        cursor = open_header + 2
        for _ in range(n_open):
            entry_offset = _read_u32(buffer, cursor)
            cursor += 4
            entry = offset + entry_offset
            name_length = _read_u16(buffer, entry)
            entry_name = bytes(buffer[entry + 2:entry + 2 + name_length]).decode("utf-8")
            if entry_name == name:
                return self._get(entry + 2 + name_length, None, rest)
        return MISSING

    def _get_collection_item(self, offset: int, item_nested: Optional[Datatype],
                             index: int, rest: List[Any]) -> Any:
        buffer = self.payload
        n_items = _read_u32(buffer, offset + 5)
        if index < 0 or index >= n_items:
            return MISSING
        item_offset = _read_u32(buffer, offset + 9 + 4 * index)
        return self._get(offset + item_offset, item_nested, rest)
