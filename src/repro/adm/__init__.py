"""ADM physical record format (the paper's open/closed baseline)."""

from .encoder import ADMEncoder
from .decoder import ADMDecoder, ADMRecordView

__all__ = ["ADMEncoder", "ADMDecoder", "ADMRecordView"]
