"""Binary encoder for the ADM physical record format.

This is the paper's *baseline* physical format (paper §2.2 and [3]): a
recursive, self-describing layout in which

* every value carries a one-byte type tag;
* every **object** stores a 4-byte offset per declared ("closed part")
  field, followed by the undeclared ("open part") fields each of which
  stores its field name inline;
* every **array/multiset** stores a 4-byte offset per item.

Those per-nested-value offsets and inline names are exactly the overheads
the tuple compactor and the vector-based format remove, so this encoder
deliberately reproduces them byte-for-concept (if not byte-for-byte with
AsterixDB's Java implementation).

The encoder is recursive: children are encoded into their own buffers and
then copied into the parent, mirroring the repeated memory-copy behaviour
the paper measured to be ~40 % slower to construct than the vector-based
format.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional

from ..errors import EncodingError
from ..types import Datatype, MISSING, Missing, TypeTag, pack_fixed, pack_variable, type_tag_of

#: struct formats used throughout the format.
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class ADMEncoder:
    """Encodes Python records into ADM physical bytes.

    Parameters
    ----------
    datatype:
        The declared datatype of the dataset.  Fields present in the
        declaration are written to the closed part (no inline names); all
        other fields go to the open part with their names inline.  Pass a
        datatype declaring only the primary key to model the paper's
        *open* configuration, or a fully declared one for *closed*.
    validate:
        When true, records are validated against the datatype before
        encoding (AsterixDB always enforces declared constraints; the paper
        attributes part of the closed configuration's ingest cost to it).
    """

    def __init__(self, datatype: Optional[Datatype] = None, validate: bool = True) -> None:
        self.datatype = datatype
        self.validate = validate and datatype is not None

    # -- public API ---------------------------------------------------------

    def encode(self, record: Dict[str, Any]) -> bytes:
        """Encode a top-level record (must be an object)."""
        if not isinstance(record, dict):
            raise EncodingError("top-level ADM records must be objects")
        if self.validate:
            self.datatype.validate(record)
        return self._encode_object(record, self.datatype)

    def encode_value(self, value: Any) -> bytes:
        """Encode an arbitrary tagged value (used by secondary indexes)."""
        return self._encode_value(value, None)

    # -- recursive encoding ---------------------------------------------------

    def _encode_value(self, value: Any, declared: Optional[Datatype]) -> bytes:
        tag = type_tag_of(value)
        if tag is TypeTag.OBJECT:
            return self._encode_object(value, declared)
        if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
            return self._encode_collection(tag, value, None)
        if tag in (TypeTag.NULL, TypeTag.MISSING):
            return bytes([tag])
        if tag.is_fixed_length:
            return bytes([tag]) + pack_fixed(tag, value)
        if tag.is_variable_length:
            payload = pack_variable(tag, value)
            return bytes([tag]) + _U32.pack(len(payload)) + payload
        raise EncodingError(f"cannot encode value with tag {tag.name}")

    def _encode_declared_field(self, declaration, value: Any) -> bytes:
        """Encode a declared field, threading nested/item declarations."""
        tag = type_tag_of(value)
        if tag is TypeTag.OBJECT and declaration.nested is not None:
            return self._encode_object(value, declaration.nested)
        if tag in (TypeTag.ARRAY, TypeTag.MULTISET) and declaration.item_nested is not None:
            return self._encode_collection(tag, value, declaration.item_nested)
        return self._encode_value(value, None)

    def _encode_object(self, record: Dict[str, Any], declared: Optional[Datatype]) -> bytes:
        """Object layout::

            tag(1) | total_length(4) | n_closed(2) | closed_offsets(4*n)
                   | closed_values...
                   | n_open(2) | open_offsets(4*n)
                   | (name_len(2) | name | value)...

        Offsets are relative to the start of the object and 0 means "field
        absent" (optional declared field not present in this record).
        """
        declared_fields = list(declared.fields) if declared is not None else []
        declared_names = {declaration.name for declaration in declared_fields}
        open_items = [
            (name, value) for name, value in record.items()
            if name not in declared_names and not isinstance(value, Missing)
        ]

        closed_payloads = []
        for declaration in declared_fields:
            value = record.get(declaration.name, MISSING)
            if isinstance(value, Missing):
                closed_payloads.append(b"")
                continue
            closed_payloads.append(self._encode_declared_field(declaration, value))

        open_payloads = []
        for name, value in open_items:
            name_bytes = name.encode("utf-8")
            open_payloads.append(_U16.pack(len(name_bytes)) + name_bytes + self._encode_value(value, None))

        header_size = 1 + 4 + 2 + 4 * len(declared_fields)
        open_header_size = 2 + 4 * len(open_items)

        closed_offsets = []
        cursor = header_size
        for payload in closed_payloads:
            closed_offsets.append(cursor if payload else 0)
            cursor += len(payload)
        open_start = cursor + open_header_size
        open_offsets = []
        cursor = open_start
        for payload in open_payloads:
            open_offsets.append(cursor)
            cursor += len(payload)
        total_length = cursor

        parts = [bytes([TypeTag.OBJECT]), _U32.pack(total_length), _U16.pack(len(declared_fields))]
        parts.extend(_U32.pack(offset) for offset in closed_offsets)
        parts.extend(payload for payload in closed_payloads if payload)
        parts.append(_U16.pack(len(open_items)))
        parts.extend(_U32.pack(offset) for offset in open_offsets)
        parts.extend(open_payloads)
        encoded = b"".join(parts)
        if len(encoded) != total_length:
            raise EncodingError(
                f"internal error: object length mismatch ({len(encoded)} != {total_length})"
            )
        return encoded

    def _encode_collection(self, tag: TypeTag, items, item_nested: Optional[Datatype]) -> bytes:
        """Collection layout::

            tag(1) | total_length(4) | n_items(4) | item_offsets(4*n) | items...

        ``item_nested`` is the declared datatype of object items (if any); it
        lets closed datasets omit item field names from storage, which is the
        dominant saving for the Sensors dataset's ``readings`` arrays.
        """
        payloads = []
        for item in items:
            if item_nested is not None and isinstance(item, dict):
                payloads.append(self._encode_object(item, item_nested))
            else:
                payloads.append(self._encode_value(item, None))
        header_size = 1 + 4 + 4 + 4 * len(payloads)
        offsets = []
        cursor = header_size
        for payload in payloads:
            offsets.append(cursor)
            cursor += len(payload)
        parts = [bytes([tag]), _U32.pack(cursor), _U32.pack(len(payloads))]
        parts.extend(_U32.pack(offset) for offset in offsets)
        parts.extend(payloads)
        return b"".join(parts)
