"""Structured event API: one call, three sinks.

An *event* is a named point-in-time fact with structured fields (e.g. the
optimizer's estimated cardinality missing the measured one by 10x).  Each
:func:`emit_event` call

* logs through the ``repro.obs`` :mod:`logging` logger (always — events are
  operator-facing and must surface even with tracing off), rendering the
  fields as ``key=value`` pairs after the event name;
* records into the tracer's event buffer / JSONL export when tracing is on,
  attached to the current span so a misestimate can be tied to the exact
  query execution that produced it;
* bumps the ``events_total{event=...}`` counter in the default metrics
  registry, so event rates show up in metrics snapshots.
"""

from __future__ import annotations

import logging
from typing import Any

from .metrics import get_registry
from .tracing import get_tracer

logger = logging.getLogger("repro.obs")

#: Well-known event emitted when an analyzed query's estimated cardinality
#: diverges from the measured one by more than 10x (ROADMAP item 5 feeder).
CARDINALITY_MISESTIMATE = "cardinality_misestimate"

#: Well-known event emitted the first time an LSM component fails a page
#: checksum and is quarantined; queries touching it then raise
#: :class:`~repro.errors.QuarantinedComponentError` instead of returning
#: silently wrong rows.
COMPONENT_QUARANTINED = "component_quarantined"


def emit_event(name: str, level: int = logging.WARNING, **fields: Any) -> None:
    """Publish one structured event to the log, the tracer, and the registry."""
    rendered = " ".join(f"{key}={value}" for key, value in fields.items())
    logger.log(level, "%s %s", name, rendered)
    get_tracer().record_event(name, **fields)
    get_registry().counter("events_total", event=name).inc()
