"""Structured tracing: a span tree over queries and LSM maintenance.

A *span* is one timed unit of work (``query.execute``, ``query.partition``,
``lsm.flush`` ...) with a parent, so a traced query unfolds into a tree:
parse → bind → optimize → per-partition execute → per-operator, and
background flushes/merges submitted while an ingest span is open attach
beneath it.  Design points:

* **Monotonic clocks.**  Span start/end come from ``time.perf_counter()``;
  a wall-clock anchor captured at import converts them to unix seconds for
  export, so durations are immune to wall-clock steps.
* **contextvars propagation.**  The "current span" lives in a
  :class:`contextvars.ContextVar`.  Thread pools do *not* inherit context
  automatically, so the query executor and the LSM scheduler wrap submitted
  tasks with :meth:`Tracer.wrap_context`, which snapshots the submitting
  context — a partition span lands under its query, and a background flush
  lands under the ingest span that sealed the memtable, even though both
  run on pool threads.
* **Disabled-by-default fast path.**  When tracing is off,
  :meth:`Tracer.span` returns one shared no-op object and
  :meth:`wrap_context` returns the callable unchanged: no allocation, no
  context copy, no lock — the overhead contract the parity tests assert.
* **Export.**  ``REPRO_TRACE=1`` (or ``true``/``on``/``yes``) records spans
  in a bounded in-memory ring only; any other non-empty value is treated as
  a file path and additionally appends one JSON object per line (spans and
  events), the format ``python -m repro.obs.validate`` checks in CI.
"""

from __future__ import annotations

import io
import itertools
import json
import threading
import time
from contextvars import ContextVar, copy_context
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..config import env_str

#: Environment variable controlling tracing: unset/empty = off, a truthy
#: flag = in-memory only, anything else = JSONL output path.
TRACE_ENV_VAR = "REPRO_TRACE"

_TRUTHY_FLAGS = {"1", "true", "on", "yes"}

#: Wall-clock anchor: ``unix_seconds = _WALL_ANCHOR + perf_counter_value``.
_WALL_ANCHOR = time.time() - time.perf_counter()


@dataclass
class Span:
    """One finished unit of traced work."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    thread: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "start_unix": _WALL_ANCHOR + self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    # Identity attributes so callers never need an enabled-check to format.
    trace_id = ""
    span_id = ""


NULL_SPAN = _NullSpan()

_current_span: "ContextVar[Optional[ActiveSpan]]" = ContextVar(
    "repro_current_span", default=None)


class ActiveSpan:
    """Context manager for one in-progress span.

    Ids are assigned at ``__enter__`` (a span opened under no parent starts
    a new trace); the finished :class:`Span` is handed to the tracer at
    ``__exit__``, where the context variable is restored so siblings nest
    correctly even across ``yield``-free recursion.
    """

    __slots__ = ("_tracer", "name", "attributes", "trace_id", "span_id",
                 "parent_id", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._start = 0.0
        self._token = None

    def __enter__(self) -> "ActiveSpan":
        parent = _current_span.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = self._tracer._next_trace_id()
        self.span_id = self._tracer._next_span_id()
        self._token = _current_span.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        _current_span.reset(self._token)
        if exc is not None:
            self.attributes["error"] = repr(exc)
        self._tracer._record(Span(
            trace_id=self.trace_id, span_id=self.span_id, parent_id=self.parent_id,
            name=self.name, start=self._start, end=end,
            thread=threading.current_thread().name, attributes=self.attributes))
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value


class Tracer:
    """Process-wide span recorder with a bounded in-memory buffer."""

    def __init__(self, max_spans: int = 50_000) -> None:
        self.max_spans = max_spans
        self._lock = threading.Lock()
        #: Export file I/O runs under its own (blocking-allowed) lock so the
        #: hot span-recording lock never covers an open()/write()/flush().
        self._export_lock = threading.Lock()
        self._spans: List[Span] = []  # guarded-by: _lock
        self._events: List[Dict[str, Any]] = []  # guarded-by: _lock
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._export_path: Optional[str] = None  # guarded-by: _export_lock
        self._export_file: Optional[io.TextIOBase] = None  # guarded-by: _export_lock
        #: Tri-state: None = follow the environment variable (resolved
        #: lazily, cached), True/False = explicitly configured.
        self._configured: Optional[bool] = None
        self._env_resolved = False
        self._env_enabled = False

    # -- enablement ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        if self._configured is not None:
            return self._configured
        if not self._env_resolved:
            self._resolve_env()
        return self._env_enabled

    def _resolve_env(self) -> None:
        value = env_str(TRACE_ENV_VAR)
        with self._lock:
            self._env_resolved = True
            self._env_enabled = bool(value)
            if value and value.lower() not in _TRUTHY_FLAGS:
                with self._export_lock:
                    self._export_path = value

    def refresh_from_env(self) -> None:
        """Re-read ``REPRO_TRACE`` (tests flip the variable mid-process)."""
        self._close_export()
        with self._lock:
            self._env_resolved = False
            with self._export_lock:
                self._export_path = None
        self._configured = None

    def enable(self, export_path: Optional[str] = None) -> None:
        """Force tracing on (optionally exporting JSONL), ignoring the env."""
        self._configured = True
        if export_path is not None:
            self._close_export()
            with self._export_lock:
                self._export_path = export_path

    def disable(self) -> None:
        """Force tracing off, ignoring the environment variable."""
        self._configured = False
        self._close_export()

    # -- span API ----------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span under the current context (no-op while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return ActiveSpan(self, name, attributes)

    def current_span(self):
        """The innermost open span of the calling context (or ``None``)."""
        return _current_span.get()

    def wrap_context(self, fn: Callable) -> Callable:
        """Bind ``fn`` to a snapshot of the submitting thread's context.

        Worker pools start tasks in an empty context, which would orphan
        their spans; wrapping at submission carries the current span across
        the pool boundary.  Returns ``fn`` unchanged while disabled, keeping
        the disabled path allocation-free.
        """
        if not self.enabled:
            return fn
        context = copy_context()
        def bound(*args: Any, **kwargs: Any):
            return context.run(fn, *args, **kwargs)
        return bound

    def record_span(self, name: str, trace_id: str, parent_id: Optional[str],
                    start: float, end: float, **attributes: Any) -> None:
        """Record an already-measured span (per-operator probe results)."""
        if not self.enabled:
            return
        self._record(Span(trace_id=trace_id, span_id=self._next_span_id(),
                          parent_id=parent_id, name=name, start=start, end=end,
                          thread=threading.current_thread().name,
                          attributes=attributes))

    def record_event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time structured event (see :mod:`repro.obs.events`)."""
        if not self.enabled:
            return
        span = _current_span.get()
        event = {
            "type": "event",
            "name": name,
            "time": time.perf_counter(),
            "time_unix": _WALL_ANCHOR + time.perf_counter(),
            "trace_id": span.trace_id if span is not None else None,
            "span_id": span.span_id if span is not None else None,
            "thread": threading.current_thread().name,
            "fields": fields,
        }
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.max_spans:
                del self._events[: len(self._events) - self.max_spans]
        self._export(event)

    # -- inspection ---------------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return [span for span in self._spans if span.trace_id == trace_id]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            if name is None:
                return list(self._events)
            return [event for event in self._events if event["name"] == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()

    # -- internals ----------------------------------------------------------------

    def _next_span_id(self) -> str:
        return f"s{next(self._ids):08x}"

    def _next_trace_id(self) -> str:
        return f"t{next(self._trace_ids):08x}"

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.max_spans:
                del self._spans[: len(self._spans) - self.max_spans]
        self._export(span.to_dict())

    def _export(self, payload: Dict[str, Any]) -> None:
        # Serialized by _export_lock alone: span/event state (_lock) is never
        # held across the file I/O below.
        with self._export_lock:
            if self._export_path is None:
                return
            if self._export_file is None:
                self._export_file = open(self._export_path, "a", encoding="utf-8")
            self._export_file.write(json.dumps(payload, default=str) + "\n")
            self._export_file.flush()

    def _close_export(self) -> None:
        with self._export_lock:
            if self._export_file is not None:
                self._export_file.close()
                self._export_file = None


#: Process-wide tracer every layer records into.
tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return tracer
