"""Thread-safe metrics registry: labeled counters, gauges, and histograms.

Every layer of the engine — simulated devices, buffer cache, WAL, LSM
lifecycle, scheduler, query executor — publishes into one registry instead
of inventing private counter plumbing.  The model follows the Prometheus
client conventions scaled down to what the reproduction needs:

* an *instrument* is identified by its name plus a frozen label set
  (``registry.counter("device_bytes_read", io_class="data")``); requesting
  the same (name, labels) pair returns the same instrument, so hot paths
  can resolve a handle once and increment it lock-cheap forever after;
* **counters** only go up, **gauges** are set to the latest value,
  **histograms** record count/sum/min/max of observations (enough for the
  benchmark summaries; no bucket vectors to keep the hot path trivial);
* :meth:`MetricsRegistry.snapshot` returns a plain, JSON-serializable dict
  and :func:`metrics_delta` subtracts two snapshots, which is how the
  benchmark harness and ``DataFeed`` report per-run activity against the
  process-wide registry without resetting anybody else's counters.

Instruments use one lock per instrument (not a registry-wide lock) so
concurrent partition workers and background flush/merge threads never
serialize on each other's unrelated counters.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical instrument key: ``name`` or ``name{a=1,b=x}`` (labels sorted)."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("key", "_lock", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-value instrument (queue depths, resident pages, ...)."""

    __slots__ = ("key", "_lock", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("key", "_lock", "count", "sum", "min", "max")

    def __init__(self, key: str) -> None:
        self.key = key
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def summary(self) -> Dict[str, float]:
        with self._lock:
            mean = self.sum / self.count if self.count else 0.0
            return {"count": self.count, "sum": self.sum, "mean": mean,
                    "min": self.min if self.min is not None else 0.0,
                    "max": self.max if self.max is not None else 0.0}


class MetricsRegistry:
    """Get-or-create store of named, labeled instruments.

    The registry lock only guards instrument *creation*; updates go through
    each instrument's own lock.  A name may carry several label sets but
    only one instrument type — asking for ``counter("x")`` after
    ``gauge("x")`` is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}
        self._types: Dict[str, type] = {}

    # -- instrument access -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def _get_or_create(self, cls: type, name: str, labels: Dict[str, Any]):
        key = _label_key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is not None:
                if not isinstance(instrument, cls):
                    raise TypeError(
                        f"metric {key!r} already registered as "
                        f"{type(instrument).__name__}, not {cls.__name__}")
                return instrument
            registered = self._types.get(name)
            if registered is not None and registered is not cls:
                raise TypeError(
                    f"metric name {name!r} already registered as "
                    f"{registered.__name__}, not {cls.__name__}")
            instrument = cls(key)
            self._instruments[key] = instrument
            self._types[name] = cls
            return instrument

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable view of every instrument's current state."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in instruments:
            if isinstance(instrument, Counter):
                out["counters"][instrument.key] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][instrument.key] = instrument.value
            else:
                out["histograms"][instrument.key] = instrument.summary()
        return out

    def reset(self) -> None:
        """Drop every instrument (test isolation helper)."""
        with self._lock:
            self._instruments.clear()
            self._types.clear()


def metrics_delta(current: Dict[str, Dict[str, Any]],
                  earlier: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Activity between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram count/sum are subtracted; gauges keep the current
    value (a gauge's "delta" is meaningless); histogram min/max are the
    current run's bounds only when the count changed, else zeroed.
    """
    delta: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
    earlier_counters = earlier.get("counters", {})
    for key, value in current.get("counters", {}).items():
        delta["counters"][key] = value - earlier_counters.get(key, 0.0)
    delta["gauges"] = dict(current.get("gauges", {}))
    earlier_histograms = earlier.get("histograms", {})
    for key, summary in current.get("histograms", {}).items():
        before = earlier_histograms.get(key, {})
        count = summary["count"] - before.get("count", 0)
        total = summary["sum"] - before.get("sum", 0.0)
        delta["histograms"][key] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": summary["min"] if count else 0.0,
            "max": summary["max"] if count else 0.0,
        }
    return delta


#: Process-wide default registry.  Storage environments default to it (an
#: explicit per-environment registry isolates tests), and the benchmark
#: harness snapshots it around every measured run.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry
