"""Common ``to_dict()`` protocol for the engine's stats dataclasses.

Every subsystem reports through a small dataclass (``IOStats``,
``CacheStats``, ``IngestStats``, ``ExecutionStats``, ``FeedReport``, ...),
and before this mixin each benchmark hand-rolled its own dict conversion
for ``extra_info`` JSON export.  :class:`StatsDictMixin` gives them all one
recursive, JSON-serializable ``to_dict()``:

* every dataclass field is included, except names listed in ``_EXCLUDE``
  (e.g. a report's embedded ``QueryResult`` — rows do not belong in a
  metrics export);
* property names listed in ``_DERIVED`` are evaluated and included too, so
  derived ratios (``hit_ratio``, ``write_amplification``,
  ``measured_speedup``) travel with the raw counters they come from;
* nested values convert recursively: anything with a ``to_dict`` uses it,
  sequences map over their items, dict keys are stringified, enums export
  their ``value``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, ClassVar, Dict, Tuple


def convert_value(value: Any) -> Any:
    """Best-effort conversion of one value into JSON-serializable data."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): convert_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [convert_value(item) for item in value]
    return value


class StatsDictMixin:
    """Uniform ``to_dict()`` for stats/report dataclasses."""

    #: Property names to evaluate and include alongside the fields.
    _DERIVED: ClassVar[Tuple[str, ...]] = ()
    #: Field names to leave out of the export.
    _EXCLUDE: ClassVar[Tuple[str, ...]] = ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for spec in dataclasses.fields(self):
            if spec.name in self._EXCLUDE:
                continue
            out[spec.name] = convert_value(getattr(self, spec.name))
        for name in self._DERIVED:
            out[name] = convert_value(getattr(self, name))
        return out
