"""Schema validator for exported trace files (``python -m repro.obs.validate``).

CI runs a benchmark with ``REPRO_TRACE=<path>`` and then validates the
emitted JSONL: every line must be a JSON object; span lines need the
required fields with sane values (``end >= start``, non-empty ids); every
non-root span's ``parent_id`` must resolve to a span of the same trace
recorded somewhere in the file (no orphans); event lines need a name and a
timestamp.  Exit status 0 means the file is schema-valid; errors are
printed one per line and exit status is 1.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Tuple

#: Fields every exported span object must carry.
SPAN_REQUIRED_FIELDS = ("trace_id", "span_id", "name", "start", "end", "thread", "attributes")

#: Fields every exported event object must carry.
EVENT_REQUIRED_FIELDS = ("name", "time", "fields")


def validate_trace_lines(lines: List[str]) -> Tuple[List[str], Dict[str, int]]:
    """Validate JSONL trace content; returns (errors, summary counts)."""
    errors: List[str] = []
    spans: List[Tuple[int, Dict[str, Any]]] = []
    span_ids: Dict[str, str] = {}  # span_id -> trace_id
    counts = {"spans": 0, "events": 0, "traces": 0}

    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {number}: expected a JSON object, got {type(record).__name__}")
            continue
        kind = record.get("type")
        if kind == "span":
            counts["spans"] += 1
            missing = [name for name in SPAN_REQUIRED_FIELDS if name not in record]
            if missing:
                errors.append(f"line {number}: span missing fields {missing}")
                continue
            if not record["span_id"] or not record["trace_id"]:
                errors.append(f"line {number}: span has empty span_id/trace_id")
                continue
            if not isinstance(record["start"], (int, float)) or \
                    not isinstance(record["end"], (int, float)):
                errors.append(f"line {number}: span start/end must be numbers")
                continue
            if record["end"] < record["start"]:
                errors.append(f"line {number}: span {record['span_id']} ends before it starts")
            if record["span_id"] in span_ids:
                errors.append(f"line {number}: duplicate span_id {record['span_id']}")
            span_ids[record["span_id"]] = record["trace_id"]
            spans.append((number, record))
        elif kind == "event":
            counts["events"] += 1
            missing = [name for name in EVENT_REQUIRED_FIELDS if name not in record]
            if missing:
                errors.append(f"line {number}: event missing fields {missing}")
        else:
            errors.append(f"line {number}: unknown record type {kind!r}")

    for number, record in spans:
        parent = record.get("parent_id")
        if parent is None:
            continue
        if parent not in span_ids:
            errors.append(f"line {number}: orphan span {record['span_id']} "
                          f"(parent {parent} not in file)")
        elif span_ids[parent] != record["trace_id"]:
            errors.append(f"line {number}: span {record['span_id']} parent {parent} "
                          "belongs to a different trace")

    counts["traces"] = len({trace for trace in span_ids.values()})
    return errors, counts


def validate_trace(path: str) -> List[str]:
    """Validate one exported trace file; returns the list of errors."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    errors, _ = validate_trace_lines(lines)
    return errors


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 2
    errors, counts = validate_trace_lines(lines)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"INVALID: {len(errors)} error(s) in {path}", file=sys.stderr)
        return 1
    if counts["spans"] == 0:
        print(f"INVALID: {path} contains no spans", file=sys.stderr)
        return 1
    print(f"OK: {counts['spans']} spans, {counts['events']} events, "
          f"{counts['traces']} trace(s) in {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
