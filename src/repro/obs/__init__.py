"""Engine-wide observability: metrics registry, tracing, events.

One coherent layer replacing per-subsystem counter plumbing (ROADMAP items
1 and 5):

* :mod:`repro.obs.metrics` — a thread-safe registry of labeled counters /
  gauges / histograms with a snapshot/delta API; the buffer cache, devices,
  WAL, LSM lifecycle, scheduler, and query executor all publish into it;
* :mod:`repro.obs.tracing` — span trees over queries and background
  maintenance, propagated across worker pools via ``contextvars`` and
  exportable as JSONL through the ``REPRO_TRACE`` environment variable;
* :mod:`repro.obs.events` — structured warnings (cardinality misestimates)
  fanned out to logging, the trace, and the registry;
* :mod:`repro.obs.statsdict` — the common ``to_dict()`` protocol the stats
  dataclasses share for JSON export;
* :mod:`repro.obs.validate` — the JSONL schema validator CI runs over
  exported traces.
"""

from .events import CARDINALITY_MISESTIMATE, COMPONENT_QUARANTINED, emit_event
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_delta,
)
from .statsdict import StatsDictMixin, convert_value
from .tracing import NULL_SPAN, Span, TRACE_ENV_VAR, Tracer, get_tracer, tracer
from .validate import validate_trace, validate_trace_lines

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metrics_delta",
    "Span",
    "Tracer",
    "tracer",
    "get_tracer",
    "NULL_SPAN",
    "TRACE_ENV_VAR",
    "emit_event",
    "CARDINALITY_MISESTIMATE",
    "COMPONENT_QUARANTINED",
    "StatsDictMixin",
    "convert_value",
    "validate_trace",
    "validate_trace_lines",
]
