"""Node controller: one worker node of the simulated cluster (paper Figure 3).

Each node controller owns a storage environment (buffer cache, transaction
log, simulated storage device) and hosts a fixed number of data partitions
per dataset.  Node 0 doubles as the metadata node, which in AsterixDB holds
the declared datatypes and dataset definitions; here that role amounts to
keeping the authoritative copy of every dataset's configuration so that the
cluster controller can re-create dataset handles.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import DatasetConfig, StorageConfig
from ..core.environment import StorageEnvironment
from ..types import Datatype


class NodeController:
    """One worker node (NC) of the cluster."""

    def __init__(self, node_id: int, storage_config: Optional[StorageConfig] = None,
                 partitions_per_node: int = 2) -> None:
        self.node_id = node_id
        self.partitions_per_node = partitions_per_node
        self.environment = StorageEnvironment(storage_config, node_id=node_id)
        #: Metadata-node bookkeeping (only consulted on node 0).
        self.dataset_catalog: Dict[str, DatasetConfig] = {}
        self.datatype_catalog: Dict[str, Datatype] = {}

    @property
    def is_metadata_node(self) -> bool:
        return self.node_id == 0

    # -- metadata-node duties ------------------------------------------------------

    def register_dataset(self, config: DatasetConfig, datatype: Datatype) -> None:
        self.dataset_catalog[config.name] = config
        self.datatype_catalog[config.name] = datatype

    # -- reporting ---------------------------------------------------------------------

    def storage_size(self) -> int:
        return self.environment.storage_size()

    def simulated_io_seconds(self) -> float:
        return self.environment.simulated_io_seconds()

    def maintenance_io_seconds(self) -> float:
        """Simulated device seconds spent on background flush/merge traffic.

        Background maintenance workers tag their I/O with the "maintenance"
        class (see :meth:`~repro.storage.SimulatedStorageDevice.io_class_scope`),
        so this isolates the device time the asynchronous LSM lifecycle moved
        off this node's ingest path.  Zero under synchronous maintenance.
        """
        device = self.environment.device
        stats = device.per_class.get("maintenance")
        if stats is None:
            return 0.0
        return device.simulated_seconds(stats)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"NodeController(node_id={self.node_id}, partitions={self.partitions_per_node})"
