"""Data feeds: continuous ingestion into a dataset (paper §4.3).

The paper ingests the Twitter dataset through an AsterixDB *data feed* that
emulates the Twitter firehose, both insert-only and with 50 % updates of
previously ingested records.  :class:`DataFeed` reproduces that driver: it
streams records from a generator into a dataset, optionally replacing a
fraction of operations with upserts of already-ingested keys (updates that
add fields, remove fields, or change value types), and reports wall-clock
time alongside the simulated device time of the write path (data pages,
transaction log, look-aside files).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..core.dataset import Dataset
from ..errors import FeedError


@dataclass
class FeedReport:
    """Outcome of one feed run."""

    records_ingested: int = 0
    inserts: int = 0
    updates: int = 0
    wall_seconds: float = 0.0
    simulated_io_seconds: float = 0.0
    log_bytes_written: int = 0
    data_bytes_written: int = 0
    flushes: int = 0
    merges: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall time plus simulated device time — the headline ingest metric."""
        return self.wall_seconds + self.simulated_io_seconds

    @property
    def records_per_second(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.records_ingested / self.total_seconds


class DataFeed:
    """Streams generated records into a dataset, optionally with updates."""

    def __init__(self, dataset: Dataset, update_ratio: float = 0.0,
                 update_generator: Optional[Callable[[Dict[str, Any], random.Random], Dict[str, Any]]] = None,
                 seed: int = 17) -> None:
        if not 0.0 <= update_ratio <= 1.0:
            raise FeedError(f"update_ratio must lie in [0, 1], got {update_ratio}")
        if update_ratio > 0 and update_generator is None:
            raise FeedError("an update_ratio > 0 requires an update_generator")
        self.dataset = dataset
        self.update_ratio = update_ratio
        self.update_generator = update_generator
        self._rng = random.Random(seed)
        self._ingested_sample: List[Dict[str, Any]] = []
        self._closed = False

    def run(self, records: Iterable[Dict[str, Any]]) -> FeedReport:
        """Ingest all records from the source; returns the feed report.

        When ``update_ratio`` is set, each incoming record triggers, with
        that probability, an additional upsert of a previously ingested
        record whose structure has been modified — the paper's 50 %-update
        workload issues one update per insert on average at ratio 0.5.
        """
        if self._closed:
            raise FeedError("this feed has already been closed")
        report = FeedReport()
        environments = self.dataset.environments
        io_before = [environment.device.snapshot() for environment in environments]
        started = time.perf_counter()

        for record in records:
            self.dataset.insert(record)
            report.inserts += 1
            report.records_ingested += 1
            self._remember(record)
            if self.update_ratio > 0 and self._ingested_sample and self._rng.random() < self.update_ratio:
                victim = self._rng.choice(self._ingested_sample)
                updated = self.update_generator(victim, self._rng)
                self.dataset.upsert(updated)
                report.updates += 1

        report.wall_seconds = time.perf_counter() - started
        for environment, before in zip(environments, io_before):
            delta = environment.device.stats.diff(before)
            report.simulated_io_seconds += environment.device.simulated_seconds(delta)
            report.data_bytes_written += delta.bytes_written
            report.log_bytes_written += environment.device.per_class.get(
                "log", type(delta)()).bytes_written
        stats = self.dataset.ingest_stats()
        report.flushes = stats["flushes"]
        report.merges = stats["merges"]
        return report

    def close(self) -> None:
        """Flush whatever is still in the in-memory components and close."""
        self.dataset.flush_all()
        self._closed = True

    # -- internals --------------------------------------------------------------------

    _SAMPLE_LIMIT = 2048

    def _remember(self, record: Dict[str, Any]) -> None:
        """Keep a bounded reservoir of ingested records to draw updates from."""
        if len(self._ingested_sample) < self._SAMPLE_LIMIT:
            self._ingested_sample.append(record)
        else:
            index = self._rng.randrange(0, self._SAMPLE_LIMIT)
            self._ingested_sample[index] = record
