"""Data feeds: continuous ingestion into a dataset (paper §4.3).

The paper ingests the Twitter dataset through an AsterixDB *data feed* that
emulates the Twitter firehose, both insert-only and with 50 % updates of
previously ingested records.  :class:`DataFeed` reproduces that driver: it
streams records from a generator into a dataset, optionally replacing a
fraction of operations with upserts of already-ingested keys (updates that
add fields, remove fields, or change value types), and reports wall-clock
time alongside the simulated device time of the write path (data pages,
transaction log, look-aside files).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.dataset import Dataset, hash_partition
from ..errors import FeedError
from ..obs import StatsDictMixin, metrics_delta
from ..obs import tracer as _tracer


@dataclass
class FeedReport(StatsDictMixin):
    """Outcome of one feed run."""

    _DERIVED = ("total_seconds", "records_per_second", "write_amplification")

    records_ingested: int = 0
    inserts: int = 0
    updates: int = 0
    wall_seconds: float = 0.0
    simulated_io_seconds: float = 0.0
    log_bytes_written: int = 0
    data_bytes_written: int = 0
    flushes: int = 0
    merges: int = 0
    #: Device bytes written by flushes / merges during the run.
    bytes_flushed: int = 0
    bytes_merged: int = 0
    #: Wall seconds ingest writers spent blocked in backpressure waits
    #: (background maintenance only; 0.0 under synchronous maintenance).
    ingest_stall_seconds: float = 0.0
    #: Ingest worker threads used (1 = the sequential driver).
    ingest_threads: int = 1
    #: Metrics-registry activity during the run (snapshot delta over the
    #: dataset's registry — the same counters every other layer reports).
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall time plus simulated device time — the headline ingest metric."""
        return self.wall_seconds + self.simulated_io_seconds

    @property
    def records_per_second(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.records_ingested / self.total_seconds

    @property
    def write_amplification(self) -> float:
        """Maintenance bytes written per flushed byte (merges re-write data,
        so 1.0 means no merges ran; 2.0 means every byte was written twice)."""
        if self.bytes_flushed == 0:
            return 0.0
        return (self.bytes_flushed + self.bytes_merged) / self.bytes_flushed


class DataFeed:
    """Streams generated records into a dataset, optionally with updates.

    ``per_partition_ingest=True`` runs one ingest worker thread per dataset
    partition (the record stream is hash-routed to bounded per-partition
    queues in arrival order), so ingestion genuinely overlaps across
    partitions — and, when the dataset runs background maintenance, with its
    own flushes and merges.  The one-writer-per-partition rule is preserved:
    each partition's operations are applied by exactly one thread, in the
    same relative order the sequential driver would apply them, so the final
    dataset state is identical across both drivers.
    """

    #: Bound of each per-partition operation queue (driver backpressure).
    _QUEUE_DEPTH = 256

    def __init__(self, dataset: Dataset, update_ratio: float = 0.0,
                 update_generator: Optional[Callable[[Dict[str, Any], random.Random], Dict[str, Any]]] = None,
                 seed: int = 17, per_partition_ingest: bool = False) -> None:
        if not 0.0 <= update_ratio <= 1.0:
            raise FeedError(f"update_ratio must lie in [0, 1], got {update_ratio}")
        if update_ratio > 0 and update_generator is None:
            raise FeedError("an update_ratio > 0 requires an update_generator")
        self.dataset = dataset
        self.update_ratio = update_ratio
        self.update_generator = update_generator
        self.per_partition_ingest = per_partition_ingest
        self._rng = random.Random(seed)
        self._ingested_sample: List[Dict[str, Any]] = []
        self._closed = False

    def run(self, records: Iterable[Dict[str, Any]]) -> FeedReport:
        """Ingest all records from the source; returns the feed report.

        When ``update_ratio`` is set, each incoming record triggers, with
        that probability, an additional upsert of a previously ingested
        record whose structure has been modified — the paper's 50 %-update
        workload issues one update per insert on average at ratio 0.5.
        """
        if self._closed:
            raise FeedError("this feed has already been closed")
        report = FeedReport()
        environments = self.dataset.environments
        io_before = [environment.device.snapshot() for environment in environments]
        # Lifecycle counters are reported as per-run deltas, so back-to-back
        # feeds on one dataset do not re-bill earlier runs' maintenance.
        lifecycle_before = self.dataset.ingest_stats()
        metrics_before = self.dataset.metrics.snapshot()
        started = time.perf_counter()

        # The ingest span stays open until maintenance quiesces, so background
        # flush/merge spans (submitted from inside this context) attach under
        # it in the trace.
        with _tracer.span("feed.run", dataset=self.dataset.config.name) as span:
            if self.per_partition_ingest and self.dataset.partition_count > 1:
                self._run_partitioned(records, report)
            else:
                for record in records:
                    self.dataset.insert(record)
                    report.inserts += 1
                    report.records_ingested += 1
                    self._remember(record)
                    update = self._maybe_update(record)
                    if update is not None:
                        self.dataset.upsert(update)
                        report.updates += 1

            report.wall_seconds = time.perf_counter() - started
            # Quiesce background maintenance before the closing snapshots: the
            # wall clock above measures the ingest path (feeds complete while
            # the LSM keeps flushing, as in AsterixDB), but the I/O and
            # lifecycle counters below must be deterministic, not a race
            # against in-flight flushes/merges.  No-op under synchronous
            # maintenance.
            self.dataset.drain()
            span.set_attribute("records", report.records_ingested)
        report.metrics = metrics_delta(self.dataset.metrics.snapshot(), metrics_before)
        for environment, before in zip(environments, io_before):
            delta = environment.device.stats.diff(before)
            report.simulated_io_seconds += environment.device.simulated_seconds(delta)
            report.data_bytes_written += delta.bytes_written
            report.log_bytes_written += environment.device.per_class.get(
                "log", type(delta)()).bytes_written
        stats = self.dataset.ingest_stats()
        report.flushes = stats["flushes"] - lifecycle_before["flushes"]
        report.merges = stats["merges"] - lifecycle_before["merges"]
        report.bytes_flushed = stats["bytes_flushed"] - lifecycle_before["bytes_flushed"]
        report.bytes_merged = stats["bytes_merged"] - lifecycle_before["bytes_merged"]
        report.ingest_stall_seconds = max(
            0.0, stats["ingest_stall_seconds"] - lifecycle_before["ingest_stall_seconds"])
        return report

    def _maybe_update(self, record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Draw the update op that follows ``record``, if the dice say so.

        All randomness is consumed here, on the driver thread, in arrival
        order — the partitioned driver produces the exact same operation
        sequence as the sequential one.
        """
        if (self.update_ratio > 0 and self._ingested_sample
                and self._rng.random() < self.update_ratio):
            victim = self._rng.choice(self._ingested_sample)
            return self.update_generator(victim, self._rng)
        return None

    def _run_partitioned(self, records: Iterable[Dict[str, Any]], report: FeedReport) -> None:
        """Hash-route the operation stream to one ingest thread per partition."""
        partitions = self.dataset.partitions
        count = len(partitions)
        report.ingest_threads = count
        queues: List["queue.Queue[Optional[Tuple[str, Dict[str, Any]]]]"] = [
            queue.Queue(maxsize=self._QUEUE_DEPTH) for _ in range(count)]
        failures: List[BaseException] = []
        failed = threading.Event()

        def worker(partition, ops: "queue.Queue") -> None:
            broken = False
            while True:
                op = ops.get()
                if op is None:
                    return
                if broken or failed.is_set():
                    continue  # drain without applying: keep the driver unblocked
                kind, record = op
                try:
                    if kind == "insert":
                        partition.insert(record)
                    else:
                        partition.upsert(record)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)
                    failed.set()
                    broken = True

        # Worker threads start with an empty contextvars context; binding the
        # driver's context keeps maintenance submitted by these writers (and
        # hence their flush/merge spans) under the open ingest span.
        threads = [threading.Thread(target=_tracer.wrap_context(worker),
                                    args=(partition, queues[index]),
                                    name=f"repro-ingest-p{partition.partition_id}", daemon=True)
                   for index, partition in enumerate(partitions)]
        for thread in threads:
            thread.start()
        try:
            for record in records:
                if failed.is_set():
                    break
                key = self.dataset._key_of(record)
                queues[hash_partition(key, count)].put(("insert", record))
                report.inserts += 1
                report.records_ingested += 1
                self._remember(record)
                update = self._maybe_update(record)
                if update is not None:
                    update_key = self.dataset._key_of(update)
                    queues[hash_partition(update_key, count)].put(("upsert", update))
                    report.updates += 1
        finally:
            for ops in queues:
                ops.put(None)
            for thread in threads:
                thread.join()
        if failures:
            raise FeedError(f"partitioned ingest failed: {failures[0]!r}") from failures[0]

    def maintenance_bytes_written(self) -> int:
        """Device bytes written under the "maintenance" I/O class — flush and
        merge traffic executed by background workers (0 in synchronous mode,
        where maintenance runs on the writer's thread untagged)."""
        total = 0
        for environment in self.dataset.environments:
            stats = environment.device.per_class.get("maintenance")
            if stats is not None:
                total += stats.bytes_written
        return total

    def close(self) -> None:
        """Flush whatever is still in the in-memory components and close.

        Under background maintenance ``flush_all()`` doubles as the drain
        barrier: every sealed memtable and scheduled merge settles before
        this returns, so post-close statistics are deterministic.
        """
        self.dataset.flush_all()
        self._closed = True

    # -- internals --------------------------------------------------------------------

    _SAMPLE_LIMIT = 2048

    def _remember(self, record: Dict[str, Any]) -> None:
        """Keep a bounded reservoir of ingested records to draw updates from."""
        if len(self._ingested_sample) < self._SAMPLE_LIMIT:
            self._ingested_sample.append(record)
        else:
            index = self._rng.randrange(0, self._SAMPLE_LIMIT)
            self._ingested_sample[index] = record
