"""Cluster simulation: node controllers, data feeds, the cluster simulator."""

from .feed import DataFeed, FeedReport
from .node import NodeController
from .simulator import ClusterQueryReport, ClusterSimulator

__all__ = [
    "NodeController",
    "DataFeed",
    "FeedReport",
    "ClusterSimulator",
    "ClusterQueryReport",
]
