"""Cluster simulator: N node controllers + a cluster controller in one process.

The paper's scale-out experiments (Figures 25–26) run AsterixDB on 4/8/16/32
EC2 nodes, scaling the ingested Twitter data proportionally, and show that
storage, ingestion, and query times scale linearly while the schema
broadcast introduced for repartitioning queries stays negligible.  This
simulator reproduces the topology of paper Figure 3 in one process: each
node controller owns an independent storage environment; datasets span all
nodes with a fixed number of partitions per node; ingestion hash-partitions
records across nodes; and queries execute the same job against every
partition.

Because everything runs single-threaded, the simulator distinguishes the
*sequential* wall time it actually measured from the *per-node parallel*
time a real cluster would see (the maximum across nodes of each node's
share), which is what the scale-out benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..config import ClusterConfig, DatasetConfig, StorageConfig, StorageFormat
from ..core.dataset import Dataset
from ..errors import ClusterError
from ..query import QueryExecutor, QueryResult, QuerySpec
from ..types import Datatype, open_only_primary_key
from .node import NodeController


@dataclass
class ClusterQueryReport:
    """Query execution summary with scale-out-relevant timings."""

    result: QueryResult
    sequential_seconds: float
    parallel_seconds: float
    simulated_io_seconds: float
    schema_broadcast_bytes: int


class ClusterSimulator:
    """A shared-nothing cluster of :class:`NodeController` instances."""

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 storage_config: Optional[StorageConfig] = None) -> None:
        self.config = cluster_config or ClusterConfig()
        self.storage_config = storage_config or StorageConfig()
        self.nodes: List[NodeController] = [
            NodeController(node_id, self.storage_config, self.config.partitions_per_node)
            for node_id in range(self.config.node_count)
        ]
        self.datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------ datasets

    @property
    def metadata_node(self) -> NodeController:
        return self.nodes[0]

    def create_dataset(self, name: str, storage_format: StorageFormat = StorageFormat.OPEN,
                       datatype: Optional[Datatype] = None, primary_key: str = "id",
                       dataset_config: Optional[DatasetConfig] = None) -> Dataset:
        """Create a dataset spread over every node's partitions."""
        if name in self.datasets:
            raise ClusterError(f"dataset {name!r} already exists in this cluster")
        config = dataset_config or DatasetConfig(
            name=name, primary_key=primary_key, storage_format=storage_format,
            tuple_compactor_enabled=storage_format is StorageFormat.INFERRED,
            storage=self.storage_config,
        )
        datatype = datatype or open_only_primary_key(f"{name}Type", primary_key)
        dataset = Dataset(config, [node.environment for node in self.nodes],
                          partitions_per_environment=self.config.partitions_per_node,
                          datatype=datatype)
        self.metadata_node.register_dataset(config, datatype)
        self.datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError as exc:
            raise ClusterError(f"unknown dataset {name!r}") from exc

    # ------------------------------------------------------------------ cluster-wide metrics

    def total_storage_size(self) -> int:
        return sum(node.storage_size() for node in self.nodes)

    def per_node_storage_sizes(self) -> List[int]:
        return [node.storage_size() for node in self.nodes]

    def total_partitions(self) -> int:
        return self.config.total_partitions

    # ------------------------------------------------------------------ queries

    def execute(self, dataset_name: str, spec: QuerySpec,
                executor: Optional[QueryExecutor] = None) -> ClusterQueryReport:
        """Run a query against all partitions and derive cluster timings."""
        dataset = self.dataset(dataset_name)
        executor = executor or QueryExecutor()
        result = executor.execute(dataset, spec)
        stats = result.stats
        per_node_seconds = self._per_node_seconds(stats.per_partition_seconds)
        coordinator = max(stats.wall_seconds - sum(stats.per_partition_seconds), 0.0)
        parallel = (max(per_node_seconds) if per_node_seconds else stats.wall_seconds) + coordinator
        io_parallel = stats.simulated_io_seconds / max(len(self.nodes), 1)
        return ClusterQueryReport(
            result=result,
            sequential_seconds=stats.wall_seconds,
            parallel_seconds=parallel + io_parallel,
            simulated_io_seconds=stats.simulated_io_seconds,
            schema_broadcast_bytes=stats.schema_broadcast_bytes,
        )

    def _per_node_seconds(self, per_partition_seconds: List[float]) -> List[float]:
        """Fold per-partition timings into per-node sums (partitions are
        interleaved node-major by Dataset construction)."""
        per_node = [0.0] * len(self.nodes)
        partitions_per_node = self.config.partitions_per_node
        for index, seconds in enumerate(per_partition_seconds):
            node_index = min(index // partitions_per_node, len(self.nodes) - 1)
            per_node[node_index] += seconds
        return per_node
