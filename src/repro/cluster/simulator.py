"""Cluster simulator: N node controllers + a cluster controller in one process.

The paper's scale-out experiments (Figures 25–26) run AsterixDB on 4/8/16/32
EC2 nodes, scaling the ingested Twitter data proportionally, and show that
storage, ingestion, and query times scale linearly while the schema
broadcast introduced for repartitioning queries stays negligible.  This
simulator reproduces the topology of paper Figure 3 in one process: each
node controller owns an independent storage environment; datasets span all
nodes with a fixed number of partitions per node; ingestion hash-partitions
records across nodes; and queries execute the same job against every
partition.

Queries fan out over a real worker pool (one worker per partition by
default — see :class:`~repro.query.QueryExecutor`), so the *parallel* time
reported for a query is the wall clock actually measured, not a simulated
maximum.  The *sequential-equivalent* time (sum of measured per-partition
pipeline times plus the measured coordinator stage) is reported next to it,
and their ratio is the measured speedup the scale-out benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..config import ClusterConfig, DatasetConfig, StorageConfig, StorageFormat
from ..core.dataset import Dataset
from ..errors import ClusterError
from ..obs import StatsDictMixin
from ..query import QueryExecutor, QueryResult, QuerySpec
from ..types import Datatype, open_only_primary_key
from .node import NodeController


@dataclass
class ClusterQueryReport(StatsDictMixin):
    """Query execution summary with scale-out-relevant timings."""

    #: The embedded result (rows) stays out of the JSON export; its stats
    #: are exported through ``result.stats.to_dict()`` by callers that want
    #: them.
    _EXCLUDE = ("result",)

    result: QueryResult
    #: Sum of measured per-partition pipeline times + measured coordinator
    #: time (what one worker would have spent doing all the partition work),
    #: plus the *unslept* simulated device time done back-to-back.
    sequential_seconds: float
    #: Measured wall time of the fanned-out execution, plus each node's
    #: share of the *unslept* simulated device time (devices are per-node,
    #: so their simulated seconds accrue in parallel across the cluster).
    #: "Unslept" keeps the columns comparable under the latency-realism
    #: throttle: throttled devices already turn simulated seconds into real
    #: sleeps inside the measured times, so re-adding them would double-count.
    parallel_seconds: float
    simulated_io_seconds: float
    schema_broadcast_bytes: int
    #: Measured wall seconds of the parallel run (no simulated I/O share).
    measured_wall_seconds: float = 0.0
    #: sequential_seconds / measured wall — >1 means real overlap happened.
    measured_speedup: float = 1.0
    #: Worker-pool width the execution used.
    parallelism: int = 1


class ClusterSimulator:
    """A shared-nothing cluster of :class:`NodeController` instances."""

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 storage_config: Optional[StorageConfig] = None) -> None:
        self.config = cluster_config or ClusterConfig()
        self.storage_config = storage_config or StorageConfig()
        self.nodes: List[NodeController] = [
            NodeController(node_id, self.storage_config, self.config.partitions_per_node)
            for node_id in range(self.config.node_count)
        ]
        self.datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------ datasets

    @property
    def metadata_node(self) -> NodeController:
        return self.nodes[0]

    def create_dataset(self, name: str, storage_format: StorageFormat = StorageFormat.OPEN,
                       datatype: Optional[Datatype] = None, primary_key: str = "id",
                       dataset_config: Optional[DatasetConfig] = None,
                       background_maintenance: Optional[bool] = None) -> Dataset:
        """Create a dataset spread over every node's partitions.

        ``background_maintenance`` forces the asynchronous LSM lifecycle on
        (or off) for this dataset; ``None`` keeps the config/environment
        default (the ``REPRO_LSM_SCHEDULER`` variable).
        """
        if name in self.datasets:
            raise ClusterError(f"dataset {name!r} already exists in this cluster")
        config = dataset_config or DatasetConfig(
            name=name, primary_key=primary_key, storage_format=storage_format,
            tuple_compactor_enabled=storage_format is StorageFormat.INFERRED,
            storage=self.storage_config,
        )
        if background_maintenance is not None:
            from dataclasses import replace

            config = replace(config, lsm=replace(
                config.lsm, background_maintenance=background_maintenance))
        datatype = datatype or open_only_primary_key(f"{name}Type", primary_key)
        dataset = Dataset(config, [node.environment for node in self.nodes],
                          partitions_per_environment=self.config.partitions_per_node,
                          datatype=datatype)
        self.metadata_node.register_dataset(config, datatype)
        self.datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError as exc:
            raise ClusterError(f"unknown dataset {name!r}") from exc

    # ------------------------------------------------------------------ lifecycle

    def drain(self) -> None:
        """Wait for every dataset's background maintenance to go quiet."""
        for dataset in self.datasets.values():
            dataset.drain()

    def close(self) -> None:
        """Quiesce and close every dataset in the cluster.  Idempotent."""
        for dataset in self.datasets.values():
            dataset.close()

    def __enter__(self) -> "ClusterSimulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ cluster-wide metrics

    def total_storage_size(self) -> int:
        return sum(node.storage_size() for node in self.nodes)

    def per_node_storage_sizes(self) -> List[int]:
        return [node.storage_size() for node in self.nodes]

    def total_partitions(self) -> int:
        return self.config.total_partitions

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot of the registry the cluster's nodes publish into.

        Node environments default to the process-wide registry, so one
        snapshot covers every node; with per-environment registries this
        returns the first node's (callers wanting per-node detail iterate
        ``node.environment.metrics`` themselves).
        """
        return self.nodes[0].environment.metrics.snapshot()

    def set_io_throttle(self, throttle: float) -> None:
        """Dial every node device's latency realism knob (see
        :class:`~repro.storage.SimulatedStorageDevice`).  Benchmarks enable
        it after ingestion so only queries pay the real sleeps."""
        for node in self.nodes:
            node.environment.device.throttle = throttle

    # ------------------------------------------------------------------ queries

    def execute(self, dataset_name: str, spec: QuerySpec,
                executor: Optional[QueryExecutor] = None,
                parallelism: Optional[int] = None) -> ClusterQueryReport:
        """Run a query against all partitions on a real worker pool."""
        dataset = self.dataset(dataset_name)
        if executor is None:
            executor = QueryExecutor(parallelism=parallelism)
        elif parallelism is not None:
            raise ClusterError("pass either a prebuilt executor or parallelism, not both")
        result = executor.execute(dataset, spec)
        stats = result.stats
        throttle = max((node.environment.device.throttle for node in self.nodes), default=0.0)
        unslept_io = stats.simulated_io_seconds * max(0.0, 1.0 - throttle)
        return ClusterQueryReport(
            result=result,
            sequential_seconds=stats.sequential_equivalent_seconds + unslept_io,
            parallel_seconds=stats.wall_seconds + unslept_io / max(len(self.nodes), 1),
            simulated_io_seconds=stats.simulated_io_seconds,
            schema_broadcast_bytes=stats.schema_broadcast_bytes,
            measured_wall_seconds=stats.wall_seconds,
            measured_speedup=stats.measured_speedup,
            parallelism=stats.parallelism,
        )
