"""Value wrappers and Python-value <-> type-tag mapping.

Records enter the system as plain Python objects (the JSON-ish output of
``json.loads`` plus the wrapper types below for ADM extensions such as
dates and points).  This module is the single place that decides which
:class:`~repro.types.typetag.TypeTag` a Python value carries and how it is
packed into bytes, so the ADM format, the vector-based format, and the
schema inference all agree on typing.
"""

from __future__ import annotations

import datetime as _dt
import struct
import uuid as _uuid
from dataclasses import dataclass
from typing import Any, Tuple

from ..errors import TypeError_
from .typetag import TypeTag

_EPOCH_DATE = _dt.date(1970, 1, 1)


@dataclass(frozen=True, order=True)
class ADate:
    """ADM ``date`` value, stored as days since the Unix epoch."""

    days_since_epoch: int

    @classmethod
    def from_iso(cls, text: str) -> "ADate":
        parsed = _dt.date.fromisoformat(text)
        return cls((parsed - _EPOCH_DATE).days)

    def to_date(self) -> _dt.date:
        return _EPOCH_DATE + _dt.timedelta(days=self.days_since_epoch)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"date('{self.to_date().isoformat()}')"


@dataclass(frozen=True, order=True)
class ADateTime:
    """ADM ``datetime`` value, stored as milliseconds since the Unix epoch."""

    millis_since_epoch: int

    @classmethod
    def from_iso(cls, text: str) -> "ADateTime":
        parsed = _dt.datetime.fromisoformat(text)
        return cls(int(parsed.timestamp() * 1000))

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"datetime({self.millis_since_epoch})"


@dataclass(frozen=True, order=True)
class ATime:
    """ADM ``time`` value, stored as milliseconds since midnight."""

    millis_since_midnight: int


@dataclass(frozen=True, order=True)
class APoint:
    """ADM 2-D ``point`` value."""

    x: float
    y: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"point({self.x}, {self.y})"


@dataclass(frozen=True)
class AMultiset:
    """ADM unordered collection (``{{ ... }}``).

    Stored as a tuple to stay hashable; equality is order-insensitive only
    at the data-model level (collection comparison helpers), not here.
    """

    items: Tuple[Any, ...]

    def __init__(self, items) -> None:
        object.__setattr__(self, "items", tuple(items))

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


class Missing:
    """Singleton marker for ADM ``missing`` (absent field accessed)."""

    _instance = None

    def __new__(cls) -> "Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The canonical MISSING singleton used across the query engine.
MISSING = Missing()


def type_tag_of(value: Any) -> TypeTag:
    """Return the :class:`TypeTag` describing a Python value.

    Integers are mapped to ``INT64`` (the paper's examples use a single
    integer width for inferred fields); narrower widths are only produced
    by declared closed datatypes.
    """
    if value is MISSING or isinstance(value, Missing):
        return TypeTag.MISSING
    if value is None:
        return TypeTag.NULL
    if isinstance(value, bool):  # must precede int: bool is a subclass of int
        return TypeTag.BOOLEAN
    if isinstance(value, int):
        return TypeTag.INT64
    if isinstance(value, float):
        return TypeTag.DOUBLE
    if isinstance(value, str):
        return TypeTag.STRING
    if isinstance(value, (bytes, bytearray)):
        return TypeTag.BINARY
    if isinstance(value, ADate):
        return TypeTag.DATE
    if isinstance(value, ATime):
        return TypeTag.TIME
    if isinstance(value, ADateTime):
        return TypeTag.DATETIME
    if isinstance(value, APoint):
        return TypeTag.POINT
    if isinstance(value, _uuid.UUID):
        return TypeTag.UUID
    if isinstance(value, dict):
        return TypeTag.OBJECT
    if isinstance(value, AMultiset):
        return TypeTag.MULTISET
    if isinstance(value, (list, tuple)):
        return TypeTag.ARRAY
    raise TypeError_(f"value of Python type {type(value).__name__!r} has no ADM mapping: {value!r}")


def pack_fixed(tag: TypeTag, value: Any) -> bytes:
    """Pack a fixed-length scalar into its canonical byte representation."""
    if tag is TypeTag.BOOLEAN:
        return b"\x01" if value else b"\x00"
    if tag is TypeTag.INT8:
        return struct.pack("<b", value)
    if tag is TypeTag.INT16:
        return struct.pack("<h", value)
    if tag is TypeTag.INT32:
        return struct.pack("<i", value)
    if tag is TypeTag.INT64:
        return struct.pack("<q", value)
    if tag is TypeTag.FLOAT:
        return struct.pack("<f", value)
    if tag is TypeTag.DOUBLE:
        return struct.pack("<d", value)
    if tag is TypeTag.DATE:
        return struct.pack("<i", value.days_since_epoch)
    if tag is TypeTag.TIME:
        return struct.pack("<i", value.millis_since_midnight)
    if tag is TypeTag.DATETIME:
        return struct.pack("<q", value.millis_since_epoch)
    if tag is TypeTag.POINT:
        return struct.pack("<dd", value.x, value.y)
    if tag is TypeTag.UUID:
        return value.bytes
    raise TypeError_(f"{tag.name} is not a packable fixed-length tag")


def unpack_fixed(tag: TypeTag, payload: bytes, offset: int = 0) -> Any:
    """Inverse of :func:`pack_fixed`; reads from ``payload[offset:]``."""
    if tag is TypeTag.BOOLEAN:
        return payload[offset] != 0
    if tag is TypeTag.INT8:
        return struct.unpack_from("<b", payload, offset)[0]
    if tag is TypeTag.INT16:
        return struct.unpack_from("<h", payload, offset)[0]
    if tag is TypeTag.INT32:
        return struct.unpack_from("<i", payload, offset)[0]
    if tag is TypeTag.INT64:
        return struct.unpack_from("<q", payload, offset)[0]
    if tag is TypeTag.FLOAT:
        return struct.unpack_from("<f", payload, offset)[0]
    if tag is TypeTag.DOUBLE:
        return struct.unpack_from("<d", payload, offset)[0]
    if tag is TypeTag.DATE:
        return ADate(struct.unpack_from("<i", payload, offset)[0])
    if tag is TypeTag.TIME:
        return ATime(struct.unpack_from("<i", payload, offset)[0])
    if tag is TypeTag.DATETIME:
        return ADateTime(struct.unpack_from("<q", payload, offset)[0])
    if tag is TypeTag.POINT:
        x, y = struct.unpack_from("<dd", payload, offset)
        return APoint(x, y)
    if tag is TypeTag.UUID:
        return _uuid.UUID(bytes=bytes(payload[offset:offset + 16]))
    raise TypeError_(f"{tag.name} is not an unpackable fixed-length tag")


def pack_variable(tag: TypeTag, value: Any) -> bytes:
    """Encode a variable-length scalar (string/binary) into bytes."""
    if tag is TypeTag.STRING:
        return value.encode("utf-8")
    if tag is TypeTag.BINARY:
        return bytes(value)
    raise TypeError_(f"{tag.name} is not a variable-length tag")


def unpack_variable(tag: TypeTag, payload: bytes) -> Any:
    """Inverse of :func:`pack_variable`."""
    if tag is TypeTag.STRING:
        return payload.decode("utf-8")
    if tag is TypeTag.BINARY:
        return bytes(payload)
    raise TypeError_(f"{tag.name} is not a variable-length tag")


def deep_equals(left: Any, right: Any) -> bool:
    """Structural equality that treats multisets as unordered collections."""
    if isinstance(left, AMultiset) and isinstance(right, AMultiset):
        if len(left) != len(right):
            return False
        remaining = list(right.items)
        for item in left.items:
            for index, candidate in enumerate(remaining):
                if deep_equals(item, candidate):
                    del remaining[index]
                    break
            else:
                return False
        return True
    if isinstance(left, dict) and isinstance(right, dict):
        if left.keys() != right.keys():
            return False
        return all(deep_equals(left[key], right[key]) for key in left)
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(deep_equals(a, b) for a, b in zip(left, right))
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right or left == right
    return left == right
