"""Declared datatypes (the schema a user writes in ``CREATE TYPE``).

The paper's baseline configurations declare datasets either *open* — only
the primary key is declared, everything else is self-describing — or
*closed* — every field is pre-declared and validated on insert (paper §2.1,
Figure 1).  A :class:`Datatype` models that declaration: a named set of
:class:`FieldDeclaration` entries, each with a type, an optional flag, and
possibly a nested datatype for object- or collection-valued fields.

Declared fields matter in three places:

* the ADM encoder omits field names for declared fields (closed part) and
  stores names inline only for undeclared fields (open part);
* the vector-based format stores a declared field's *index* instead of its
  name (paper §3.3.1, the high bit of the length entry);
* closed datatypes validate incoming records and reject violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SchemaViolationError, TypeError_
from .typetag import TypeTag
from .values import MISSING, Missing, type_tag_of

#: Numeric tags that a declared numeric field accepts interchangeably.
_NUMERIC_TAGS = {
    TypeTag.INT8, TypeTag.INT16, TypeTag.INT32, TypeTag.INT64,
    TypeTag.FLOAT, TypeTag.DOUBLE,
}


@dataclass(frozen=True)
class FieldDeclaration:
    """One declared field of a datatype."""

    name: str
    type_tag: TypeTag
    optional: bool = False
    #: For OBJECT-typed fields: the nested datatype describing the object.
    nested: Optional["Datatype"] = None
    #: For ARRAY/MULTISET-typed fields: the item type tag (ANY if unknown)
    #: and, when items are objects, their nested datatype.
    item_type: Optional[TypeTag] = None
    item_nested: Optional["Datatype"] = None


@dataclass(frozen=True)
class Datatype:
    """A named record type declaration (open or closed)."""

    name: str
    fields: Tuple[FieldDeclaration, ...] = ()
    is_open: bool = True

    @classmethod
    def open_type(cls, name: str, fields: Sequence[FieldDeclaration] = ()) -> "Datatype":
        return cls(name=name, fields=tuple(fields), is_open=True)

    @classmethod
    def closed_type(cls, name: str, fields: Sequence[FieldDeclaration]) -> "Datatype":
        return cls(name=name, fields=tuple(fields), is_open=False)

    def __post_init__(self) -> None:
        names = [declaration.name for declaration in self.fields]
        if len(names) != len(set(names)):
            raise TypeError_(f"datatype {self.name!r} declares duplicate field names")

    # -- lookups -----------------------------------------------------------

    @property
    def declared_names(self) -> List[str]:
        return [declaration.name for declaration in self.fields]

    def declaration_of(self, field_name: str) -> Optional[FieldDeclaration]:
        for declaration in self.fields:
            if declaration.name == field_name:
                return declaration
        return None

    def index_of(self, field_name: str) -> Optional[int]:
        """Index of a declared field, as served by the metadata node."""
        for index, declaration in enumerate(self.fields):
            if declaration.name == field_name:
                return index
        return None

    def is_declared(self, field_name: str) -> bool:
        return self.index_of(field_name) is not None

    # -- validation ----------------------------------------------------------

    def validate(self, record: Dict[str, Any]) -> None:
        """Check a record against this declaration.

        Raises :class:`SchemaViolationError` when a non-optional declared
        field is missing, a declared field has an incompatible type, or —
        for closed datatypes — the record carries undeclared fields.
        AsterixDB enforces exactly these constraints on insert (paper §2.1).
        """
        if not isinstance(record, dict):
            raise SchemaViolationError(f"expected an object for type {self.name!r}")
        declared = {declaration.name for declaration in self.fields}
        if not self.is_open:
            extra = set(record) - declared
            if extra:
                raise SchemaViolationError(
                    f"closed type {self.name!r} does not allow undeclared fields {sorted(extra)!r}"
                )
        for declaration in self.fields:
            present = declaration.name in record and not isinstance(record[declaration.name], Missing)
            if not present:
                if declaration.optional:
                    continue
                raise SchemaViolationError(
                    f"record is missing non-optional declared field {declaration.name!r} "
                    f"of type {self.name!r}"
                )
            self._validate_field(declaration, record[declaration.name])

    def _validate_field(self, declaration: FieldDeclaration, value: Any) -> None:
        if value is None:
            if declaration.optional:
                return
            raise SchemaViolationError(
                f"declared field {declaration.name!r} is not optional but was null"
            )
        actual = type_tag_of(value)
        expected = declaration.type_tag
        if expected is TypeTag.ANY:
            return
        if actual is not expected and not (expected in _NUMERIC_TAGS and actual in _NUMERIC_TAGS):
            raise SchemaViolationError(
                f"declared field {declaration.name!r} expects {expected.name}, got {actual.name}"
            )
        if expected is TypeTag.OBJECT and declaration.nested is not None:
            declaration.nested.validate(value)
        if expected in (TypeTag.ARRAY, TypeTag.MULTISET) and declaration.item_type is not None:
            for item in value:
                item_tag = type_tag_of(item)
                if declaration.item_type is TypeTag.ANY:
                    continue
                if item_tag is not declaration.item_type and not (
                    declaration.item_type in _NUMERIC_TAGS and item_tag in _NUMERIC_TAGS
                ):
                    raise SchemaViolationError(
                        f"items of declared field {declaration.name!r} expect "
                        f"{declaration.item_type.name}, got {item_tag.name}"
                    )
                if item_tag is TypeTag.OBJECT and declaration.item_nested is not None:
                    declaration.item_nested.validate(item)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_records(cls, name: str, records: Sequence[Dict[str, Any]], is_open: bool = True,
                     primary_key: Optional[str] = None) -> "Datatype":
        """Derive a declaration from a sample of records.

        Fields observed with more than one type across the sample are
        declared as optional ``ANY`` — the paper notes that AsterixDB has no
        declared union type, so its *closed* experiment configuration "could
        only pre-declare the fields with homogeneous types" (§4.1); this
        constructor automates exactly that rule.  Fields absent from some
        records are declared optional.
        """
        field_values: Dict[str, List[Any]] = {}
        present_counts: Dict[str, int] = {}
        total = 0
        for record in records:
            total += 1
            for field_name, value in record.items():
                if isinstance(value, Missing):
                    continue
                field_values.setdefault(field_name, []).append(value)
                present_counts[field_name] = present_counts.get(field_name, 0) + 1
        declarations: List[FieldDeclaration] = []
        for field_name, values in field_values.items():
            optional = field_name != primary_key and present_counts[field_name] < total
            declarations.append(_declare_from_values(field_name, values, optional=optional))
        return cls(name=name, fields=tuple(declarations), is_open=is_open)

    @classmethod
    def from_example(cls, name: str, record: Dict[str, Any], is_open: bool = False,
                     primary_key: Optional[str] = None) -> "Datatype":
        """Derive a declaration from an example record.

        The experiments' *closed* configurations pre-declare every field of
        the generated datasets; building the declaration from a generator's
        template record keeps that in sync with the data automatically.
        Fields whose example value is ``None`` are declared optional with
        type ANY.
        """
        declarations: List[FieldDeclaration] = []
        for field_name, value in record.items():
            declarations.append(_declare_from_value(field_name, value, optional=field_name != primary_key))
        return cls(name=name, fields=tuple(declarations), is_open=is_open)


def _declare_from_values(field_name: str, values: List[Any], optional: bool) -> FieldDeclaration:
    """Declare one field from every non-missing value observed for it."""
    non_null = [value for value in values if value is not None and not isinstance(value, Missing)]
    if not non_null:
        return FieldDeclaration(field_name, TypeTag.ANY, optional=True)
    tags = {type_tag_of(value) for value in non_null}
    if len(tags) > 1:
        # Heterogeneous across the sample: leave it undeclared-typed (ANY).
        return FieldDeclaration(field_name, TypeTag.ANY, optional=True)
    optional = optional or len(non_null) < len(values)
    tag = tags.pop()
    if tag is TypeTag.OBJECT:
        nested = Datatype.from_records(f"{field_name}_type", non_null, is_open=True)
        return FieldDeclaration(field_name, tag, optional=optional, nested=nested)
    if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
        items: List[Any] = []
        for value in non_null:
            items.extend(value.items if hasattr(value, "items") and not isinstance(value, dict) else value)
        items = [item for item in items if item is not None and not isinstance(item, Missing)]
        if not items:
            return FieldDeclaration(field_name, tag, optional=optional, item_type=TypeTag.ANY)
        item_tags = {type_tag_of(item) for item in items}
        if len(item_tags) > 1:
            return FieldDeclaration(field_name, tag, optional=optional, item_type=TypeTag.ANY)
        item_tag = item_tags.pop()
        item_nested = None
        if item_tag is TypeTag.OBJECT:
            item_nested = Datatype.from_records(f"{field_name}_item_type", items, is_open=True)
        return FieldDeclaration(field_name, tag, optional=optional,
                                item_type=item_tag, item_nested=item_nested)
    return FieldDeclaration(field_name, tag, optional=optional)


def _declare_from_value(field_name: str, value: Any, optional: bool) -> FieldDeclaration:
    if value is None or isinstance(value, Missing):
        return FieldDeclaration(field_name, TypeTag.ANY, optional=True)
    tag = type_tag_of(value)
    if tag is TypeTag.OBJECT:
        nested = Datatype.from_example(f"{field_name}_type", value, is_open=False)
        return FieldDeclaration(field_name, tag, optional=optional, nested=nested)
    if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
        items = list(value)
        if not items:
            return FieldDeclaration(field_name, tag, optional=optional, item_type=TypeTag.ANY)
        item_tags = {type_tag_of(item) for item in items}
        if len(item_tags) > 1:
            return FieldDeclaration(field_name, tag, optional=optional, item_type=TypeTag.ANY)
        item_tag = item_tags.pop()
        item_nested = None
        if item_tag is TypeTag.OBJECT:
            item_nested = Datatype.from_example(f"{field_name}_item_type", items[0], is_open=False)
        return FieldDeclaration(field_name, tag, optional=optional,
                                item_type=item_tag, item_nested=item_nested)
    return FieldDeclaration(field_name, tag, optional=optional)


#: A permissive datatype declaring nothing: the paper's "open" setting where
#: only the primary key is known (the key itself is validated by the dataset).
def open_only_primary_key(name: str, primary_key: str = "id",
                          key_type: TypeTag = TypeTag.INT64) -> Datatype:
    """Build the ``CREATE TYPE X AS OPEN { id: int }`` declaration of Figure 8."""
    return Datatype.open_type(name, [FieldDeclaration(primary_key, key_type, optional=False)])
