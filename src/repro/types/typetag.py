"""Type tags of the ADM-like data model.

AsterixDB's data model (ADM) extends JSON with temporal and spatial types
and with collection constructors (ordered ``array`` and unordered
``multiset``).  Every value carried through the storage engine and the
query engine is tagged with one of the :class:`TypeTag` members below; the
same tags are what the vector-based format serializes into its values'
type-tag vector (paper §3.3.1).

Two members are *control* tags rather than value types:

* ``EOV`` terminates a record's tag vector, and
* nested tags re-appear as "pop" markers inside the tag vector (an
  ``OBJECT`` tag emitted while inside an array means "the array ended,
  return to the enclosing object") — see :mod:`repro.vector.encoder`.
"""

from __future__ import annotations

import enum
from typing import Optional


class TypeTag(enum.IntEnum):
    """One-byte tags identifying every value type in the data model."""

    # -- special / control ------------------------------------------------
    MISSING = 0
    NULL = 1
    EOV = 2  # end-of-values control tag (vector-based format only)

    # -- scalar, fixed-length ---------------------------------------------
    BOOLEAN = 10
    INT8 = 11
    INT16 = 12
    INT32 = 13
    INT64 = 14
    FLOAT = 15
    DOUBLE = 16
    DATE = 17       # days since epoch, 4 bytes
    TIME = 18       # milliseconds since midnight, 4 bytes
    DATETIME = 19   # milliseconds since epoch, 8 bytes
    DURATION = 20   # months (4 bytes) + milliseconds (8 bytes)
    POINT = 21      # two doubles
    UUID = 22       # 16 bytes

    # -- scalar, variable-length ------------------------------------------
    STRING = 30
    BINARY = 31

    # -- nested -------------------------------------------------------------
    OBJECT = 40
    ARRAY = 41
    MULTISET = 42

    # -- schema-only --------------------------------------------------------
    UNION = 50  # appears in inferred schemas, never in record payloads
    ANY = 51    # wildcard used by declared open datatypes

    @property
    def is_control(self) -> bool:
        return self is TypeTag.EOV

    @property
    def is_nested(self) -> bool:
        return self in _NESTED_TAGS

    @property
    def is_collection(self) -> bool:
        return self in (TypeTag.ARRAY, TypeTag.MULTISET)

    @property
    def is_scalar(self) -> bool:
        return self in _FIXED_LENGTH_SIZES or self in _VARIABLE_LENGTH_TAGS

    @property
    def is_fixed_length(self) -> bool:
        return self in _FIXED_LENGTH_SIZES

    @property
    def is_variable_length(self) -> bool:
        return self in _VARIABLE_LENGTH_TAGS

    @property
    def fixed_length(self) -> Optional[int]:
        """Byte width of a fixed-length scalar, or ``None`` otherwise."""
        return _FIXED_LENGTH_SIZES.get(self)


_NESTED_TAGS = frozenset({TypeTag.OBJECT, TypeTag.ARRAY, TypeTag.MULTISET})

_VARIABLE_LENGTH_TAGS = frozenset({TypeTag.STRING, TypeTag.BINARY})

#: Byte widths of the fixed-length scalar types.
_FIXED_LENGTH_SIZES = {
    TypeTag.BOOLEAN: 1,
    TypeTag.INT8: 1,
    TypeTag.INT16: 2,
    TypeTag.INT32: 4,
    TypeTag.INT64: 8,
    TypeTag.FLOAT: 4,
    TypeTag.DOUBLE: 8,
    TypeTag.DATE: 4,
    TypeTag.TIME: 4,
    TypeTag.DATETIME: 8,
    TypeTag.DURATION: 12,
    TypeTag.POINT: 16,
    TypeTag.UUID: 16,
}

#: Number of distinct value types a UNION schema node may fan out to.  The
#: paper notes AsterixDB has 27 value types; this model has a comparable
#: (slightly smaller) set.
VALUE_TYPE_COUNT = sum(
    1 for tag in TypeTag if tag.is_scalar or tag.is_nested or tag in (TypeTag.NULL, TypeTag.MISSING)
)


def tag_name(tag: TypeTag) -> str:
    """Lower-case display name used in schema dumps and error messages."""
    return tag.name.lower()
