"""ADM-like type system: type tags, value wrappers, declared datatypes."""

from .typetag import TypeTag, VALUE_TYPE_COUNT, tag_name
from .values import (
    ADate,
    ADateTime,
    AMultiset,
    APoint,
    ATime,
    MISSING,
    Missing,
    deep_equals,
    pack_fixed,
    pack_variable,
    type_tag_of,
    unpack_fixed,
    unpack_variable,
)
from .datatype import Datatype, FieldDeclaration, open_only_primary_key

__all__ = [
    "TypeTag",
    "VALUE_TYPE_COUNT",
    "tag_name",
    "ADate",
    "ADateTime",
    "ATime",
    "APoint",
    "AMultiset",
    "MISSING",
    "Missing",
    "deep_equals",
    "type_tag_of",
    "pack_fixed",
    "unpack_fixed",
    "pack_variable",
    "unpack_variable",
    "Datatype",
    "FieldDeclaration",
    "open_only_primary_key",
]
