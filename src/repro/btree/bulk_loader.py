"""Bottom-up B+-tree bulk loading.

Every on-disk structure in the LSM engine — flushed components, merged
components, bulk-loaded datasets, and per-component secondary/primary-key
indexes — is an *immutable* B+-tree built in one pass from already-sorted
entries, exactly the "builds a single on-disk component of the B+-tree in a
bottom-up fashion" path the paper describes for bulk loads (§4.3).

The loader writes leaf pages sequentially (page 0, 1, ...), remembers the
first key of each, then builds interior levels above them until a single
root remains.  The root page number is returned so the component's metadata
page can record it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import StorageError
from ..storage.buffer_cache import BufferCache
from .keycodec import Key, key_size
from .pages import (
    INTERIOR_HEADER_SIZE,
    LEAF_HEADER_SIZE,
    LeafEntry,
    pack_interior,
    pack_leaf,
)


@dataclass
class BTreeInfo:
    """Shape of a freshly built tree (persisted in the component metadata)."""

    root_page: int
    leaf_count: int
    page_count: int
    entry_count: int
    first_leaf: int = 0

    @property
    def is_empty(self) -> bool:
        return self.entry_count == 0


class BulkLoader:
    """Builds one immutable B+-tree inside an already-created page file."""

    def __init__(self, buffer_cache: BufferCache, file_name: str) -> None:
        self.buffer_cache = buffer_cache
        self.file_name = file_name
        self.page_size = buffer_cache.page_size

    def build(self, entries: Iterable[LeafEntry]) -> BTreeInfo:
        """Write all pages of the tree; ``entries`` must be sorted by key.

        Duplicate keys are allowed only in the sense that the *last* entry
        wins upstream (LSM flush already reconciles duplicates inside one
        component), so this loader treats consecutive equal keys as a caller
        bug and rejects them.
        """
        leaf_first_keys, leaf_count, entry_count = self._write_leaves(entries)
        if entry_count == 0:
            # An empty component still gets one empty leaf so readers have a
            # well-formed tree to descend into.
            empty = pack_leaf([], None, self.page_size)
            self.buffer_cache.write_page(self.file_name, 0, empty)
            return BTreeInfo(root_page=0, leaf_count=1, page_count=1, entry_count=0)

        next_page = leaf_count
        level = list(enumerate(leaf_first_keys))  # (page_no, first_key)
        while len(level) > 1:
            level, next_page = self._write_interior_level(level, next_page)
        root_page = level[0][0]
        return BTreeInfo(
            root_page=root_page,
            leaf_count=leaf_count,
            page_count=next_page,
            entry_count=entry_count,
        )

    # -- leaves ----------------------------------------------------------------------

    def _write_leaves(self, entries: Iterable[LeafEntry]) -> Tuple[List[Key], int, int]:
        leaf_first_keys: List[Key] = []
        pending: List[LeafEntry] = []
        pending_bytes = LEAF_HEADER_SIZE
        page_no = 0
        entry_count = 0
        previous_key = None

        def flush_pending(next_leaf: Optional[int]) -> None:
            nonlocal page_no, pending, pending_bytes
            page = pack_leaf(pending, next_leaf, self.page_size)
            self.buffer_cache.write_page(self.file_name, page_no, page)
            leaf_first_keys.append(pending[0].key)
            page_no += 1
            pending = []
            pending_bytes = LEAF_HEADER_SIZE

        for entry in entries:
            if previous_key is not None and not entry.key > previous_key:
                raise StorageError(
                    f"bulk load requires strictly increasing keys ({entry.key!r} after {previous_key!r})"
                )
            previous_key = entry.key
            entry_size = entry.size_on_page
            if LEAF_HEADER_SIZE + entry_size > self.page_size:
                raise StorageError(
                    f"record for key {entry.key!r} ({entry_size} bytes) exceeds the page size"
                )
            if pending and pending_bytes + entry_size > self.page_size:
                flush_pending(next_leaf=page_no + 1)
            pending.append(entry)
            pending_bytes += entry_size
            entry_count += 1
        if pending:
            flush_pending(next_leaf=None)
        return leaf_first_keys, page_no, entry_count

    # -- interior levels ----------------------------------------------------------------

    def _write_interior_level(self, level: List[Tuple[int, Key]],
                              next_page: int) -> Tuple[List[Tuple[int, Key]], int]:
        """Group ``level`` nodes under new interior pages; return the new level."""
        new_level: List[Tuple[int, Key]] = []
        index = 0
        while index < len(level):
            children: List[int] = []
            separators: List[Key] = []
            used = INTERIOR_HEADER_SIZE + 4  # header + first child pointer
            first_key = level[index][1]
            children.append(level[index][0])
            index += 1
            while index < len(level):
                child_page, child_key = level[index]
                extra = 4 + key_size(child_key)
                if used + extra > self.page_size:
                    break
                children.append(child_page)
                separators.append(child_key)
                used += extra
                index += 1
            page = pack_interior(separators, children, self.page_size)
            self.buffer_cache.write_page(self.file_name, next_page, page)
            new_level.append((next_page, first_key))
            next_page += 1
        return new_level, next_page
