"""On-page layouts of B+-tree leaf and interior pages.

Pages are fixed-size byte buffers (padded to the configured page size before
they reach the file manager).  Two kinds exist:

Leaf page::

    u8 kind (=1) | u16 n_entries | u32 next_leaf (+1; 0 = none)
    per entry: key | u8 flags | u32 value_length | value bytes

Interior page::

    u8 kind (=0) | u16 n_keys | u32 child_0 ... child_n
    then n_keys separator keys (child_i holds keys < separator_i;
    child_{i} .. child_{i+1} bracket separator_i in the usual way)

Entry flags currently carry a single bit: ``ANTIMATTER`` — the entry is an
LSM anti-matter (delete) marker whose value bytes hold the serialized
anti-schema (possibly empty for non-compacting datasets).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import StorageError
from .keycodec import Key, decode_key, encode_key

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

LEAF_KIND = 1
INTERIOR_KIND = 0

FLAG_ANTIMATTER = 0x01

#: Fixed bytes of a leaf header (kind + count + next pointer).
LEAF_HEADER_SIZE = 1 + 2 + 4
#: Fixed bytes of an interior header (kind + count).
INTERIOR_HEADER_SIZE = 1 + 2


@dataclass
class LeafEntry:
    """One (key, flags, value) entry of a leaf page."""

    key: Key
    value: bytes
    is_antimatter: bool = False

    @property
    def size_on_page(self) -> int:
        return len(encode_key(self.key)) + 1 + 4 + len(self.value)


def pack_leaf(entries: List[LeafEntry], next_leaf: Optional[int], page_size: int) -> bytes:
    """Serialize a leaf page and pad it to ``page_size``."""
    parts = [bytes([LEAF_KIND]), _U16.pack(len(entries)),
             _U32.pack(0 if next_leaf is None else next_leaf + 1)]
    for entry in entries:
        flags = FLAG_ANTIMATTER if entry.is_antimatter else 0
        parts.append(encode_key(entry.key))
        parts.append(bytes([flags]))
        parts.append(_U32.pack(len(entry.value)))
        parts.append(entry.value)
    payload = b"".join(parts)
    if len(payload) > page_size:
        raise StorageError(
            f"leaf page overflow: {len(payload)} bytes > page size {page_size}"
        )
    return payload + b"\x00" * (page_size - len(payload))


def unpack_leaf(page: bytes) -> Tuple[List[LeafEntry], Optional[int]]:
    """Deserialize a leaf page into its entries and next-leaf pointer."""
    if page[0] != LEAF_KIND:
        raise StorageError("page is not a leaf page")
    (count,) = _U16.unpack_from(page, 1)
    (next_raw,) = _U32.unpack_from(page, 3)
    next_leaf = None if next_raw == 0 else next_raw - 1
    entries: List[LeafEntry] = []
    cursor = LEAF_HEADER_SIZE
    for _ in range(count):
        key, cursor = decode_key(page, cursor)
        flags = page[cursor]
        (value_length,) = _U32.unpack_from(page, cursor + 1)
        start = cursor + 5
        value = bytes(page[start:start + value_length])
        cursor = start + value_length
        entries.append(LeafEntry(key, value, bool(flags & FLAG_ANTIMATTER)))
    return entries, next_leaf


def pack_interior(separators: List[Key], children: List[int], page_size: int) -> bytes:
    """Serialize an interior page (``len(children) == len(separators) + 1``)."""
    if len(children) != len(separators) + 1:
        raise StorageError("interior page needs exactly one more child than separators")
    parts = [bytes([INTERIOR_KIND]), _U16.pack(len(separators))]
    parts.extend(_U32.pack(child) for child in children)
    parts.extend(encode_key(separator) for separator in separators)
    payload = b"".join(parts)
    if len(payload) > page_size:
        raise StorageError(
            f"interior page overflow: {len(payload)} bytes > page size {page_size}"
        )
    return payload + b"\x00" * (page_size - len(payload))


def unpack_interior(page: bytes) -> Tuple[List[Key], List[int]]:
    """Deserialize an interior page into separators and child page numbers."""
    if page[0] != INTERIOR_KIND:
        raise StorageError("page is not an interior page")
    (count,) = _U16.unpack_from(page, 1)
    children: List[int] = []
    cursor = INTERIOR_HEADER_SIZE
    for _ in range(count + 1):
        (child,) = _U32.unpack_from(page, cursor)
        children.append(child)
        cursor += 4
    separators: List[Key] = []
    for _ in range(count):
        separator, cursor = decode_key(page, cursor)
        separators.append(separator)
    return separators, children


def page_kind(page: bytes) -> int:
    return page[0]
