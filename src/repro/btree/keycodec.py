"""Serialization of B+-tree keys.

Primary keys in the paper's datasets are integers; secondary-index keys are
whatever the indexed field holds (the Figure 24 experiment indexes a bigint
timestamp), and composite keys appear when a secondary index appends the
primary key for uniqueness.  The codec therefore supports integers, floats,
strings, and tuples of those.  Keys are compared as Python values after
decoding, so the encoding only needs to round-trip, not to be
order-preserving at the byte level.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple, Union

from ..errors import EncodingError

KeyScalar = Union[int, float, str]
Key = Union[KeyScalar, Tuple[KeyScalar, ...]]

_KIND_INT = 0
_KIND_FLOAT = 1
_KIND_STR = 2
_KIND_TUPLE = 3

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")


def encode_key(key: Key) -> bytes:
    """Encode a key into bytes (type byte + payload)."""
    if isinstance(key, bool):
        raise EncodingError("boolean values cannot be index keys")
    if isinstance(key, int):
        return bytes([_KIND_INT]) + _I64.pack(key)
    if isinstance(key, float):
        return bytes([_KIND_FLOAT]) + _F64.pack(key)
    if isinstance(key, str):
        payload = key.encode("utf-8")
        if len(payload) > 0xFFFF:
            raise EncodingError("string keys longer than 65535 bytes are not supported")
        return bytes([_KIND_STR]) + _U16.pack(len(payload)) + payload
    if isinstance(key, tuple):
        parts = [bytes([_KIND_TUPLE, len(key)])]
        parts.extend(encode_key(part) for part in key)
        return b"".join(parts)
    raise EncodingError(f"unsupported key type {type(key).__name__}")


def decode_key(payload: bytes, offset: int = 0) -> Tuple[Key, int]:
    """Decode one key starting at ``offset``; returns ``(key, next_offset)``."""
    kind = payload[offset]
    if kind == _KIND_INT:
        return _I64.unpack_from(payload, offset + 1)[0], offset + 9
    if kind == _KIND_FLOAT:
        return _F64.unpack_from(payload, offset + 1)[0], offset + 9
    if kind == _KIND_STR:
        (length,) = _U16.unpack_from(payload, offset + 1)
        start = offset + 3
        return payload[start:start + length].decode("utf-8"), start + length
    if kind == _KIND_TUPLE:
        count = payload[offset + 1]
        cursor = offset + 2
        parts = []
        for _ in range(count):
            part, cursor = decode_key(payload, cursor)
            parts.append(part)
        return tuple(parts), cursor
    raise EncodingError(f"unknown key kind {kind}")


def key_size(key: Key) -> int:
    """Encoded size of a key (used when sizing pages during bulk load)."""
    return len(encode_key(key))
