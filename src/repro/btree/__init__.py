"""Immutable page-based B+-tree (bulk load + read path)."""

from .btree import BTree
from .bulk_loader import BTreeInfo, BulkLoader
from .keycodec import Key, decode_key, encode_key, key_size
from .pages import FLAG_ANTIMATTER, LeafEntry

__all__ = [
    "BTree",
    "BTreeInfo",
    "BulkLoader",
    "Key",
    "encode_key",
    "decode_key",
    "key_size",
    "LeafEntry",
    "FLAG_ANTIMATTER",
]
