"""Read path of the immutable, page-based B+-tree.

A :class:`BTree` wraps a page file that was produced by the
:class:`~repro.btree.bulk_loader.BulkLoader`.  It offers exactly the three
access patterns the LSM engine needs:

* point lookup (primary-key existence checks, upsert anti-schema fetches);
* ascending range scans (secondary-index range queries, Figure 24);
* full sequential scans of the leaf level (dataset scans and LSM merges).

All page reads go through the buffer cache, so hot interior pages are
served from memory and every miss is charged to the simulated device.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from ..errors import StorageError
from ..storage.buffer_cache import BufferCache
from .bulk_loader import BTreeInfo
from .keycodec import Key
from .pages import LEAF_KIND, LeafEntry, page_kind, unpack_interior, unpack_leaf


class BTree:
    """Reader over one immutable B+-tree page file."""

    def __init__(self, buffer_cache: BufferCache, file_name: str, info: BTreeInfo) -> None:
        self.buffer_cache = buffer_cache
        self.file_name = file_name
        self.info = info

    # -- point lookup ---------------------------------------------------------------

    def search(self, key: Key) -> Optional[LeafEntry]:
        """Return the entry for ``key`` or ``None`` (anti-matter entries included)."""
        if self.info.is_empty:
            return None
        leaf_entries, _ = self._descend_to_leaf(key)
        index = self._position(leaf_entries, key)
        if index < len(leaf_entries) and leaf_entries[index].key == key:
            return leaf_entries[index]
        return None

    # -- scans -------------------------------------------------------------------------

    def first_entry(self) -> Optional[LeafEntry]:
        """The smallest-keyed entry (one page read), or None for an empty tree."""
        if self.info.is_empty:
            return None
        entries, _ = self._read_leaf(0)
        return entries[0] if entries else None

    def last_entry(self) -> Optional[LeafEntry]:
        """The largest-keyed entry (one page read), or None for an empty tree."""
        if self.info.is_empty:
            return None
        entries, _ = self._read_leaf(self.info.leaf_count - 1)
        return entries[-1] if entries else None

    def scan_all(self) -> Iterator[LeafEntry]:
        """Yield every entry in key order by walking the leaf level."""
        for leaf_no in range(self.info.leaf_count):
            page = self.buffer_cache.read_page(self.file_name, leaf_no)
            if page_kind(page) != LEAF_KIND:
                raise StorageError(f"page {leaf_no} of {self.file_name!r} is not a leaf")
            entries, _ = unpack_leaf(page)
            yield from entries

    def range_scan(self, low: Optional[Key] = None, high: Optional[Key] = None,
                   include_low: bool = True, include_high: bool = True) -> Iterator[LeafEntry]:
        """Yield entries with ``low <= key <= high`` (bounds optional)."""
        if self.info.is_empty:
            return
        if low is None:
            leaf_no = 0
            entries, next_leaf = self._read_leaf(0)
            index = 0
        else:
            entries, leaf_no = self._descend_to_leaf(low)
            next_leaf = self._read_leaf(leaf_no)[1]
            index = self._position(entries, low)
            if not include_low:
                while index < len(entries) and entries[index].key == low:
                    index += 1
        while True:
            while index < len(entries):
                entry = entries[index]
                if high is not None:
                    if entry.key > high or (not include_high and entry.key == high):
                        return
                yield entry
                index += 1
            if next_leaf is None:
                return
            leaf_no = next_leaf
            entries, next_leaf = self._read_leaf(leaf_no)
            index = 0

    # -- helpers ---------------------------------------------------------------------------

    def _read_leaf(self, leaf_no: int):
        page = self.buffer_cache.read_page(self.file_name, leaf_no)
        return unpack_leaf(page)

    def _descend_to_leaf(self, key: Key):
        """Follow interior separators down to the leaf that may hold ``key``."""
        page_no = self.info.root_page
        while True:
            page = self.buffer_cache.read_page(self.file_name, page_no)
            if page_kind(page) == LEAF_KIND:
                entries, _ = unpack_leaf(page)
                return entries, page_no
            separators, children = unpack_interior(page)
            # child i covers keys < separators[i]; the last child covers the rest.
            index = bisect.bisect_right(separators, key)
            page_no = children[index]

    @staticmethod
    def _position(entries, key: Key) -> int:
        keys = [entry.key for entry in entries]
        return bisect.bisect_left(keys, key)
