"""Schema tree structure (paper §3.2.1, Figure 10b).

An inferred schema is a tree whose inner nodes describe nested values
(objects and collections) and whose leaves describe scalar values.  A
*union* node appears wherever an object field or a collection item was
observed with more than one type.  Every node carries a ``counter`` — the
number of records (more precisely, value occurrences) that contributed it —
which is what lets delete/upsert operations shrink the schema again
(paper §3.2.2, Figure 11).

Node children of object nodes are keyed by ``FieldNameID`` (see
:mod:`repro.schema.dictionary`); the mapping back to strings lives in the
schema's dictionary, never in the tree itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SchemaError
from ..types import TypeTag, tag_name


class SchemaNode:
    """Base class for all schema tree nodes."""

    __slots__ = ("counter",)

    #: TypeTag this node describes; overridden per subclass/instance.
    tag: TypeTag = TypeTag.ANY

    def __init__(self, counter: int = 0) -> None:
        self.counter = counter

    # -- counters --------------------------------------------------------------

    def increment(self, by: int = 1) -> None:
        self.counter += by

    def decrement(self, by: int = 1) -> None:
        self.counter -= by
        if self.counter < 0:
            raise SchemaError(
                f"schema counter underflow on {type(self).__name__} ({self.counter})"
            )

    @property
    def is_dead(self) -> bool:
        """A node with counter 0 no longer describes any live record."""
        return self.counter <= 0

    # -- structure ----------------------------------------------------------------

    def children(self) -> Iterator["SchemaNode"]:
        return iter(())

    def node_count(self) -> int:
        """Number of nodes in this subtree (including this node)."""
        return 1 + sum(child.node_count() for child in self.children())

    def clone(self) -> "SchemaNode":
        raise NotImplementedError

    def describe(self, dictionary=None, indent: int = 0) -> str:
        """Human-readable dump used by examples and error messages."""
        raise NotImplementedError


class ScalarNode(SchemaNode):
    """Leaf describing a scalar value of a single type."""

    __slots__ = ("tag",)

    def __init__(self, tag: TypeTag, counter: int = 0) -> None:
        super().__init__(counter)
        if tag.is_nested or tag is TypeTag.UNION:
            raise SchemaError(f"{tag.name} is not a scalar tag")
        self.tag = tag

    def clone(self) -> "ScalarNode":
        return ScalarNode(self.tag, self.counter)

    def describe(self, dictionary=None, indent: int = 0) -> str:
        return f"{tag_name(self.tag)} ({self.counter})"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ScalarNode({self.tag.name}, counter={self.counter})"


class ObjectNode(SchemaNode):
    """Inner node describing an object; children keyed by FieldNameID."""

    __slots__ = ("fields",)

    tag = TypeTag.OBJECT

    def __init__(self, counter: int = 0) -> None:
        super().__init__(counter)
        self.fields: Dict[int, SchemaNode] = {}

    def children(self) -> Iterator[SchemaNode]:
        return iter(self.fields.values())

    def child(self, field_name_id: int) -> Optional[SchemaNode]:
        return self.fields.get(field_name_id)

    def set_child(self, field_name_id: int, node: SchemaNode) -> None:
        self.fields[field_name_id] = node

    def remove_child(self, field_name_id: int) -> None:
        self.fields.pop(field_name_id, None)

    def clone(self) -> "ObjectNode":
        copy = ObjectNode(self.counter)
        copy.fields = {fid: child.clone() for fid, child in self.fields.items()}
        return copy

    def describe(self, dictionary=None, indent: int = 0) -> str:
        pad = "  " * (indent + 1)
        lines = [f"object ({self.counter})"]
        for field_name_id, child in sorted(self.fields.items()):
            label = dictionary.decode(field_name_id) if dictionary is not None else f"#{field_name_id}"
            lines.append(f"{pad}{label}: {child.describe(dictionary, indent + 1)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ObjectNode(fields={sorted(self.fields)}, counter={self.counter})"


class CollectionNode(SchemaNode):
    """Inner node describing an array or multiset; at most one item child."""

    __slots__ = ("tag", "item")

    def __init__(self, tag: TypeTag, counter: int = 0) -> None:
        super().__init__(counter)
        if not tag.is_collection:
            raise SchemaError(f"{tag.name} is not a collection tag")
        self.tag = tag
        self.item: Optional[SchemaNode] = None

    def children(self) -> Iterator[SchemaNode]:
        return iter(() if self.item is None else (self.item,))

    def clone(self) -> "CollectionNode":
        copy = CollectionNode(self.tag, self.counter)
        copy.item = None if self.item is None else self.item.clone()
        return copy

    def describe(self, dictionary=None, indent: int = 0) -> str:
        inner = "<empty>" if self.item is None else self.item.describe(dictionary, indent)
        return f"{tag_name(self.tag)} of {inner} ({self.counter})"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CollectionNode({self.tag.name}, counter={self.counter})"


class UnionNode(SchemaNode):
    """Inner node describing a value observed with multiple types.

    Children are keyed by the child's own :class:`TypeTag`; a union can have
    at most as many children as the data model has value types (the paper
    notes 27 for AsterixDB).
    """

    __slots__ = ("options",)

    tag = TypeTag.UNION

    def __init__(self, counter: int = 0) -> None:
        super().__init__(counter)
        self.options: Dict[TypeTag, SchemaNode] = {}

    def children(self) -> Iterator[SchemaNode]:
        return iter(self.options.values())

    def option(self, tag: TypeTag) -> Optional[SchemaNode]:
        return self.options.get(tag)

    def set_option(self, node: SchemaNode) -> None:
        self.options[node.tag] = node

    def remove_option(self, tag: TypeTag) -> None:
        self.options.pop(tag, None)

    def collapse_if_single(self) -> SchemaNode:
        """Return the lone child when only one option remains, else self.

        Deleting the last record carrying one branch of a union collapses the
        union back to a plain node (the paper's ``union(int,string) -> int``
        example after deleting record id 3).
        """
        if len(self.options) == 1:
            return next(iter(self.options.values()))
        return self

    def clone(self) -> "UnionNode":
        copy = UnionNode(self.counter)
        copy.options = {tag: child.clone() for tag, child in self.options.items()}
        return copy

    def describe(self, dictionary=None, indent: int = 0) -> str:
        inner = ", ".join(
            child.describe(dictionary, indent) for _, child in sorted(self.options.items())
        )
        return f"union({inner}) ({self.counter})"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"UnionNode(options={sorted(t.name for t in self.options)}, counter={self.counter})"


def nodes_equal(left: SchemaNode, right: SchemaNode, *, compare_counters: bool = False) -> bool:
    """Structural equality of two schema subtrees.

    Counters are ignored by default because two partitions that saw different
    record volumes can still have the same *shape*; tests that care about
    counters pass ``compare_counters=True``.
    """
    if type(left) is not type(right):
        return False
    if compare_counters and left.counter != right.counter:
        return False
    if isinstance(left, ScalarNode):
        return left.tag is right.tag
    if isinstance(left, ObjectNode):
        if left.fields.keys() != right.fields.keys():
            return False
        return all(
            nodes_equal(left.fields[fid], right.fields[fid], compare_counters=compare_counters)
            for fid in left.fields
        )
    if isinstance(left, CollectionNode):
        if left.tag is not right.tag:
            return False
        if (left.item is None) != (right.item is None):
            return False
        if left.item is None:
            return True
        return nodes_equal(left.item, right.item, compare_counters=compare_counters)
    if isinstance(left, UnionNode):
        if left.options.keys() != right.options.keys():
            return False
        return all(
            nodes_equal(left.options[tag], right.options[tag], compare_counters=compare_counters)
            for tag in left.options
        )
    raise SchemaError(f"unknown node type {type(left).__name__}")


def leaf_paths(node: SchemaNode, dictionary=None, prefix: Tuple[str, ...] = ()) -> List[Tuple[Tuple[str, ...], TypeTag]]:
    """Enumerate ``(path, scalar tag)`` leaves; used by tests and reports."""
    results: List[Tuple[Tuple[str, ...], TypeTag]] = []
    if isinstance(node, ScalarNode):
        results.append((prefix, node.tag))
    elif isinstance(node, ObjectNode):
        for field_name_id, child in sorted(node.fields.items()):
            label = dictionary.decode(field_name_id) if dictionary is not None else f"#{field_name_id}"
            results.extend(leaf_paths(child, dictionary, prefix + (label,)))
    elif isinstance(node, CollectionNode):
        if node.item is not None:
            results.extend(leaf_paths(node.item, dictionary, prefix + ("[]",)))
    elif isinstance(node, UnionNode):
        for tag, child in sorted(node.options.items()):
            results.extend(leaf_paths(child, dictionary, prefix + (f"|{tag_name(tag)}",)))
    return results
