"""Schema inference and maintenance (the tuple compactor's schema structure)."""

from .dictionary import FieldNameDictionary
from .nodes import (
    CollectionNode,
    ObjectNode,
    ScalarNode,
    SchemaNode,
    UnionNode,
    leaf_paths,
    nodes_equal,
)
from .schema import InferredSchema
from .antischema import antischema_size_estimate, extract_antischema

__all__ = [
    "FieldNameDictionary",
    "SchemaNode",
    "ScalarNode",
    "ObjectNode",
    "CollectionNode",
    "UnionNode",
    "nodes_equal",
    "leaf_paths",
    "InferredSchema",
    "extract_antischema",
    "antischema_size_estimate",
]
