"""Inferred schema: inference, union/merge, delete maintenance, serialization.

An :class:`InferredSchema` couples the schema tree structure of
:mod:`repro.schema.nodes` with the field-name dictionary of
:mod:`repro.schema.dictionary`.  It supports the four operations the tuple
compactor needs (paper §3.1–3.2):

* ``observe(record)`` — add one record's structure during a flush, growing
  the tree and counters ("the newly inferred schema is a super-set of all
  previously inferred schemas").
* ``remove(record)`` — process an *anti-schema*: decrement counters along a
  deleted/updated record's structure and prune nodes whose counter reaches
  zero (Figure 11), collapsing unions that lose all but one branch.
* ``merge_newest`` — during LSM merges only the most recent schema needs to
  be kept (monotonicity), so merging is a choice, not a tree union; the
  classmethod documents and enforces that.
* ``to_bytes`` / ``from_bytes`` — persistence into a component's metadata
  page.

Declared fields (the dataset's pre-declared datatype, at the root level)
are *not* inferred — their description already lives in the metadata node —
matching the paper's treatment of the ``id`` field.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..types import AMultiset, Datatype, MISSING, Missing, TypeTag, type_tag_of
from .dictionary import FieldNameDictionary
from .nodes import (
    CollectionNode,
    ObjectNode,
    ScalarNode,
    SchemaNode,
    UnionNode,
    nodes_equal,
)

_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")


class InferredSchema:
    """Schema inferred for one dataset partition.

    Parameters
    ----------
    datatype:
        The dataset's declared datatype.  Root-level declared fields are
        skipped during inference (their metadata is in the catalog).
    """

    def __init__(self, datatype: Optional[Datatype] = None) -> None:
        self.datatype = datatype
        self.dictionary = FieldNameDictionary()
        self.root = ObjectNode()
        #: Monotonically increasing version; bumped on every mutation so
        #: on-disk components can record which schema snapshot covered them.
        self.version = 0

    # ------------------------------------------------------------------ infer

    def observe(self, record: Dict[str, Any]) -> None:
        """Infer/extend the schema from one record (insert path)."""
        if not isinstance(record, dict):
            raise SchemaError("only object records can be observed")
        self.root.increment()
        self._observe_object_fields(self.root, record, is_root=True)
        self.version += 1

    def observe_all(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.observe(record)

    def _declared_root_names(self) -> set:
        if self.datatype is None:
            return set()
        return set(self.datatype.declared_names)

    def _observe_object_fields(self, node: ObjectNode, record: Dict[str, Any], is_root: bool) -> None:
        skip = self._declared_root_names() if is_root else set()
        for name, value in record.items():
            if name in skip or isinstance(value, Missing):
                continue
            field_name_id = self.dictionary.encode(name)
            child = node.child(field_name_id)
            node.set_child(field_name_id, self._observe_value(child, value))

    def _observe_value(self, existing: Optional[SchemaNode], value: Any) -> SchemaNode:
        """Merge one observed value into an existing child node (or create it)."""
        tag = self._tag_of(value)
        if existing is None:
            node = self._new_node(tag)
            self._descend(node, value)
            node.increment()
            return node
        if isinstance(existing, UnionNode):
            option = existing.option(tag)
            if option is None:
                option = self._new_node(tag)
                existing.set_option(option)
            self._descend(option, value)
            option.increment()
            existing.increment()
            return existing
        if existing.tag is tag:
            self._descend(existing, value)
            existing.increment()
            return existing
        # Type conflict: promote the existing node to a union of both types
        # (the paper's age: int -> union(int, string) transition, Figure 9b).
        union = UnionNode(existing.counter)
        union.set_option(existing)
        fresh = self._new_node(tag)
        self._descend(fresh, value)
        fresh.increment()
        union.set_option(fresh)
        union.increment()
        return union

    def _descend(self, node: SchemaNode, value: Any) -> None:
        """Recurse into nested values under an already-typed node."""
        if isinstance(node, ObjectNode):
            self._observe_object_fields(node, value, is_root=False)
        elif isinstance(node, CollectionNode):
            for item in self._iter_items(value):
                node.item = self._observe_value(node.item, item)

    @staticmethod
    def _iter_items(value: Any) -> Sequence[Any]:
        if isinstance(value, AMultiset):
            return list(value.items)
        return list(value)

    @staticmethod
    def _tag_of(value: Any) -> TypeTag:
        return type_tag_of(value)

    @staticmethod
    def _new_node(tag: TypeTag) -> SchemaNode:
        if tag is TypeTag.OBJECT:
            return ObjectNode()
        if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
            return CollectionNode(tag)
        return ScalarNode(tag)

    # ------------------------------------------------------------------ delete

    def remove(self, record: Dict[str, Any]) -> None:
        """Process the *anti-schema* of a deleted (or overwritten) record.

        Decrements the counters along the record's structure and prunes any
        node whose counter reaches zero; a union that loses all but one of
        its branches collapses back to the surviving branch (paper §3.2.2).
        """
        if not isinstance(record, dict):
            raise SchemaError("only object records can be removed")
        self.root.decrement()
        self._remove_object_fields(self.root, record, is_root=True)
        self.version += 1

    def _remove_object_fields(self, node: ObjectNode, record: Dict[str, Any], is_root: bool) -> None:
        skip = self._declared_root_names() if is_root else set()
        for name, value in record.items():
            if name in skip or isinstance(value, Missing):
                continue
            field_name_id = self.dictionary.lookup(name)
            if field_name_id is None:
                raise SchemaError(f"anti-schema references unknown field {name!r}")
            child = node.child(field_name_id)
            if child is None:
                raise SchemaError(f"anti-schema references untracked field {name!r}")
            replacement = self._remove_value(child, value)
            if replacement is None:
                node.remove_child(field_name_id)
            else:
                node.set_child(field_name_id, replacement)

    def _remove_value(self, node: SchemaNode, value: Any) -> Optional[SchemaNode]:
        tag = self._tag_of(value)
        if isinstance(node, UnionNode):
            option = node.option(tag)
            if option is None:
                raise SchemaError(f"anti-schema type {tag.name} absent from union")
            replacement = self._remove_value(option, value)
            if replacement is None:
                node.remove_option(tag)
            else:
                node.set_option(replacement)
            node.decrement()
            if node.is_dead or not node.options:
                return None
            return node.collapse_if_single()
        if node.tag is not tag:
            raise SchemaError(
                f"anti-schema type {tag.name} does not match schema node {node.tag.name}"
            )
        if isinstance(node, ObjectNode):
            self._remove_object_fields(node, value, is_root=False)
        elif isinstance(node, CollectionNode):
            for item in self._iter_items(value):
                if node.item is None:
                    raise SchemaError("anti-schema removes items from an empty collection node")
                node.item = self._remove_value(node.item, item)
        node.decrement()
        return None if node.is_dead else node

    # ------------------------------------------------------------------ merge

    @classmethod
    def merge_newest(cls, schemas: Sequence["InferredSchema"]) -> "InferredSchema":
        """Pick the schema covering a merged component (paper §3.1, Fig. 9c).

        Within a partition schemas only grow, so the most recent schema of
        the merged components is a superset of the rest and is the only one
        the merged component needs to persist.  The newest schema is the one
        with the largest version (ties broken by node count).
        """
        if not schemas:
            raise SchemaError("cannot merge an empty list of schemas")
        return max(schemas, key=lambda schema: (schema.version, schema.root.node_count()))

    def is_superset_of(self, other: "InferredSchema") -> bool:
        """Structural superset check used to validate monotonic growth."""
        return _covers(self.root, other.root)

    # ------------------------------------------------------------------ copy/eq

    def snapshot(self) -> "InferredSchema":
        """Deep copy persisted alongside a flushed component."""
        copy = InferredSchema(self.datatype)
        copy.dictionary = self.dictionary.copy()
        copy.root = self.root.clone()
        copy.version = self.version
        return copy

    def structurally_equal(self, other: "InferredSchema", *, compare_counters: bool = False) -> bool:
        return nodes_equal(self.root, other.root, compare_counters=compare_counters)

    @property
    def field_count(self) -> int:
        return len(self.root.fields)

    def describe(self) -> str:
        """Readable dump (used by the examples)."""
        return self.root.describe(self.dictionary)

    # ------------------------------------------------------------------ encode field names

    def field_name_id(self, name: str) -> Optional[int]:
        return self.dictionary.lookup(name)

    def field_name(self, field_name_id: int) -> str:
        return self.dictionary.decode(field_name_id)

    # ------------------------------------------------------------------ serialization

    _NODE_SCALAR = 0
    _NODE_OBJECT = 1
    _NODE_COLLECTION = 2
    _NODE_UNION = 3

    def to_bytes(self) -> bytes:
        """Serialize dictionary + tree for a component's metadata page."""
        parts = [_U32.pack(self.version), self.dictionary.to_bytes()]
        self._write_node(self.root, parts)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes, datatype: Optional[Datatype] = None) -> "InferredSchema":
        schema = cls(datatype)
        (schema.version,) = _U32.unpack_from(payload, 0)
        dictionary, consumed = FieldNameDictionary.from_bytes(payload[4:])
        schema.dictionary = dictionary
        node, _ = cls._read_node(payload, 4 + consumed)
        if not isinstance(node, ObjectNode):
            raise SchemaError("persisted schema root is not an object node")
        schema.root = node
        return schema

    def _write_node(self, node: SchemaNode, parts: List[bytes]) -> None:
        if isinstance(node, ScalarNode):
            parts.append(_U8.pack(self._NODE_SCALAR))
            parts.append(_U8.pack(int(node.tag)))
            parts.append(_U32.pack(node.counter))
        elif isinstance(node, ObjectNode):
            parts.append(_U8.pack(self._NODE_OBJECT))
            parts.append(_U32.pack(node.counter))
            parts.append(_U32.pack(len(node.fields)))
            for field_name_id in sorted(node.fields):
                parts.append(_U32.pack(field_name_id))
                self._write_node(node.fields[field_name_id], parts)
        elif isinstance(node, CollectionNode):
            parts.append(_U8.pack(self._NODE_COLLECTION))
            parts.append(_U8.pack(int(node.tag)))
            parts.append(_U32.pack(node.counter))
            parts.append(_U8.pack(0 if node.item is None else 1))
            if node.item is not None:
                self._write_node(node.item, parts)
        elif isinstance(node, UnionNode):
            parts.append(_U8.pack(self._NODE_UNION))
            parts.append(_U32.pack(node.counter))
            parts.append(_U32.pack(len(node.options)))
            for tag in sorted(node.options):
                self._write_node(node.options[tag], parts)
        else:  # pragma: no cover - defensive
            raise SchemaError(f"cannot serialize node type {type(node).__name__}")

    @classmethod
    def _read_node(cls, payload: bytes, offset: int) -> Tuple[SchemaNode, int]:
        kind = payload[offset]
        offset += 1
        if kind == cls._NODE_SCALAR:
            tag = TypeTag(payload[offset])
            (counter,) = _U32.unpack_from(payload, offset + 1)
            return ScalarNode(tag, counter), offset + 5
        if kind == cls._NODE_OBJECT:
            (counter,) = _U32.unpack_from(payload, offset)
            (count,) = _U32.unpack_from(payload, offset + 4)
            offset += 8
            node = ObjectNode(counter)
            for _ in range(count):
                (field_name_id,) = _U32.unpack_from(payload, offset)
                child, offset = cls._read_node(payload, offset + 4)
                node.set_child(field_name_id, child)
            return node, offset
        if kind == cls._NODE_COLLECTION:
            tag = TypeTag(payload[offset])
            (counter,) = _U32.unpack_from(payload, offset + 1)
            has_item = payload[offset + 5]
            offset += 6
            node = CollectionNode(tag, counter)
            if has_item:
                node.item, offset = cls._read_node(payload, offset)
            return node, offset
        if kind == cls._NODE_UNION:
            (counter,) = _U32.unpack_from(payload, offset)
            (count,) = _U32.unpack_from(payload, offset + 4)
            offset += 8
            node = UnionNode(counter)
            for _ in range(count):
                child, offset = cls._read_node(payload, offset)
                node.set_option(child)
            return node, offset
        raise SchemaError(f"unknown serialized node kind {kind}")


def _covers(wide: SchemaNode, narrow: SchemaNode) -> bool:
    """True when ``wide`` describes every structure ``narrow`` describes."""
    if isinstance(wide, UnionNode) and not isinstance(narrow, UnionNode):
        option = wide.option(narrow.tag)
        return option is not None and _covers(option, narrow)
    if type(wide) is not type(narrow):
        return False
    if isinstance(wide, ScalarNode):
        return wide.tag is narrow.tag
    if isinstance(wide, ObjectNode):
        return all(
            fid in wide.fields and _covers(wide.fields[fid], child)
            for fid, child in narrow.fields.items()
        )
    if isinstance(wide, CollectionNode):
        if wide.tag is not narrow.tag:
            return False
        if narrow.item is None:
            return True
        return wide.item is not None and _covers(wide.item, narrow.item)
    if isinstance(wide, UnionNode):
        return all(
            tag in wide.options and _covers(wide.options[tag], child)
            for tag, child in narrow.options.items()
        )
    return False
