"""Anti-schema extraction for delete and upsert maintenance (paper §3.2.2).

When a record is deleted (or overwritten by an upsert), AsterixDB performs a
point lookup to fetch the old record and extracts its *anti-schema*: the
structural skeleton of that record, without values.  The anti-schema rides
on the anti-matter entry into the in-memory component and is replayed
against the inferred schema during the next flush, decrementing counters so
the schema can shrink again.

In this reproduction the anti-schema is represented as a plain structural
record — the original record with every scalar value replaced by a cheap
placeholder of the *same type* — because schema maintenance only needs the
shape and the types, never the values.  Keeping it a regular dict lets
:class:`~repro.schema.schema.InferredSchema.remove` share the traversal code
with inference.
"""

from __future__ import annotations

from typing import Any, Dict

from ..types import (
    ADate,
    ADateTime,
    AMultiset,
    APoint,
    ATime,
    MISSING,
    Missing,
    TypeTag,
    type_tag_of,
)

#: Placeholder scalar per type tag; values are irrelevant, the type matters.
_PLACEHOLDERS = {
    TypeTag.BOOLEAN: False,
    TypeTag.INT64: 0,
    TypeTag.DOUBLE: 0.0,
    TypeTag.STRING: "",
    TypeTag.BINARY: b"",
    TypeTag.DATE: ADate(0),
    TypeTag.TIME: ATime(0),
    TypeTag.DATETIME: ADateTime(0),
    TypeTag.POINT: APoint(0.0, 0.0),
}


def extract_antischema(record: Dict[str, Any]) -> Dict[str, Any]:
    """Build the anti-schema of ``record``.

    The result has the same field names, nesting, and value *types* as the
    input but all scalar payloads are replaced with zero-sized placeholders,
    so anti-matter entries stay small even for large records.
    """
    return {name: _strip(value) for name, value in record.items() if not isinstance(value, Missing)}


def _strip(value: Any) -> Any:
    if value is None or isinstance(value, Missing):
        return value
    if isinstance(value, dict):
        return {name: _strip(child) for name, child in value.items() if not isinstance(child, Missing)}
    if isinstance(value, AMultiset):
        return AMultiset(_strip(item) for item in value.items)
    if isinstance(value, (list, tuple)):
        return [_strip(item) for item in value]
    tag = type_tag_of(value)
    if tag in _PLACEHOLDERS:
        return _PLACEHOLDERS[tag]
    # Unmapped scalars (UUID etc.) keep their value: still correct, just larger.
    return value


def antischema_size_estimate(antischema: Dict[str, Any]) -> int:
    """Rough byte estimate of an anti-schema (for memory accounting)."""
    total = 0
    stack = [antischema]
    while stack:
        value = stack.pop()
        if isinstance(value, dict):
            for name, child in value.items():
                total += len(name) + 2
                stack.append(child)
        elif isinstance(value, AMultiset):
            stack.extend(value.items)
            total += 2
        elif isinstance(value, (list, tuple)):
            stack.extend(value)
            total += 2
        else:
            total += 2
    return total
