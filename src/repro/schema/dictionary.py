"""Dictionary-encoding of inferred field names (paper §3.2.1, Figure 10c).

Children of *different* object nodes may share a field name (``name`` in
the paper's example appears both at the root and inside ``dependents``
items), so the schema structure canonicalizes names into integer
``FieldNameID``\\ s through this dictionary.  IDs start at 1; ID 0 is
reserved so that compacted records can use 0-valued entries for control
purposes and so an "unknown" sentinel never collides with a real name.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SchemaError

_U32 = struct.Struct("<I")


class FieldNameDictionary:
    """Bidirectional field-name <-> FieldNameID mapping."""

    def __init__(self) -> None:
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: List[str] = []  # index i holds the name with id i+1

    # -- core mapping ---------------------------------------------------------

    def encode(self, name: str) -> int:
        """Return the id for ``name``, assigning a fresh one if unseen."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        new_id = len(self._id_to_name) + 1
        self._name_to_id[name] = new_id
        self._id_to_name.append(name)
        return new_id

    def lookup(self, name: str) -> Optional[int]:
        """Return the id for ``name`` or ``None`` without assigning one."""
        return self._name_to_id.get(name)

    def decode(self, field_name_id: int) -> str:
        """Return the name for an id; raises SchemaError for unknown ids."""
        index = field_name_id - 1
        if index < 0 or index >= len(self._id_to_name):
            raise SchemaError(f"unknown FieldNameID {field_name_id}")
        return self._id_to_name[index]

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def items(self) -> Iterator[Tuple[int, str]]:
        """Iterate ``(id, name)`` pairs in id order."""
        for index, name in enumerate(self._id_to_name):
            yield index + 1, name

    # -- copying / merging ----------------------------------------------------

    def copy(self) -> "FieldNameDictionary":
        clone = FieldNameDictionary()
        clone._name_to_id = dict(self._name_to_id)
        clone._id_to_name = list(self._id_to_name)
        return clone

    def is_prefix_of(self, other: "FieldNameDictionary") -> bool:
        """True when ``other`` extends this dictionary without remapping ids.

        Inferred schemas grow monotonically within one partition, so the
        dictionary persisted with an older component is always a prefix of
        the newer one; this check guards that invariant in tests and during
        merges.
        """
        if len(self) > len(other):
            return False
        return all(self._id_to_name[i] == other._id_to_name[i] for i in range(len(self._id_to_name)))

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize as ``count | (len | utf8)*`` for the metadata page."""
        parts = [_U32.pack(len(self._id_to_name))]
        for name in self._id_to_name:
            encoded = name.encode("utf-8")
            parts.append(_U32.pack(len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> Tuple["FieldNameDictionary", int]:
        """Inverse of :meth:`to_bytes`; returns the dictionary and bytes read."""
        dictionary = cls()
        if len(payload) < 4:
            raise SchemaError("field-name dictionary payload too short")
        (count,) = _U32.unpack_from(payload, 0)
        cursor = 4
        for _ in range(count):
            (length,) = _U32.unpack_from(payload, cursor)
            cursor += 4
            name = payload[cursor:cursor + length].decode("utf-8")
            cursor += length
            dictionary.encode(name)
        return dictionary, cursor
