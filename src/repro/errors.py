"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while the
more specific subclasses keep failure modes distinguishable in tests and in
production logging.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TypeError_(ReproError):
    """A value does not match the type expected by the data model.

    Named with a trailing underscore to avoid shadowing the built-in
    ``TypeError`` while still reading naturally at call sites
    (``raise TypeError_(...)``).
    """


class EncodingError(ReproError):
    """A record could not be encoded into a physical format."""


class DecodingError(ReproError):
    """A byte payload could not be decoded back into a record."""


class SchemaError(ReproError):
    """Schema inference or maintenance hit an inconsistent state."""


class SchemaViolationError(SchemaError):
    """A record violates a *declared* (closed) datatype.

    Raised, for instance, when a closed datatype declares ``age: int`` and an
    incoming record carries ``age`` as a string, or omits a non-optional
    declared field.
    """


class StorageError(ReproError):
    """Low-level storage failure (pages, files, buffer cache)."""


class PageNotFoundError(StorageError):
    """A page id was requested that does not exist in the file."""


class TransientIOError(StorageError):
    """An I/O operation failed in a way that is expected to succeed on retry.

    The class real devices surface as EAGAIN/EINTR-style hiccups and cloud
    block stores surface as throttling.  The maintenance scheduler retries
    these with exponential backoff inside the failing task (see
    ``LSMIOScheduler``); everything else treats them like any
    :class:`StorageError`.
    """


class PermanentIOError(StorageError):
    """An I/O operation failed in a way retrying cannot fix (ENOSPC, EIO)."""


class CorruptPageError(StorageError):
    """A page or log record failed its CRC32 integrity check.

    Raised by the file manager when a component page's stored checksum does
    not match the bytes read back, and by the WAL for records whose payload
    checksum mismatches outside recovery (during recovery the torn tail is
    truncated instead).  LSM read paths catch it to quarantine the corrupt
    component.
    """


class QuarantinedComponentError(StorageError):
    """A query needed data from a component that is quarantined as corrupt.

    With no replica to route to, failing with a typed error is the only
    correct answer — silently skipping the component would return wrong
    rows.  Carries the component's file name in ``component_name``.
    """

    def __init__(self, message: str, component_name: "str | None" = None) -> None:
        super().__init__(message)
        self.component_name = component_name


class FaultSpecError(StorageError):
    """A ``REPRO_FAULTS`` fault-injection spec string could not be parsed."""


class BufferCacheFullError(StorageError):
    """The buffer cache cannot evict a page to make room (all pinned)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or was used incorrectly."""


class ComponentStateError(ReproError):
    """An LSM component was used in a state that does not permit the call.

    Examples: reading from an INVALID component, flushing an already-flushed
    in-memory component, or merging components that are not adjacent.
    """


class MaintenanceDecodeError(ComponentStateError):
    """A delete/upsert needed to decode a stored payload but the index's
    flush callback provides no ``decode_record()`` method.

    Raised by :meth:`~repro.lsm.LSMBTree._decode_for_maintenance` when an
    anti-schema fetch (paper §3.2.2) hits an index that stores opaque
    payloads it cannot interpret.
    """


class SchedulerError(ReproError):
    """The background LSM maintenance scheduler failed or was misused.

    Wraps the first exception raised by a background flush/merge worker so
    the writer thread (or a ``drain()``/``close()`` call) surfaces it instead
    of hanging; also raised when work is submitted to a closed scheduler.
    """


class DatasetError(ReproError):
    """Dataset-level misuse (unknown dataset, duplicate creation, ...)."""


class DuplicateKeyError(DatasetError):
    """An insert supplied a primary key that already exists."""


class KeyNotFoundError(DatasetError):
    """A delete/update referenced a primary key that does not exist."""


class QueryError(ReproError):
    """A query plan could not be built or executed."""


class QueryDeadlineError(QueryError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Raised by the executor when ``deadline`` (or ``REPRO_QUERY_DEADLINE``)
    elapses before the query completes; partition workers observe the shared
    cancellation flag at row/batch boundaries, so the abort is prompt but
    never tears a partially-consumed iterator.
    """


class SqlppError(QueryError):
    """A SQL++ query string could not be lexed, parsed, or bound.

    Carries the 1-based ``line`` and ``column`` of the offending position and,
    when available, the ``token`` text found there, so callers (and tests) can
    point at the exact spot in the query string.
    """

    def __init__(self, message: str, line: int, column: int,
                 token: "str | None" = None) -> None:
        location = f"line {line}, column {column}"
        if token:
            detail = f"{location}: {message} (at {token!r})"
        else:
            detail = f"{location}: {message}"
        super().__init__(detail)
        self.message = message
        self.line = line
        self.column = column
        self.token = token


class OptimizerError(QueryError):
    """An optimizer rewrite produced or encountered an invalid plan."""


class FeedError(ReproError):
    """A data feed was misconfigured or used after being closed."""


class ClusterError(ReproError):
    """Cluster-level misconfiguration (bad partition counts, node ids...)."""
