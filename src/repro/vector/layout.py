"""Byte layout constants shared by the vector-based encoder and decoder.

The vector-based format (paper §3.3.1, Figures 12–13) separates a record's
*metadata* (value type tags and field names) from its *values* so that the
tuple compactor can infer schemas and compact records by touching only the
metadata vectors.  A record consists of a fixed header followed by four
vectors, laid out contiguously::

    +--------+----------------+---------------------+---------------------+----------------+
    | header | values' tags   | fixed-length values | variable-length vals| field names    |
    +--------+----------------+---------------------+---------------------+----------------+

Header (28 bytes)::

    u32 total_length      -- bytes of the whole record
    u32 tag_count         -- entries in the tags vector (incl. control tags)
    u8  flags             -- bit 0: record is compacted (names -> ids)
    u8  reserved x3
    u32 offset_tags
    u32 offset_fixed
    u32 offset_varlen
    u32 offset_names      -- 0 when the names *values* were stripped, i.e.
                             the record is compacted and the section holds
                             only FieldNameID entries (paper Figure 14)

Tags vector — one byte per entry.  A plain byte is a
:class:`~repro.types.TypeTag`.  Control entries are:

* ``EOV`` — end of the record's values;
* ``0x80 | parent_tag`` — "pop" marker emitted when a *nested* value ends,
  encoding the parent nesting type exactly as the paper describes ("a
  control tag *object* to indicate the end of the array ... and a return to
  the parent nesting type"); the high bit removes the ambiguity between a
  pop marker and a genuine child of that type.

Variable-length values vector:: ``u32 count | u32 length * count | bytes``.

Field names vector:: ``u32 count | u16 entry * count | name bytes``.  Each
entry corresponds, in tag order, to one value that is a direct child of an
object.  If bit 15 of the entry is set the low 15 bits are the *index of a
declared field* (the paper's trick of storing the metadata-node-provided
index instead of the name); otherwise the low 15 bits are either the length
of the inline name (uncompacted records — the name bytes follow in order)
or the ``FieldNameID`` assigned by the inferred schema (compacted records,
which store no name bytes at all).
"""

from __future__ import annotations

import struct

HEADER = struct.Struct("<IIBBBBIIII")
HEADER_SIZE = HEADER.size  # 28 bytes

U16 = struct.Struct("<H")
U32 = struct.Struct("<I")

FLAG_COMPACTED = 0x01

#: High bit of a tags-vector byte marking a "pop back to parent" control entry.
POP_MARKER_BIT = 0x80

#: High bit of a field-name entry marking "this is a declared field index".
DECLARED_FIELD_BIT = 0x8000

#: Maximum value storable in the low 15 bits of a field-name entry.
NAME_ENTRY_MAX = 0x7FFF
