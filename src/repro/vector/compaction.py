"""Record compaction and expansion against an inferred schema.

Compaction (paper §3.3.2, Figure 14) replaces the inline field-name strings
of an uncompacted vector-based record with the ``FieldNameID``\\ s assigned
by the inferred schema, and drops the name bytes entirely.  Only the field
names vector and the header change; the tags vector and both value vectors
are copied through untouched, which is why compaction is cheap enough to
run inside LSM flush operations.

Where the paper signals compaction by zeroing the fourth header offset,
this implementation keeps the offset (the section still holds the ID
entries) and records compaction in the header's flags byte; the effect —
"no field-name bytes are stored in the record" — is identical.

Expansion is the inverse operation.  The engine itself never needs it
(queries read compacted records directly through
:class:`~repro.vector.decoder.VectorRecordView`), but it is exposed for
tests, tooling, and data export.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import EncodingError, SchemaError
from ..schema.dictionary import FieldNameDictionary
from .layout import (
    DECLARED_FIELD_BIT,
    FLAG_COMPACTED,
    HEADER,
    NAME_ENTRY_MAX,
    U16,
    U32,
)


def _parse_names_section(payload: bytes, offset_names: int) -> Tuple[int, List[int], int]:
    """Return ``(count, entries, bytes_cursor)`` of the names section."""
    (count,) = U32.unpack_from(payload, offset_names)
    entries = []
    cursor = offset_names + 4
    for _ in range(count):
        (entry,) = U16.unpack_from(payload, cursor)
        entries.append(entry)
        cursor += 2
    return count, entries, cursor


def compact_record(payload: bytes, dictionary: FieldNameDictionary) -> bytes:
    """Compact an uncompacted vector-based record.

    Every inline field name must already be present in ``dictionary`` (the
    tuple compactor calls schema inference on the record first), otherwise a
    :class:`SchemaError` is raised — compaction never mutates the schema.
    """
    header = HEADER.unpack_from(payload, 0)
    (total_length, tag_count, flags, r0, r1, r2,
     offset_tags, offset_fixed, offset_varlen, offset_names) = header
    if flags & FLAG_COMPACTED:
        return payload  # already compacted; idempotent

    count, entries, bytes_cursor = _parse_names_section(payload, offset_names)
    new_entries = bytearray()
    cursor = bytes_cursor
    for entry in entries:
        if entry & DECLARED_FIELD_BIT:
            new_entries += U16.pack(entry)
            continue
        length = entry
        name = payload[cursor:cursor + length].decode("utf-8")
        cursor += length
        field_name_id = dictionary.lookup(name)
        if field_name_id is None:
            raise SchemaError(f"cannot compact: field name {name!r} is not in the schema dictionary")
        if field_name_id > NAME_ENTRY_MAX:
            raise EncodingError(f"FieldNameID {field_name_id} exceeds the 15-bit entry capacity")
        new_entries += U16.pack(field_name_id)

    names_section = U32.pack(count) + bytes(new_entries)
    new_total = offset_names + len(names_section)
    new_header = HEADER.pack(
        new_total, tag_count, flags | FLAG_COMPACTED, r0, r1, r2,
        offset_tags, offset_fixed, offset_varlen, offset_names,
    )
    return new_header + payload[HEADER.size:offset_names] + names_section


def expand_record(payload: bytes, dictionary: FieldNameDictionary) -> bytes:
    """Inverse of :func:`compact_record`: re-inline the field-name strings."""
    header = HEADER.unpack_from(payload, 0)
    (total_length, tag_count, flags, r0, r1, r2,
     offset_tags, offset_fixed, offset_varlen, offset_names) = header
    if not flags & FLAG_COMPACTED:
        return payload

    count, entries, _ = _parse_names_section(payload, offset_names)
    new_entries = bytearray()
    name_bytes = bytearray()
    for entry in entries:
        if entry & DECLARED_FIELD_BIT:
            new_entries += U16.pack(entry)
            continue
        name = dictionary.decode(entry)
        encoded = name.encode("utf-8")
        if len(encoded) > NAME_ENTRY_MAX:
            raise EncodingError(f"field name too long to re-inline: {name[:32]!r}...")
        new_entries += U16.pack(len(encoded))
        name_bytes += encoded

    names_section = U32.pack(count) + bytes(new_entries) + bytes(name_bytes)
    new_total = offset_names + len(names_section)
    new_header = HEADER.pack(
        new_total, tag_count, flags & ~FLAG_COMPACTED, r0, r1, r2,
        offset_tags, offset_fixed, offset_varlen, offset_names,
    )
    return new_header + payload[HEADER.size:offset_names] + names_section


def compaction_savings(uncompacted: bytes, compacted: bytes) -> int:
    """Bytes saved by compacting one record (useful in reports and tests)."""
    return len(uncompacted) - len(compacted)
