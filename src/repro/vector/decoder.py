"""Decoder and value access for the vector-based record format.

Access to values in this format is a *linear* scan over the values' type
tags (paper §3.3.1), in contrast with the ADM format's offset-guided
navigation.  The paper mitigates the linear cost by consolidating all of a
query's field accesses into a single ``getValues()`` call (§3.4.2); the
:meth:`VectorRecordView.get_values` method implements exactly that: one
walk, many paths, early exit once every requested path has been resolved.

Compacted records store field-name ids instead of names, so resolving them
requires the dataset's declared datatype (for declared-index entries) and
the inferred schema's field-name dictionary (for FieldNameID entries);
uncompacted records are fully self-describing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DecodingError
from ..types import (
    ADate,
    ADateTime,
    AMultiset,
    APoint,
    ATime,
    Datatype,
    MISSING,
    TypeTag,
    unpack_fixed,
    unpack_variable,
)
from .layout import (
    DECLARED_FIELD_BIT,
    FLAG_COMPACTED,
    HEADER,
    NAME_ENTRY_MAX,
    POP_MARKER_BIT,
    U16,
    U32,
)

#: A path step: an object field name, a collection index, or "*" (all items).
PathStep = Union[str, int]
Path = Tuple[PathStep, ...]

WILDCARD = "*"

#: Cheap scalar placeholders used by :meth:`VectorRecordView.structure`.
_STRUCTURE_PLACEHOLDERS = {
    TypeTag.BOOLEAN: False,
    TypeTag.INT8: 0,
    TypeTag.INT16: 0,
    TypeTag.INT32: 0,
    TypeTag.INT64: 0,
    TypeTag.FLOAT: 0.0,
    TypeTag.DOUBLE: 0.0,
    TypeTag.STRING: "",
    TypeTag.BINARY: b"",
    TypeTag.DATE: ADate(0),
    TypeTag.TIME: ATime(0),
    TypeTag.DATETIME: ADateTime(0),
    TypeTag.POINT: APoint(0.0, 0.0),
}


class _WalkEvent:
    """One event produced by the linear walk over a record's vectors."""

    __slots__ = ("kind", "path", "tag", "value")

    ENTER = 0   # start of a nested value (object/array/multiset)
    EXIT = 1    # end of a nested value
    SCALAR = 2  # a scalar value (value decoded lazily only when asked)

    def __init__(self, kind: int, path: Path, tag: TypeTag, value: Any = None) -> None:
        self.kind = kind
        self.path = path
        self.tag = tag
        self.value = value


class VectorRecordView:
    """Read-only access to one encoded vector-based record.

    Parameters
    ----------
    payload:
        The encoded record bytes (compacted or not).
    datatype:
        Declared datatype; needed to resolve declared-index name entries.
    dictionary:
        Field-name dictionary of the inferred schema; needed to resolve
        FieldNameID entries of compacted records.
    """

    def __init__(self, payload: bytes, datatype: Optional[Datatype] = None,
                 dictionary=None) -> None:
        self.payload = payload
        self.datatype = datatype
        self.dictionary = dictionary
        (self.total_length, self.tag_count, self.flags, _, _, _,
         self.offset_tags, self.offset_fixed, self.offset_varlen,
         self.offset_names) = HEADER.unpack_from(payload, 0)

    # -- basic properties -------------------------------------------------------

    @property
    def is_compacted(self) -> bool:
        return bool(self.flags & FLAG_COMPACTED)

    def __len__(self) -> int:
        return self.total_length

    # -- full materialization ---------------------------------------------------

    def materialize(self) -> Dict[str, Any]:
        """Decode the record back into Python objects."""
        value = self._build(decode_values=True)
        if not isinstance(value, dict):
            raise DecodingError("vector-based payload does not hold an object record")
        return value

    def structure(self) -> Dict[str, Any]:
        """Return the record's structural skeleton with placeholder scalars.

        This touches only the type tags and field names vectors — the
        information the tuple compactor scans when inferring a schema
        (paper §3.3.2) — leaving fixed- and variable-length values unread.
        """
        value = self._build(decode_values=False)
        if not isinstance(value, dict):
            raise DecodingError("vector-based payload does not hold an object record")
        return value

    # -- consolidated field access (the getValues() function) --------------------

    def get_values(self, *paths: Sequence[PathStep]) -> List[Any]:
        """Resolve several access paths in one linear scan (paper §3.4.2).

        Each path is a sequence of field names, collection indexes, and the
        ``"*"`` wildcard which matches every item of a collection.  Paths
        without a wildcard resolve to a single value (``MISSING`` when
        absent).

        A path with a single wildcard resolves *aligned*: one entry per
        collection item, ``MISSING`` for items where the sub-path does not
        resolve, so the result has the collection's cardinality regardless of
        per-item heterogeneity (matching :class:`DictRecordView`).  When the
        wildcard's prefix resolves to a non-collection value (a scalar or an
        object), that value itself is returned instead of a list, so callers
        can apply SQL++'s singleton-collection semantics; an absent or empty
        collection yields ``[]``.  Paths with several wildcards keep the
        legacy flattened present-values-only semantics.

        The scan stops as soon as every exact path has been resolved and
        every wildcard collection has been closed, so access cost grows with
        the position of the requested values within the record (Figure 22).
        """
        requests = [tuple(path) for path in paths]
        results: List[Any] = [MISSING] * len(requests)
        single_wild: Dict[int, int] = {}   # request index -> wildcard position
        multi_wild: List[int] = []
        for index, request in enumerate(requests):
            positions = [at for at, step in enumerate(request) if step == WILDCARD]
            if len(positions) == 1:
                single_wild[index] = positions[0]
                results[index] = []
            elif positions:
                multi_wild.append(index)
                results[index] = []
        pending_exact = len(requests) - len(single_wild) - len(multi_wild)
        open_wild = dict(single_wild)      # still-unresolved single-wildcard requests
        wild_matches: Dict[int, Dict[int, Any]] = {index: {} for index in single_wild}
        wild_counts: Dict[int, int] = {index: 0 for index in single_wild}
        # Capture keys: request index (exact paths), (index, item_index)
        # (wildcard item subtrees), or (index, None) (object at a wildcard
        # prefix, captured whole for singleton semantics).
        capture: Dict[Any, _Capture] = {}

        def finish_aligned(index: int) -> None:
            open_wild.pop(index)
            matches = wild_matches[index]
            results[index] = [matches.get(item, MISSING)
                              for item in range(wild_counts[index])]

        for event in self._walk():
            # feed open captures first (they consume the whole subtree)
            if capture:
                finished = [key for key, cap in capture.items() if cap.feed(event)]
                for key in finished:
                    cap = capture.pop(key)
                    if isinstance(key, int):
                        if key in multi_wild:
                            results[key].append(cap.result())
                        else:
                            results[key] = cap.result()
                            pending_exact -= 1
                    else:
                        index, slot = key
                        if slot is None:
                            open_wild.pop(index, None)
                            results[index] = cap.result()
                        else:
                            wild_matches[index][slot] = cap.result()

            path = event.path
            depth = len(path)
            if event.kind == _WalkEvent.EXIT:
                for index in [i for i, at in open_wild.items()
                              if depth == at and path == requests[i][:at]]:
                    finish_aligned(index)
            else:
                for index, at in list(open_wild.items()):
                    if (index, None) in capture:
                        continue
                    request = requests[index]
                    if depth == at and path == request[:at]:
                        # the wildcard's prefix itself: a scalar or an object
                        # means a non-collection "collection" — pass it
                        # through for singleton semantics.
                        if event.kind == _WalkEvent.SCALAR:
                            open_wild.pop(index)
                            results[index] = event.value
                        elif event.tag is TypeTag.OBJECT:
                            capture[(index, None)] = _Capture(event)
                        continue
                    if (depth == at + 1 and isinstance(path[at], int)
                            and path[:at] == request[:at]):
                        wild_counts[index] += 1
                    if self._path_matches(request, path):
                        if event.kind == _WalkEvent.SCALAR:
                            wild_matches[index][path[at]] = event.value
                        else:
                            capture[(index, path[at])] = _Capture(event)
                for index in multi_wild:
                    if index in capture:
                        continue
                    if self._path_matches(requests[index], path):
                        if event.kind == _WalkEvent.SCALAR:
                            results[index].append(event.value)
                        else:
                            capture[index] = _Capture(event)
                for index, request in enumerate(requests):
                    if index in single_wild or index in multi_wild or index in capture:
                        continue
                    if self._path_matches(request, path):
                        if event.kind == _WalkEvent.SCALAR:
                            results[index] = event.value
                            pending_exact -= 1
                        else:
                            capture[index] = _Capture(event)

            if pending_exact == 0 and not open_wild and not multi_wild and not capture:
                break
        return results

    def get_field(self, *path: PathStep) -> Any:
        """Single-path access (the un-consolidated ``getField()``)."""
        return self.get_values(tuple(path))[0]

    def get_items(self, *path: PathStep) -> Sequence[Any]:
        """Items of the collection at ``path`` (used by UNNEST)."""
        value = self.get_field(*path)
        if isinstance(value, AMultiset):
            return list(value.items)
        if isinstance(value, list):
            return value
        if value is MISSING or value is None:
            return []
        return [value]

    @staticmethod
    def _path_matches(request: Path, path: Path) -> bool:
        if len(request) != len(path):
            return False
        for wanted, actual in zip(request, path):
            if wanted == WILDCARD:
                if not isinstance(actual, int):
                    return False
            elif wanted != actual:
                return False
        return True

    # -- the linear walk -----------------------------------------------------------

    def _walk(self, decode_values: bool = True) -> Iterator[_WalkEvent]:
        """Yield structural events in tag order (one linear pass)."""
        payload = self.payload
        tags_start = self.offset_tags
        tag_count = self.tag_count
        fixed_cursor = self.offset_fixed

        (var_count,) = U32.unpack_from(payload, self.offset_varlen)
        var_length_cursor = self.offset_varlen + 4
        var_value_cursor = var_length_cursor + 4 * var_count

        (name_count,) = U32.unpack_from(payload, self.offset_names)
        name_entry_cursor = self.offset_names + 4
        name_bytes_cursor = name_entry_cursor + 2 * name_count

        # Stack entries: [container_tag, next_item_index] — for objects the
        # index is unused (children are keyed by name).
        stack: List[List[Any]] = []
        path: List[PathStep] = []

        index = 0
        while index < tag_count:
            raw = payload[tags_start + index]
            index += 1
            if raw & POP_MARKER_BIT:
                exited_tag = stack.pop()[0]
                exited_path = tuple(path)
                if path:
                    path.pop()
                yield _WalkEvent(_WalkEvent.EXIT, exited_path, exited_tag)
                continue
            tag = TypeTag(raw)
            if tag is TypeTag.EOV:
                if stack:
                    exited_tag = stack.pop()[0]
                    yield _WalkEvent(_WalkEvent.EXIT, tuple(path), exited_tag)
                break

            # Determine this value's path component from its parent container.
            if stack:
                parent = stack[-1]
                if parent[0] is TypeTag.OBJECT:
                    name = self._read_name(payload, name_entry_cursor, name_bytes_cursor)
                    name_entry_cursor += 2
                    name_bytes_cursor += name[1]
                    path.append(name[0])
                else:
                    path.append(parent[1])
                    parent[1] += 1
            value_path = tuple(path)

            if tag is TypeTag.OBJECT or tag in (TypeTag.ARRAY, TypeTag.MULTISET):
                stack.append([tag, 0])
                yield _WalkEvent(_WalkEvent.ENTER, value_path, tag)
                # nested values do not pop `path` here; the pop marker does
                continue

            if tag is TypeTag.NULL:
                value = None
            elif tag is TypeTag.MISSING:
                value = MISSING
            elif tag.is_fixed_length:
                value = unpack_fixed(tag, payload, fixed_cursor) if decode_values else \
                    _STRUCTURE_PLACEHOLDERS.get(tag, 0)
                fixed_cursor += tag.fixed_length
            elif tag.is_variable_length:
                (length,) = U32.unpack_from(payload, var_length_cursor)
                var_length_cursor += 4
                if decode_values:
                    value = unpack_variable(tag, payload[var_value_cursor:var_value_cursor + length])
                else:
                    value = _STRUCTURE_PLACEHOLDERS.get(tag, "")
                var_value_cursor += length
            else:
                raise DecodingError(f"unexpected tag {tag.name} in tags vector")
            yield _WalkEvent(_WalkEvent.SCALAR, value_path, tag, value)
            if path:
                path.pop()

    def _read_name(self, payload: bytes, entry_cursor: int, bytes_cursor: int) -> Tuple[str, int]:
        """Decode one field-name entry.

        Returns ``(name, inline_bytes_consumed)`` where the second element is
        non-zero only for uncompacted inline names.
        """
        (entry,) = U16.unpack_from(payload, entry_cursor)
        if entry & DECLARED_FIELD_BIT:
            index = entry & NAME_ENTRY_MAX
            if self.datatype is None or index >= len(self.datatype.fields):
                raise DecodingError(f"declared field index {index} cannot be resolved without a datatype")
            return self.datatype.fields[index].name, 0
        if self.is_compacted:
            if self.dictionary is None:
                raise DecodingError("compacted record requires a field-name dictionary to decode")
            return self.dictionary.decode(entry), 0
        length = entry
        name = payload[bytes_cursor:bytes_cursor + length].decode("utf-8")
        return name, length

    # -- building nested Python values ---------------------------------------------

    def _build(self, decode_values: bool) -> Any:
        root: Any = None
        builders: List[_NestedBuilder] = []
        for event in self._walk(decode_values=decode_values):
            if event.kind == _WalkEvent.ENTER:
                builders.append(_NestedBuilder(event.tag, event.path))
            elif event.kind == _WalkEvent.EXIT:
                finished = builders.pop()
                value = finished.finish()
                if builders:
                    builders[-1].add(finished.path[-1] if finished.path else None, value)
                else:
                    root = value
            else:
                if builders:
                    builders[-1].add(event.path[-1], event.value)
                else:
                    root = event.value
        return root


class _NestedBuilder:
    """Accumulates children of one nested value during materialization."""

    __slots__ = ("tag", "path", "object_fields", "items")

    def __init__(self, tag: TypeTag, path: Path) -> None:
        self.tag = tag
        self.path = path
        self.object_fields: Dict[str, Any] = {}
        self.items: List[Any] = []

    def add(self, key: Optional[PathStep], value: Any) -> None:
        if self.tag is TypeTag.OBJECT:
            self.object_fields[key] = value
        else:
            self.items.append(value)

    def finish(self) -> Any:
        if self.tag is TypeTag.OBJECT:
            return self.object_fields
        if self.tag is TypeTag.MULTISET:
            return AMultiset(self.items)
        return self.items


class _Capture:
    """Captures one nested subtree encountered during :meth:`get_values`."""

    def __init__(self, enter_event: _WalkEvent) -> None:
        self._root_path = enter_event.path
        self._depth = 1
        self._builders = [_NestedBuilder(enter_event.tag, enter_event.path)]
        self._result: Any = MISSING

    def feed(self, event: _WalkEvent) -> bool:
        """Consume one walk event; returns True when the subtree is complete."""
        if event.kind == _WalkEvent.ENTER:
            self._depth += 1
            self._builders.append(_NestedBuilder(event.tag, event.path))
            return False
        if event.kind == _WalkEvent.EXIT:
            self._depth -= 1
            finished = self._builders.pop()
            value = finished.finish()
            if self._builders:
                self._builders[-1].add(finished.path[-1] if finished.path else None, value)
                return False
            self._result = value
            return True
        # scalar
        self._builders[-1].add(event.path[-1], event.value)
        return False

    def result(self) -> Any:
        return self._result
