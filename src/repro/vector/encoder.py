"""Encoder for the vector-based physical record format (paper §3.3.1).

The encoder performs a single depth-first traversal of the record, appending
to four flat buffers (tags, fixed-length values, variable-length values,
field names) and finally concatenating them behind a header.  Unlike the
recursive ADM encoder there is no child-buffer-into-parent-buffer copying,
which is the source of the ~40 % record-construction advantage the paper
measures for this format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import EncodingError
from ..types import (
    AMultiset,
    Datatype,
    Missing,
    TypeTag,
    pack_fixed,
    pack_variable,
    type_tag_of,
)
from .layout import (
    DECLARED_FIELD_BIT,
    FLAG_COMPACTED,
    HEADER,
    HEADER_SIZE,
    NAME_ENTRY_MAX,
    POP_MARKER_BIT,
    U16,
    U32,
)


class VectorEncoder:
    """Encodes Python records into (uncompacted) vector-based bytes.

    Parameters
    ----------
    datatype:
        Declared datatype of the dataset.  Root-level declared fields store
        their declared index (high-bit entry) instead of their name, exactly
        as the paper's Figure 13 stores the index of ``id``.
    validate:
        Validate records against the datatype before encoding.
    """

    def __init__(self, datatype: Optional[Datatype] = None, validate: bool = False) -> None:
        self.datatype = datatype
        self.validate = validate and datatype is not None

    def encode(self, record: Dict[str, Any]) -> bytes:
        """Encode a top-level object record."""
        if not isinstance(record, dict):
            raise EncodingError("top-level vector-based records must be objects")
        if self.validate:
            self.datatype.validate(record)
        builder = _Builder(self.datatype)
        builder.walk_root(record)
        return builder.finish()


class _Builder:
    """Accumulates the four vectors during one DFS walk."""

    def __init__(self, datatype: Optional[Datatype]) -> None:
        self.datatype = datatype
        self.tags = bytearray()
        self.fixed = bytearray()
        self.var_lengths: List[int] = []
        self.var_values = bytearray()
        self.name_entries: List[int] = []
        self.name_bytes = bytearray()

    # -- traversal ------------------------------------------------------------

    def walk_root(self, record: Dict[str, Any]) -> None:
        self.tags.append(TypeTag.OBJECT)
        for name, value in record.items():
            if isinstance(value, Missing):
                continue
            self._append_field_name(name, at_root=True)
            self._walk_value(value, parent_tag=TypeTag.OBJECT)
        self.tags.append(TypeTag.EOV)

    def _walk_value(self, value: Any, parent_tag: TypeTag) -> None:
        tag = type_tag_of(value)
        self.tags.append(tag)
        if tag is TypeTag.OBJECT:
            for name, child in value.items():
                if isinstance(child, Missing):
                    continue
                self._append_field_name(name, at_root=False)
                self._walk_value(child, parent_tag=TypeTag.OBJECT)
            self.tags.append(POP_MARKER_BIT | parent_tag)
        elif tag in (TypeTag.ARRAY, TypeTag.MULTISET):
            items = value.items if isinstance(value, AMultiset) else value
            for item in items:
                self._walk_value(item, parent_tag=tag)
            self.tags.append(POP_MARKER_BIT | parent_tag)
        elif tag in (TypeTag.NULL, TypeTag.MISSING):
            pass  # tag only, no payload
        elif tag.is_fixed_length:
            self.fixed += pack_fixed(tag, value)
        elif tag.is_variable_length:
            payload = pack_variable(tag, value)
            self.var_lengths.append(len(payload))
            self.var_values += payload
        else:  # pragma: no cover - defensive
            raise EncodingError(f"cannot encode value with tag {tag.name}")

    def _append_field_name(self, name: str, at_root: bool) -> None:
        """Append one field-name entry (declared index or inline name)."""
        if at_root and self.datatype is not None:
            index = self.datatype.index_of(name)
            if index is not None:
                if index > NAME_ENTRY_MAX:
                    raise EncodingError(f"declared field index {index} exceeds entry capacity")
                self.name_entries.append(DECLARED_FIELD_BIT | index)
                return
        encoded = name.encode("utf-8")
        if len(encoded) > NAME_ENTRY_MAX:
            raise EncodingError(f"field name longer than {NAME_ENTRY_MAX} bytes: {name[:32]!r}...")
        self.name_entries.append(len(encoded))
        self.name_bytes += encoded

    # -- assembly -----------------------------------------------------------------

    def finish(self) -> bytes:
        offset_tags = HEADER_SIZE
        offset_fixed = offset_tags + len(self.tags)
        varlen_section = bytearray()
        varlen_section += U32.pack(len(self.var_lengths))
        for length in self.var_lengths:
            varlen_section += U32.pack(length)
        varlen_section += self.var_values
        offset_varlen = offset_fixed + len(self.fixed)
        names_section = bytearray()
        names_section += U32.pack(len(self.name_entries))
        for entry in self.name_entries:
            names_section += U16.pack(entry)
        names_section += self.name_bytes
        offset_names = offset_varlen + len(varlen_section)
        total_length = offset_names + len(names_section)
        header = HEADER.pack(
            total_length,
            len(self.tags),
            0,  # flags: not compacted
            0, 0, 0,
            offset_tags,
            offset_fixed,
            offset_varlen,
            offset_names,
        )
        return b"".join([header, bytes(self.tags), bytes(self.fixed), bytes(varlen_section), bytes(names_section)])


def is_compacted(payload: bytes) -> bool:
    """True when a vector-based payload has been compacted against a schema."""
    fields = HEADER.unpack_from(payload, 0)
    return bool(fields[2] & FLAG_COMPACTED)


def record_total_length(payload: bytes) -> int:
    """Total length recorded in a vector-based payload's header."""
    return HEADER.unpack_from(payload, 0)[0]
