"""Vector-based physical record format (the paper's compaction-friendly format)."""

from .encoder import VectorEncoder, is_compacted, record_total_length
from .decoder import VectorRecordView, WILDCARD
from .batch import BatchExtractor, ColumnBatch, get_values_batch
from .compaction import compact_record, compaction_savings, expand_record

__all__ = [
    "VectorEncoder",
    "VectorRecordView",
    "WILDCARD",
    "BatchExtractor",
    "ColumnBatch",
    "get_values_batch",
    "is_compacted",
    "record_total_length",
    "compact_record",
    "expand_record",
    "compaction_savings",
]
