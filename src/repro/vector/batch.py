"""Batched column extraction over vector-based records (ROADMAP item 2).

The row pipeline resolves a query's access paths one record at a time
through :meth:`VectorRecordView.get_values`, which drives a generator of
walk events and decodes *every* scalar it passes — row-store costs on a
columnar layout.  This module is the batch engine's answer: a
:class:`BatchExtractor` compiles the requested paths into a small trie once
per query, then walks each record's tag/fixed/varlen/name vectors in a
tight loop that

* skips decoding scalars on paths nobody asked for (cursors advance by the
  tag's known width instead of unpacking the value),
* skips decoding field names inside irrelevant subtrees, and
* allocates no per-value event or path objects.

Semantics are identical to ``get_values`` (exact paths, aligned
single-wildcard paths with scalar/object passthrough, subtree capture for
nested values) — the property suite asserts extractor-vs-``get_values``
parity on random records.  :func:`get_values_batch` applies one extractor
across N records; :class:`ColumnBatch` is the column-major container the
batch operators consume.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..types import AMultiset, MISSING, TypeTag, unpack_fixed, unpack_variable
from .decoder import Path, PathStep, VectorRecordView, WILDCARD, _NestedBuilder
from .layout import DECLARED_FIELD_BIT, NAME_ENTRY_MAX, POP_MARKER_BIT, U16, U32

_EOV = TypeTag.EOV.value
_NULL = TypeTag.NULL.value
_MISSING = TypeTag.MISSING.value
_OBJECT = TypeTag.OBJECT.value
_NESTED = frozenset((TypeTag.OBJECT.value, TypeTag.ARRAY.value, TypeTag.MULTISET.value))
_TAG_FROM_BYTE = {tag.value: tag for tag in TypeTag}
_FIXED_SIZE = {tag.value: tag.fixed_length for tag in TypeTag if tag.is_fixed_length}
_VARLEN = frozenset((TypeTag.STRING.value, TypeTag.BINARY.value))


class _TrieNode:
    """One step of the compiled request trie."""

    __slots__ = ("children", "wild", "exact_ids", "wild_ids", "subtree_ids")

    def __init__(self) -> None:
        self.children: Dict[PathStep, "_TrieNode"] = {}
        #: Child reached through the ``"*"`` step (matches int item indexes).
        self.wild: Optional["_TrieNode"] = None
        #: Exact requests terminating at this node.
        self.exact_ids: List[int] = []
        #: Single-wildcard requests terminating at this node.
        self.wild_ids: List[int] = []
        #: On a wild node: every single-wildcard request in its subtree —
        #: the requests resolved together when the collection at the prefix
        #: turns out to be a scalar/object (passthrough) or closes (aligned).
        self.subtree_ids: List[int] = []


class _SubtreeCapture:
    """Builds one nested value inline while the tight walk passes over it."""

    __slots__ = ("slot", "builders", "value")

    def __init__(self, slot: Tuple[Any, ...], tag: TypeTag, step: Optional[PathStep]) -> None:
        self.slot = slot
        self.builders = [_NestedBuilder(tag, (step,) if step is not None else ())]
        self.value: Any = MISSING

    def feed_enter(self, step: Optional[PathStep], tag: TypeTag) -> None:
        self.builders.append(_NestedBuilder(tag, (step,) if step is not None else ()))

    def feed_exit(self) -> bool:
        finished = self.builders.pop()
        value = finished.finish()
        if self.builders:
            self.builders[-1].add(finished.path[-1] if finished.path else None, value)
            return False
        self.value = value
        return True

    def feed_scalar(self, step: Optional[PathStep], value: Any) -> None:
        self.builders[-1].add(step, value)


class BatchExtractor:
    """Compiled multi-path extractor, reusable across records.

    Paths with more than one wildcard (never produced by the optimizer) and
    non-vector record views fall back to the view's own ``get_values``.
    """

    def __init__(self, paths: Sequence[Sequence[PathStep]]) -> None:
        self.requests: List[Path] = [tuple(path) for path in paths]
        self.root = _TrieNode()
        self.exact_count = 0
        self.wild_ids: List[int] = []
        self.fallback = False
        for rid, request in enumerate(self.requests):
            stars = sum(1 for step in request if step == WILDCARD)
            if stars > 1:
                self.fallback = True
                continue
            node = self.root
            wild_node: Optional[_TrieNode] = None
            for step in request:
                if step == WILDCARD:
                    if node.wild is None:
                        node.wild = _TrieNode()
                    node = node.wild
                    wild_node = node
                else:
                    node = node.children.setdefault(step, _TrieNode())
            if stars == 1:
                node.wild_ids.append(rid)
                wild_node.subtree_ids.append(rid)
                self.wild_ids.append(rid)
            else:
                node.exact_ids.append(rid)
                self.exact_count += 1

    def extract(self, view: Any) -> List[Any]:
        """Resolve every compiled path against one record view."""
        if not self.requests:
            return []
        if self.fallback or not isinstance(view, VectorRecordView):
            return view.get_values(*self.requests)
        return self._extract_vector(view)

    # The tight walk.  Mirrors VectorRecordView._walk's cursor discipline but
    # inlined, allocation-free for untouched values, and guided by the trie.
    def _extract_vector(self, view: VectorRecordView) -> List[Any]:
        payload = view.payload
        tags_start = view.offset_tags
        tag_count = view.tag_count
        fixed_cursor = view.offset_fixed
        (var_count,) = U32.unpack_from(payload, view.offset_varlen)
        var_length_cursor = view.offset_varlen + 4
        var_value_cursor = var_length_cursor + 4 * var_count
        (name_count,) = U32.unpack_from(payload, view.offset_names)
        name_entry_cursor = view.offset_names + 4
        name_bytes_cursor = name_entry_cursor + 2 * name_count
        datatype = view.datatype
        dictionary = view.dictionary
        compacted = view.is_compacted

        results: List[Any] = [MISSING] * len(self.requests)
        for wid in self.wild_ids:
            results[wid] = []
        pending_exact = self.exact_count
        open_wild = set(self.wild_ids)
        wild_matches: Dict[int, Dict[int, Any]] = {wid: {} for wid in self.wild_ids}
        wild_counts: Dict[int, int] = {wid: 0 for wid in self.wild_ids}
        captures: List[_SubtreeCapture] = []

        def resolve(slot: Tuple[Any, ...], value: Any) -> None:
            nonlocal pending_exact
            kind = slot[0]
            if kind == "e":
                results[slot[1]] = value
                pending_exact -= 1
            elif kind == "w":
                wild_matches[slot[1]][slot[2]] = value
            else:  # passthrough: the collection itself was an object
                for wid in slot[1]:
                    if wid in open_wild:
                        open_wild.discard(wid)
                        results[wid] = value

        def close_frame(counting: List[int]) -> None:
            for wid in counting:
                if wid in open_wild:
                    open_wild.discard(wid)
                    matches = wild_matches[wid]
                    results[wid] = [matches.get(item, MISSING)
                                    for item in range(wild_counts[wid])]

        def feed_exits() -> None:
            kept = []
            for cap in captures:
                if cap.feed_exit():
                    resolve(cap.slot, cap.value)
                else:
                    kept.append(cap)
            captures[:] = kept

        # Frame: [is_object, next_item_index, pairs, counting_ids] where
        # pairs is [(trie node, wildcard item index)] for the container.
        stack: List[List[Any]] = []

        index = 0
        while index < tag_count:
            raw = payload[tags_start + index]
            index += 1
            if raw & POP_MARKER_BIT:
                frame = stack.pop()
                close_frame(frame[3])
                if captures:
                    feed_exits()
                if not pending_exact and not open_wild and not captures:
                    return results
                continue
            if raw == _EOV:
                while stack:
                    frame = stack.pop()
                    close_frame(frame[3])
                    if captures:
                        feed_exits()
                break

            # Path step under the parent container (field name or item index).
            step: Any = None
            pairs: List[Tuple[_TrieNode, int]] = ()
            if stack:
                frame = stack[-1]
                pairs = frame[2]
                if frame[0]:  # object parent: consume one name entry
                    (entry,) = U16.unpack_from(payload, name_entry_cursor)
                    name_entry_cursor += 2
                    if entry & DECLARED_FIELD_BIT:
                        if pairs or captures:
                            step = datatype.fields[entry & NAME_ENTRY_MAX].name
                    elif compacted:
                        if pairs or captures:
                            step = dictionary.decode(entry)
                    else:
                        if pairs or captures:
                            step = payload[name_bytes_cursor:name_bytes_cursor + entry].decode("utf-8")
                        name_bytes_cursor += entry
                else:
                    step = frame[1]
                    frame[1] += 1
                for wid in frame[3]:
                    wild_counts[wid] += 1
                child_pairs: List[Tuple[_TrieNode, int]] = []
                if pairs and step is not None:
                    is_item = isinstance(step, int)
                    for node, ctx in pairs:
                        nxt = node.children.get(step)
                        if nxt is not None:
                            child_pairs.append((nxt, ctx))
                        if is_item and node.wild is not None:
                            child_pairs.append((node.wild, step))
            else:
                # record root (no parent): matched by the trie root itself
                child_pairs = [(self.root, -1)]

            if raw in _NESTED:
                tag = _TAG_FROM_BYTE[raw]
                for cap in captures:
                    cap.feed_enter(step, tag)
                counting: List[int] = []
                for node, ctx in child_pairs:
                    for rid in node.exact_ids:
                        captures.append(_SubtreeCapture(("e", rid), tag, step))
                    for wid in node.wild_ids:
                        captures.append(_SubtreeCapture(("w", wid, ctx), tag, step))
                    if node.wild is not None:
                        if raw == _OBJECT:
                            remaining = [wid for wid in node.wild.subtree_ids
                                         if wid in open_wild]
                            if remaining:
                                captures.append(_SubtreeCapture(("p", remaining), tag, step))
                        else:
                            counting.extend(node.wild.subtree_ids)
                stack.append([raw == _OBJECT, 0, child_pairs, counting])
                continue

            # scalar value: decode only when someone needs it
            need_value = bool(captures)
            if not need_value:
                for node, _ in child_pairs:
                    if node.exact_ids or node.wild_ids or node.wild is not None:
                        need_value = True
                        break
            if raw == _NULL:
                value = None
            elif raw == _MISSING:
                value = MISSING
            elif raw in _VARLEN:
                (length,) = U32.unpack_from(payload, var_length_cursor)
                var_length_cursor += 4
                value = (unpack_variable(_TAG_FROM_BYTE[raw],
                                         payload[var_value_cursor:var_value_cursor + length])
                         if need_value else None)
                var_value_cursor += length
            else:
                value = (unpack_fixed(_TAG_FROM_BYTE[raw], payload, fixed_cursor)
                         if need_value else None)
                fixed_cursor += _FIXED_SIZE[raw]
            if need_value:
                for cap in captures:
                    cap.feed_scalar(step, value)
                for node, ctx in child_pairs:
                    for rid in node.exact_ids:
                        results[rid] = value
                        pending_exact -= 1
                    for wid in node.wild_ids:
                        wild_matches[wid][ctx] = value
                    if node.wild is not None:
                        # scalar where a collection was expected: passthrough
                        for wid in node.wild.subtree_ids:
                            if wid in open_wild:
                                open_wild.discard(wid)
                                results[wid] = value
                if not pending_exact and not open_wild and not captures:
                    return results
        return results


def get_values_batch(views: Iterable[Any], paths: Sequence[Sequence[PathStep]],
                     extractor: Optional[BatchExtractor] = None) -> List[List[Any]]:
    """Resolve ``paths`` for every view; returns one column per path.

    The multi-record extension of :meth:`VectorRecordView.get_values`
    (paper §3.4.2): the request trie is compiled once and amortized across
    the batch, and each record is walked exactly once.
    """
    if extractor is None:
        extractor = BatchExtractor(paths)
    columns: List[List[Any]] = [[] for _ in paths]
    for view in views:
        values = extractor.extract(view)
        for column, value in zip(columns, values):
            column.append(value)
    return columns


class ColumnBatch:
    """Column-major container for N records' requested value slices.

    ``columns`` is keyed exactly like the row pipeline's ``EXTRACTED``
    environment entry — ``(variable, path) -> list of values`` — so batch
    expression evaluation reads the same shapes the row evaluator would.
    ``views`` retains the record views for whole-record projections
    (``SELECT t``) and is replicated through UNNEST flattening.
    """

    __slots__ = ("length", "views", "columns")

    def __init__(self, views: Optional[List[Any]],
                 columns: Dict[Tuple[str, Path], List[Any]],
                 length: Optional[int] = None) -> None:
        self.views = views
        self.columns = columns
        self.length = len(views) if length is None else length

    @classmethod
    def from_views(cls, views: List[Any], record_var: str,
                   paths: Sequence[Path],
                   extractor: Optional[BatchExtractor] = None) -> "ColumnBatch":
        """Decode the requested column slices for a batch of record views."""
        extracted = get_values_batch(views, paths, extractor)
        columns = {(record_var, tuple(path)): column
                   for path, column in zip(paths, extracted)}
        return cls(views, columns, len(views))

    def column(self, var: str, path: Path) -> List[Any]:
        return self.columns[(var, path)]

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Row subset (the batch SELECT's filtered output)."""
        views = [self.views[i] for i in indices] if self.views is not None else None
        columns = {key: [column[i] for i in indices]
                   for key, column in self.columns.items()}
        return ColumnBatch(views, columns, len(indices))

    def __len__(self) -> int:
        return self.length
