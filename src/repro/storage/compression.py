"""Page-compression codecs (the paper's "syntactic" approach, §2.4).

AsterixDB's page-level compression uses Snappy; Snappy is not available in
this offline environment, so the default codec is ``zlib`` at a fast level,
which has the same compress-on-write / decompress-on-read behaviour and a
comparable compression profile on JSON-ish page content.  The registry is
pluggable so alternative codecs (including the no-op codec used by
uncompressed datasets) can be selected per dataset via
:class:`repro.config.StorageConfig`.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Optional, Tuple

from ..errors import StorageError


class Codec:
    """A page codec: stateless ``compress``/``decompress`` pair."""

    name = "abstract"

    def compress(self, payload: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        raise NotImplementedError


class NoneCodec(Codec):
    """Identity codec used when compression is disabled."""

    name = "none"

    def compress(self, payload: bytes) -> bytes:
        return payload

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        return payload


class ZlibCodec(Codec):
    """zlib/DEFLATE codec standing in for Snappy (see module docstring)."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        if not 0 <= level <= 9:
            raise StorageError(f"zlib level must be within [0, 9], got {level}")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return zlib.compress(payload, self.level)

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        expanded = zlib.decompress(payload)
        if len(expanded) != original_size:
            raise StorageError(
                f"decompressed page size {len(expanded)} does not match expected {original_size}"
            )
        return expanded


_REGISTRY: Dict[str, Callable[[int], Codec]] = {
    "none": lambda level: NoneCodec(),
    "zlib": lambda level: ZlibCodec(level),
    # "snappy" is what the paper (and MongoDB) use; map it onto the zlib
    # stand-in so experiment configs can keep the paper's codec name.
    "snappy": lambda level: ZlibCodec(level),
}


def register_codec(name: str, factory: Callable[[int], Codec]) -> None:
    """Register a custom codec factory (used by tests and extensions)."""
    _REGISTRY[name] = factory


def get_codec(name: Optional[str], level: int = 1) -> Codec:
    """Resolve a codec by name; ``None`` resolves to the identity codec."""
    if name is None:
        return NoneCodec()
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise StorageError(f"unknown compression codec {name!r}") from exc
    return factory(level)


def compress_page(codec: Codec, page: bytes) -> Tuple[bytes, bool]:
    """Compress a page, keeping the original when compression does not pay.

    Returns ``(payload, was_compressed)``.  Storing an incompressible page
    uncompressed mirrors what real engines (and Snappy framing) do and keeps
    the look-aside file meaningful for mixed content.
    """
    compressed = codec.compress(page)
    if len(compressed) >= len(page):
        return page, False
    return compressed, True
