"""LRU buffer cache sitting between the engine and the file manager.

AsterixDB's buffer cache holds fixed-size, *uncompressed* pages; compression
and the look-aside files live below it (paper §2.4: "pages are compressed and
then persisted to disk; on read, pages are decompressed to their original
configured fixed-size and stored in memory in AsterixDB's buffer cache").
This class reproduces that split:

* :meth:`read_page` returns the uncompressed page, serving repeated reads
  from memory (hits) and charging misses to the device through the file
  manager;
* :meth:`write_page` pushes a page straight through to the file manager
  (LSM components are write-once, so a write-back policy would only add
  complexity) while also installing it in the cache so immediately
  following queries do not pay a read.

Pages can be *pinned* to keep them resident while an operator iterates over
them; eviction only considers unpinned pages, in LRU order.

The cache is shared by every partition of a storage environment, so with
the parallel query executor it is hit from multiple worker threads at once.
Frame bookkeeping (lookup, LRU order, install, evict, counters) is guarded
by a lock; the underlying file-manager fetch on a miss deliberately happens
*outside* the lock so that misses against different component files overlap
— holding the lock across the fetch would serialize exactly the I/O the
parallel executor is supposed to overlap.  Two threads missing the same
page concurrently may both fetch it (the first install wins; the loser
reuses the installed frame and discards its own copy); component files are
partition-private, so in practice concurrent same-page misses do not occur.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import BufferCacheFullError
from ..faults import fire_fault
from ..obs import MetricsRegistry, StatsDictMixin, get_registry
from .file_manager import BaseFileManager

PageKey = Tuple[str, int]


@dataclass
class CacheStats(StatsDictMixin):
    """Hit/miss counters exposed to benchmarks and tests."""

    _DERIVED = ("hit_ratio",)

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.writes)

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier snapshot."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          evictions=self.evictions - earlier.evictions,
                          writes=self.writes - earlier.writes)


class _Frame:
    __slots__ = ("data", "pin_count")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pin_count = 0


class BufferCache:
    """Fixed-capacity LRU cache of uncompressed pages."""

    def __init__(self, file_manager: BaseFileManager, capacity_pages: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.file_manager = file_manager
        self.capacity_pages = capacity_pages
        self.page_size = file_manager.page_size
        self.stats = CacheStats()
        self._frames: "OrderedDict[PageKey, _Frame]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock()
        metrics = metrics if metrics is not None else get_registry()
        self._hits = metrics.counter("cache_hits")
        self._misses = metrics.counter("cache_misses")
        self._evictions = metrics.counter("cache_evictions")
        self._cache_writes = metrics.counter("cache_writes")

    def stats_snapshot(self) -> CacheStats:
        """Copy of the counters (use with :meth:`CacheStats.diff`)."""
        with self._lock:
            return self.stats.copy()

    # -- reads --------------------------------------------------------------------

    def read_page(self, file_name: str, page_no: int, pin: bool = False) -> bytes:
        """Return the uncompressed content of a logical page."""
        key = (file_name, page_no)
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                self.stats.hits += 1
                self._hits.inc()
                self._frames.move_to_end(key)
                if pin:
                    frame.pin_count += 1
                return frame.data
            self.stats.misses += 1
            self._misses.inc()
        fire_fault("buffercache.miss")
        data = self.file_manager.read_page(file_name, page_no)
        with self._lock:
            frame = self._frames.get(key)
            if frame is None:
                frame = _Frame(data)
                self._install(key, frame)
            else:
                self._frames.move_to_end(key)
            if pin:
                frame.pin_count += 1
            return frame.data

    def unpin(self, file_name: str, page_no: int) -> None:
        with self._lock:
            frame = self._frames.get((file_name, page_no))
            if frame is not None and frame.pin_count > 0:
                frame.pin_count -= 1

    # -- writes ---------------------------------------------------------------------

    def write_page(self, file_name: str, page_no: int, data: bytes) -> None:
        """Write-through a page and keep it resident."""
        self.file_manager.write_page(file_name, page_no, data)
        with self._lock:
            self.stats.writes += 1
            self._cache_writes.inc()
            self._install((file_name, page_no), _Frame(data))

    # -- file-level helpers -------------------------------------------------------------

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached page of a file (after delete/merge cleanup)."""
        with self._lock:
            stale = [key for key in self._frames if key[0] == file_name]
            for key in stale:
                del self._frames[key]

    def clear(self) -> None:
        """Empty the cache (used to make query benchmarks cold-start)."""
        with self._lock:
            self._frames.clear()

    @property
    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

    # -- internals ----------------------------------------------------------------------

    # requires-lock: _lock
    def _install(self, key: PageKey, frame: _Frame) -> None:
        if key in self._frames:
            existing = self._frames[key]
            frame.pin_count = existing.pin_count
        self._frames[key] = frame
        self._frames.move_to_end(key)
        self._evict_if_needed(protect=key)

    # requires-lock: _lock
    def _evict_if_needed(self, protect: PageKey) -> None:
        while len(self._frames) > self.capacity_pages:
            victim_key = None
            for key, frame in self._frames.items():
                if frame.pin_count == 0 and key != protect:
                    victim_key = key
                    break
            if victim_key is None:
                raise BufferCacheFullError(
                    f"all {len(self._frames)} cached pages are pinned; cannot evict"
                )
            del self._frames[victim_key]
            self.stats.evictions += 1
            self._evictions.inc()
