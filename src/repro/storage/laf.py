"""Look-Aside Files (LAFs) for variable-size compressed pages (paper §2.4).

AsterixDB's storage layer works with fixed-size pages, but compressed pages
have arbitrary sizes.  Rather than changing the physical layout, the paper
stores compressed pages back-to-back in the data file and keeps, for every
logical page, an ``(offset, length)`` entry in a side file — the Look-Aside
File.  Each entry is 12 bytes (8-byte offset + 4-byte length), matching the
entry size quoted in the paper, so a 128 KB LAF page holds 10 922 entries
and LAF pages cache extremely well.

The LAF for a file is small and is kept fully in memory while the file is
open; its byte size still participates in storage-size accounting and its
reads/writes are charged to the device under the ``"laf"`` I/O class so the
"extra IO to read a data page" the paper mentions is visible in the stats.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..errors import StorageError

_ENTRY = struct.Struct("<QI")  # offset: u64, length: u32  -> 12 bytes
ENTRY_SIZE = _ENTRY.size


class LookAsideFile:
    """In-memory representation of one file's LAF."""

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add_entry(self, page_no: int, offset: int, length: int) -> None:
        """Record the location of logical page ``page_no``.

        LSM components are written strictly sequentially, so entries are
        appended in page order; rewriting an existing entry is allowed (the
        metadata page of a component is rewritten when it is validated).
        """
        if page_no < 0:
            raise StorageError("page_no must be non-negative")
        if page_no == len(self._entries):
            self._entries.append((offset, length))
        elif page_no < len(self._entries):
            self._entries[page_no] = (offset, length)
        else:
            raise StorageError(
                f"LAF entries must be appended in order (page {page_no}, have {len(self._entries)})"
            )

    def entry(self, page_no: int) -> Tuple[int, int]:
        """Return ``(offset, length)`` of a logical page."""
        if page_no < 0 or page_no >= len(self._entries):
            raise StorageError(f"LAF has no entry for page {page_no}")
        return self._entries[page_no]

    @property
    def size_bytes(self) -> int:
        """Serialized size of the LAF (counted toward on-disk storage size)."""
        return 4 + ENTRY_SIZE * len(self._entries)

    def end_offset(self) -> int:
        """Offset one past the last stored page (append position)."""
        if not self._entries:
            return 0
        offset, length = self._entries[-1]
        return offset + length

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        parts = [struct.pack("<I", len(self._entries))]
        parts.extend(_ENTRY.pack(offset, length) for offset, length in self._entries)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "LookAsideFile":
        laf = cls()
        if len(payload) < 4:
            raise StorageError("LAF payload too short")
        (count,) = struct.unpack_from("<I", payload, 0)
        cursor = 4
        for page_no in range(count):
            offset, length = _ENTRY.unpack_from(payload, cursor)
            cursor += ENTRY_SIZE
            laf.add_entry(page_no, offset, length)
        return laf
