"""File manager: named page files, optionally compressed via LAFs.

A *page file* is a named sequence of fixed-size logical pages.  LSM
components write their pages strictly sequentially (flush, merge, and
bulk-load all produce components front to back), which keeps the compressed
representation simple: compressed payloads are appended back-to-back and the
:class:`~repro.storage.laf.LookAsideFile` maps logical page numbers to
``(offset, length)`` pairs, exactly as described in paper §2.4.

Two backends are provided:

* :class:`FileManager` — pages live in real files under a base directory
  (one data file plus one ``.laf`` file per page file when compressed);
* :class:`InMemoryFileManager` — pages live in process memory.  Benchmarks
  default to this backend so that measured times reflect the engine's CPU
  work and the *simulated* device model, not the test machine's disk.

Both backends charge every physical read/write to the
:class:`~repro.storage.device.SimulatedStorageDevice` they are given.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import CorruptPageError, PageNotFoundError, StorageError
from ..faults import corrupt_payload, fire_fault
from .compression import Codec, NoneCodec, compress_page
from .device import SimulatedStorageDevice
from .laf import LookAsideFile


class _PageFileState:
    """Book-keeping shared by both backends for one open page file."""

    __slots__ = ("name", "laf", "page_count", "uncompressed_bytes", "stored_bytes",
                 "checksums")

    def __init__(self, name: str) -> None:
        self.name = name
        self.laf = LookAsideFile()
        self.page_count = 0
        self.uncompressed_bytes = 0
        self.stored_bytes = 0
        #: CRC32 of each logical (uncompressed) page, keyed by page number;
        #: verified on every read so bit rot and torn writes surface as
        #: CorruptPageError instead of decoded garbage.
        self.checksums: Dict[int, int] = {}


class BaseFileManager:
    """Common behaviour of the two backends."""

    def __init__(self, device: SimulatedStorageDevice, page_size: int,
                 codec: Optional[Codec] = None) -> None:
        self.device = device
        self.page_size = page_size
        self.codec = codec or NoneCodec()
        self._files: Dict[str, _PageFileState] = {}
        self._page_checksum_failures = device.metrics.counter(
            "checksum_failures_total", kind="page")

    # -- file lifecycle -----------------------------------------------------------

    def create_file(self, name: str) -> None:
        if name in self._files:
            raise StorageError(f"page file {name!r} already exists")
        self._files[name] = _PageFileState(name)
        self._backend_create(name)

    def delete_file(self, name: str) -> None:
        if name not in self._files:
            return
        del self._files[name]
        self._backend_delete(name)

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def num_pages(self, name: str) -> int:
        return self._state(name).page_count

    def _state(self, name: str) -> _PageFileState:
        try:
            return self._files[name]
        except KeyError as exc:
            raise StorageError(f"unknown page file {name!r}") from exc

    # -- page I/O --------------------------------------------------------------------

    def write_page(self, name: str, page_no: int, data: bytes) -> None:
        """Write one logical page (must be exactly ``page_size`` bytes)."""
        fire_fault("file.write_page")
        if len(data) != self.page_size:
            raise StorageError(
                f"page writes must be exactly {self.page_size} bytes, got {len(data)}"
            )
        state = self._state(name)
        if page_no > state.page_count:
            raise StorageError(
                f"pages must be written sequentially (page {page_no}, have {state.page_count})"
            )
        payload, compressed = compress_page(self.codec, data)
        if page_no == state.page_count:
            offset = state.laf.end_offset()
            state.laf.add_entry(page_no, offset, len(payload))
            state.page_count += 1
            state.uncompressed_bytes += self.page_size
            state.stored_bytes += len(payload)
        else:
            # Rewrite of an existing page (component metadata page validation).
            old_offset, old_length = state.laf.entry(page_no)
            if len(payload) > old_length:
                # Pad the logical page's slot is impossible for a longer payload;
                # fall back to storing it uncompressed-size at a new offset only
                # when it still fits the original slot.  Metadata pages compress
                # deterministically, so in practice rewrites fit; guard anyway.
                payload = data
                compressed = False
                if len(payload) > old_length and old_length != self.page_size:
                    raise StorageError(
                        f"rewritten page {page_no} of {name!r} does not fit its slot"
                    )
            state.stored_bytes += len(payload) - old_length
            state.laf.add_entry(page_no, old_offset, len(payload))
            offset = old_offset
        state.checksums[page_no] = zlib.crc32(data)
        self._backend_write(name, offset, payload)
        self.device.record_write(len(payload), io_class="data")
        if not isinstance(self.codec, NoneCodec):
            # The LAF entry itself is eventually persisted; charge its bytes.
            self.device.record_write(12, io_class="laf")

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read one logical page, decompressing if needed."""
        state = self._state(name)
        if page_no < 0 or page_no >= state.page_count:
            raise PageNotFoundError(f"page {page_no} of {name!r} does not exist")
        offset, length = state.laf.entry(page_no)
        if not isinstance(self.codec, NoneCodec):
            self.device.record_read(12, io_class="laf")
        payload = self._backend_read(name, offset, length)
        self.device.record_read(length, io_class="data")
        if length == self.page_size:
            page = payload
        else:
            try:
                page = self.codec.decompress(payload, self.page_size)
            except Exception as exc:
                self._page_checksum_failures.inc()
                raise CorruptPageError(
                    f"page {page_no} of {name!r} failed to decompress: {exc}") from exc
        # Fault injection corrupts the logical page *before* verification so
        # the checksum path is exactly the one real bit rot would take.
        page = corrupt_payload("file.read_page", page)
        expected = state.checksums.get(page_no)
        if expected is not None and zlib.crc32(page) != expected:
            self._page_checksum_failures.inc()
            raise CorruptPageError(
                f"page {page_no} of {name!r} failed its CRC32 check")
        return page

    # -- sizes -----------------------------------------------------------------------

    def file_size(self, name: str) -> int:
        """On-disk size of a page file, including its LAF when compressed."""
        state = self._state(name)
        if isinstance(self.codec, NoneCodec):
            return state.stored_bytes
        return state.stored_bytes + state.laf.size_bytes

    def total_size(self, names: Optional[Iterable[str]] = None) -> int:
        selected = self.list_files() if names is None else list(names)
        return sum(self.file_size(name) for name in selected if name in self._files)

    # -- backend hooks -----------------------------------------------------------------

    def _backend_create(self, name: str) -> None:
        raise NotImplementedError

    def _backend_delete(self, name: str) -> None:
        raise NotImplementedError

    def _backend_write(self, name: str, offset: int, payload: bytes) -> None:
        raise NotImplementedError

    def _backend_read(self, name: str, offset: int, length: int) -> bytes:
        raise NotImplementedError


class InMemoryFileManager(BaseFileManager):
    """Backend keeping page payloads in process memory (default for benches)."""

    def __init__(self, device: SimulatedStorageDevice, page_size: int,
                 codec: Optional[Codec] = None) -> None:
        super().__init__(device, page_size, codec)
        self._blobs: Dict[str, bytearray] = {}

    def _backend_create(self, name: str) -> None:
        self._blobs[name] = bytearray()

    def _backend_delete(self, name: str) -> None:
        self._blobs.pop(name, None)

    def _backend_write(self, name: str, offset: int, payload: bytes) -> None:
        blob = self._blobs[name]
        end = offset + len(payload)
        if len(blob) < end:
            blob.extend(b"\x00" * (end - len(blob)))
        blob[offset:end] = payload

    def _backend_read(self, name: str, offset: int, length: int) -> bytes:
        blob = self._blobs[name]
        if offset + length > len(blob):
            raise PageNotFoundError(f"read past end of {name!r}")
        return bytes(blob[offset:offset + length])


class FileManager(BaseFileManager):
    """Backend persisting page payloads in real files under ``base_dir``."""

    def __init__(self, base_dir: str, device: SimulatedStorageDevice, page_size: int,
                 codec: Optional[Codec] = None) -> None:
        super().__init__(device, page_size, codec)
        self.base_dir = base_dir
        os.makedirs(base_dir, exist_ok=True)

    def _path(self, name: str) -> str:
        safe = name.replace("/", "_")
        return os.path.join(self.base_dir, safe)

    def _backend_create(self, name: str) -> None:
        with open(self._path(name), "wb"):
            pass

    def _backend_delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def _backend_write(self, name: str, offset: int, payload: bytes) -> None:
        with open(self._path(name), "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < offset:
                handle.write(b"\x00" * (offset - size))
            handle.seek(offset)
            handle.write(payload)

    def _backend_read(self, name: str, offset: int, length: int) -> bytes:
        with open(self._path(name), "rb") as handle:
            handle.seek(offset)
            payload = handle.read(length)
        if len(payload) != length:
            raise PageNotFoundError(f"short read from {name!r}")
        return payload

    def close(self) -> None:
        """Persist LAFs next to their data files (crash-recovery friendly)."""
        for name, state in self._files.items():
            if not isinstance(self.codec, NoneCodec):
                with open(self._path(name) + ".laf", "wb") as handle:
                    handle.write(state.laf.to_bytes())
