"""Simulated storage devices with the paper's bandwidth/latency profiles.

The paper's experiments run on a SATA SSD (550/520 MB/s sequential
read/write) and an NVMe SSD (3400/2500 MB/s).  Re-running them on arbitrary
hardware would entangle the results with whatever disk happens to be under
the Python interpreter, so instead every byte that crosses the buffer-cache
boundary is *accounted* against a :class:`SimulatedStorageDevice`, and the
benchmarks report the resulting simulated I/O time next to the measured CPU
time.  The I/O-bound vs CPU-bound crossovers the paper observes (SATA
queries track storage size; NVMe queries expose CPU cost) emerge from the
same arithmetic.

Devices are shared by every partition living in one storage environment, so
with the parallel query executor multiple worker threads charge I/O
concurrently.  Two mechanisms support that:

* the global counters are guarded by a lock, and
* :meth:`SimulatedStorageDevice.accounting_scope` opens a *thread-local*
  scope that additionally accumulates every operation recorded from the
  current thread.  The executor wraps each partition pipeline in a scope,
  giving exact per-partition byte counts without racy snapshot/diff windows.

``throttle`` optionally turns the simulated cost of each operation into a
real ``time.sleep`` (scaled by the throttle factor).  It exists so tests and
benchmarks can observe genuine wall-clock overlap when partitions execute in
parallel — sleeping releases the GIL, exactly like real device waits would.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..config import DEVICE_PROFILES, DeviceKind
from ..faults import fire_fault
from ..obs import MetricsRegistry, StatsDictMixin, get_registry


@dataclass
class IOStats(StatsDictMixin):
    """Cumulative I/O counters of one device (or one component of it)."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0

    def add_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1

    def add_write(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1

    def merged_with(self, other: "IOStats") -> "IOStats":
        return IOStats(
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            read_ops=self.read_ops + other.read_ops,
            write_ops=self.write_ops + other.write_ops,
        )

    def copy(self) -> "IOStats":
        return IOStats(self.bytes_read, self.bytes_written, self.read_ops, self.write_ops)

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier snapshot."""
        return IOStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
        )


class SimulatedStorageDevice:
    """Accounts I/O volume and converts it into simulated seconds.

    The device does not store any data itself — files live in the
    :mod:`repro.storage.file_manager` — it only observes traffic.  Separate
    traffic classes (data, log, look-aside file) are tracked so experiments
    can attribute costs the way the paper discusses them (e.g. "ingestion
    was bottlenecked by flushing transaction log records").

    Thread-safe: counters are locked, and per-thread accounting scopes let
    concurrent partition pipelines keep exact private byte counts.
    """

    def __init__(self, kind: DeviceKind = DeviceKind.NVME_SSD, throttle: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.kind = kind
        profile = DEVICE_PROFILES[kind]
        self.read_bandwidth = profile["read_bandwidth"]
        self.write_bandwidth = profile["write_bandwidth"]
        self.seek_latency = profile["seek_latency"]
        self.stats = IOStats()
        self.per_class: Dict[str, IOStats] = {}
        #: Fraction of each operation's simulated seconds to actually sleep
        #: (0.0 = pure accounting; >1.0 stretches device time for tests that
        #: must observe wall-clock overlap).  Mutable at any time.
        self.throttle = throttle
        self._lock = threading.Lock()
        self._local = threading.local()
        self.metrics = metrics if metrics is not None else get_registry()
        # Counter handles resolved once per io_class: the metrics registry's
        # get-or-create does a dict lookup under a lock, which is too much
        # for the per-page hot path; incrementing a resolved handle is one
        # cheap per-instrument lock.
        self._metric_handles: Dict[str, Tuple] = {}

    def _metrics_for(self, io_class: str) -> Tuple:
        handles = self._metric_handles.get(io_class)
        if handles is None:
            handles = (
                self.metrics.counter("device_bytes_read", io_class=io_class),
                self.metrics.counter("device_read_ops", io_class=io_class),
                self.metrics.counter("device_bytes_written", io_class=io_class),
                self.metrics.counter("device_write_ops", io_class=io_class),
            )
            self._metric_handles[io_class] = handles
        return handles

    # -- recording -------------------------------------------------------------

    def record_read(self, nbytes: int, io_class: str = "data") -> None:
        # Fault check precedes all accounting so an injected failure models
        # an operation that never reached the device (nothing half-charged).
        fire_fault("device.read")
        io_class = self._effective_class(io_class)
        with self._lock:
            self.stats.add_read(nbytes)
            self._class_stats(io_class).add_read(nbytes)
        read_bytes, read_ops, _, _ = self._metrics_for(io_class)
        read_bytes.inc(nbytes)
        read_ops.inc()
        for scope in getattr(self._local, "scopes", ()):
            scope.add_read(nbytes)
        if self.throttle > 0.0:
            time.sleep((nbytes / self.read_bandwidth + self.seek_latency) * self.throttle)

    def record_write(self, nbytes: int, io_class: str = "data") -> None:
        fire_fault("device.write")
        io_class = self._effective_class(io_class)
        with self._lock:
            self.stats.add_write(nbytes)
            self._class_stats(io_class).add_write(nbytes)
        _, _, write_bytes, write_ops = self._metrics_for(io_class)
        write_bytes.inc(nbytes)
        write_ops.inc()
        for scope in getattr(self._local, "scopes", ()):
            scope.add_write(nbytes)
        if self.throttle > 0.0:
            time.sleep((nbytes / self.write_bandwidth + self.seek_latency) * self.throttle)

    def _class_stats(self, io_class: str) -> IOStats:
        if io_class not in self.per_class:
            self.per_class[io_class] = IOStats()
        return self.per_class[io_class]

    def _effective_class(self, io_class: str) -> str:
        return getattr(self._local, "io_class", None) or io_class

    @contextmanager
    def io_class_scope(self, io_class: str) -> Iterator[None]:
        """Re-tag every operation recorded *from this thread* while open.

        Background flush/merge workers wrap their work in
        ``io_class_scope("maintenance")`` so the device's per-class counters
        separate maintenance traffic from the foreground "data"/"log"
        classes — the accounting views that let benchmarks report how much
        device time the asynchronous LSM lifecycle moved off the ingest
        path.  Scopes are thread-local and restore the previous tag on exit,
        so nesting works and concurrent workers never see each other's tag.
        """
        previous = getattr(self._local, "io_class", None)
        self._local.io_class = io_class
        try:
            yield
        finally:
            self._local.io_class = previous

    @contextmanager
    def accounting_scope(self) -> Iterator[IOStats]:
        """Collect every operation recorded *from this thread* while open.

        Scopes nest, and each thread sees only its own stack, so concurrent
        partition workers get precise private counters while the shared
        global counters keep accumulating under the lock.
        """
        scope = IOStats()
        stack = getattr(self._local, "scopes", None)
        if stack is None:
            stack = []
            self._local.scopes = stack
        stack.append(scope)
        try:
            yield scope
        finally:
            # Pop by position, not list.remove(): IOStats compares by value,
            # so remove() could pop a different (equal-counter) nested scope.
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is scope:
                    del stack[index]
                    break

    # -- simulated time ----------------------------------------------------------

    def simulated_seconds(self, stats: IOStats = None) -> float:
        """Convert I/O counters into seconds on this device."""
        if stats is None:
            stats = self.stats
        read_time = stats.bytes_read / self.read_bandwidth + stats.read_ops * self.seek_latency
        write_time = stats.bytes_written / self.write_bandwidth + stats.write_ops * self.seek_latency
        return read_time + write_time

    @property
    def simulated_read_seconds(self) -> float:
        return self.stats.bytes_read / self.read_bandwidth + self.stats.read_ops * self.seek_latency

    @property
    def simulated_write_seconds(self) -> float:
        return self.stats.bytes_written / self.write_bandwidth + self.stats.write_ops * self.seek_latency

    # -- bookkeeping ----------------------------------------------------------------

    def snapshot(self) -> IOStats:
        """Copy of the current counters (use with :meth:`IOStats.diff`)."""
        with self._lock:
            return self.stats.copy()

    def reset(self) -> None:
        with self._lock:
            self.stats = IOStats()
            self.per_class = {}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulatedStorageDevice({self.kind.value}, read={self.stats.bytes_read}B, "
            f"written={self.stats.bytes_written}B)"
        )
