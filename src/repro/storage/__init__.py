"""Storage substrate: devices, page files, buffer cache, compression, WAL."""

from .buffer_cache import BufferCache, CacheStats
from .compression import Codec, NoneCodec, ZlibCodec, compress_page, get_codec, register_codec
from .device import IOStats, SimulatedStorageDevice
from .file_manager import BaseFileManager, FileManager, InMemoryFileManager
from .laf import ENTRY_SIZE as LAF_ENTRY_SIZE
from .laf import LookAsideFile
from .wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "BufferCache",
    "CacheStats",
    "Codec",
    "NoneCodec",
    "ZlibCodec",
    "compress_page",
    "get_codec",
    "register_codec",
    "IOStats",
    "SimulatedStorageDevice",
    "BaseFileManager",
    "FileManager",
    "InMemoryFileManager",
    "LookAsideFile",
    "LAF_ENTRY_SIZE",
    "LogRecord",
    "LogRecordType",
    "WriteAheadLog",
]
