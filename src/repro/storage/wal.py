"""Write-ahead log for the LSM primary index.

AsterixDB uses a no-steal/no-force buffer policy with write-ahead logging
(paper §2.2): every insert/delete/upsert appends a log record before it is
applied to the in-memory component, and the log for a flushed component can
be truncated once the component's validity bit is set.  The paper observes
that continuous data-feed ingestion is bottlenecked by flushing these log
records to the device — which is why the Twitter feed experiment shows
little difference between SATA and NVMe — so the log charges its writes to
the simulated device under a dedicated ``"log"`` I/O class.

The log itself is an in-memory list of :class:`LogRecord`; durability in a
real deployment would come from fsyncing an append-only file, but crash
recovery in this reproduction (see :mod:`repro.lsm.recovery`) replays the
in-memory records of the "surviving" log, which exercises the same control
flow.
"""

from __future__ import annotations

import enum
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from ..errors import WALError
from ..faults import corrupt_payload, fire_fault
from ..obs import MetricsRegistry, get_registry
from .device import SimulatedStorageDevice

#: Fixed per-record header overhead charged to the device (type, LSN, sizes).
_LOG_HEADER_BYTES = 28


def _record_crc(record_type: "LogRecordType", dataset: str, partition: int,
                key: Any, payload: Optional[bytes]) -> int:
    """CRC32 over a record's logical content (LSN excluded, so the checksum
    can be computed before the log lock assigns one)."""
    crc = zlib.crc32(record_type.value.encode("utf-8"))
    crc = zlib.crc32(dataset.encode("utf-8"), crc)
    crc = zlib.crc32(str(partition).encode("utf-8"), crc)
    crc = zlib.crc32(repr(key).encode("utf-8"), crc)
    if payload is not None:
        crc = zlib.crc32(payload, crc)
    return crc


class LogRecordType(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    UPSERT = "upsert"
    FLUSH_START = "flush-start"
    FLUSH_END = "flush-end"


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    record_type: LogRecordType
    dataset: str
    partition: int
    key: Any = None
    payload: Optional[bytes] = None
    #: CRC32 of the logical content at append time; a mismatch later marks
    #: the record as torn (see :meth:`WriteAheadLog.drop_torn_tail`).
    crc: int = 0

    def content_crc(self) -> int:
        """Recompute the CRC32 of the record's current content."""
        return _record_crc(self.record_type, self.dataset, self.partition,
                           self.key, self.payload)

    @property
    def size_bytes(self) -> int:
        payload_size = len(self.payload) if self.payload is not None else 0
        key_size = len(str(self.key)) if self.key is not None else 0
        return _LOG_HEADER_BYTES + key_size + payload_size


class WriteAheadLog:
    """Append-only log shared by all partitions of one node."""

    def __init__(self, device: Optional[SimulatedStorageDevice] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.device = device
        self._records: List[LogRecord] = []  # guarded-by: _lock
        self._next_lsn = 1  # guarded-by: _lock
        self._truncated_up_to = 0  # guarded-by: _lock
        self.bytes_written = 0  # guarded-by: _lock
        metrics = metrics if metrics is not None else get_registry()
        self._appends_metric = metrics.counter("wal_records_appended")
        self._bytes_metric = metrics.counter("wal_bytes_written")
        self._wal_checksum_failures = metrics.counter(
            "checksum_failures_total", kind="wal")
        # Background LSM maintenance appends FLUSH markers and truncates from
        # flush-worker threads while partition writers keep appending: LSN
        # assignment and the record list are guarded so no record is lost and
        # no LSN is handed out twice.
        self._lock = threading.Lock()

    # -- appending ---------------------------------------------------------------

    def append(self, record_type: LogRecordType, dataset: str, partition: int,
               key: Any = None, payload: Optional[bytes] = None) -> LogRecord:
        # The CRC covers the *original* content, and fault injection runs
        # before anything mutates: a corrupt rule stores a record whose bytes
        # no longer match its CRC (a torn record for recovery to drop), and
        # an injected device/transient failure raises before the record is
        # logged, so a failed append leaves no trace.
        crc = _record_crc(record_type, dataset, partition, key, payload)
        if payload:
            payload = corrupt_payload("wal.append", payload)
        else:
            fire_fault("wal.append")
        record = LogRecord(0, record_type, dataset, partition, key, payload, crc)
        if self.device is not None:
            self.device.record_write(record.size_bytes, io_class="log")
        with self._lock:
            record.lsn = self._next_lsn
            self._next_lsn += 1
            self._records.append(record)
            self.bytes_written += record.size_bytes
        self._appends_metric.inc()
        self._bytes_metric.inc(record.size_bytes)
        return record

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def __len__(self) -> int:
        return len(self._records)

    # -- truncation -----------------------------------------------------------------

    def truncate(self, up_to_lsn: int) -> None:
        """Discard log records with ``lsn <= up_to_lsn`` (component flushed)."""
        fire_fault("wal.truncate")
        with self._lock:
            if up_to_lsn < self._truncated_up_to:
                raise WALError("cannot truncate backwards")
            self._records = [record for record in self._records if record.lsn > up_to_lsn]
            self._truncated_up_to = up_to_lsn

    def truncate_partition(self, dataset: str, partition: int, up_to_lsn: int) -> None:
        """Discard one partition's records with ``lsn <= up_to_lsn``.

        The log is shared by every partition of a node, so a flush may only
        retire *its own* partition's records: another partition's unflushed
        operations with smaller LSNs must survive for recovery.  This is the
        WAL half of the background-flush handoff — a sealed memtable records
        the last LSN it covers at seal time, and the flush that persists it
        truncates exactly that range once the component's footer (validity
        bit) is on disk.
        """
        def survives(record: LogRecord) -> bool:
            if record.dataset != dataset or record.partition != partition:
                return True
            if record.record_type in (LogRecordType.FLUSH_START, LogRecordType.FLUSH_END):
                return False  # markers are never replayed; drop them eagerly
            return record.lsn > up_to_lsn

        fire_fault("wal.truncate")
        with self._lock:
            self._records = [record for record in self._records if survives(record)]

    # -- recovery ----------------------------------------------------------------------

    def replay(self, dataset: Optional[str] = None,
               partition: Optional[int] = None) -> Iterator[LogRecord]:
        """Yield surviving log records in LSN order, optionally filtered.

        Iterates over a snapshot so that recovery — which appends new log
        records while re-applying the old ones — cannot chase its own tail.
        """
        with self._lock:
            snapshot = list(self._records)
        for record in snapshot:
            if dataset is not None and record.dataset != dataset:
                continue
            if partition is not None and record.partition != partition:
                continue
            if record.record_type in (LogRecordType.FLUSH_START, LogRecordType.FLUSH_END):
                continue
            yield record

    def drop_after(self, lsn: int) -> None:
        """Simulate losing the log tail in a crash (records with lsn > ``lsn``)."""
        with self._lock:
            self._records = [record for record in self._records if record.lsn <= lsn]

    def drop_torn_tail(self) -> int:
        """Truncate the log at the first record failing its CRC32 check.

        A real append-only log that loses power mid-write ends with a torn
        record; everything after it is unreadable garbage.  Recovery calls
        this before replaying: the log is scanned in LSN order and cut at the
        first mismatch.  Returns the number of records dropped.
        """
        with self._lock:
            dropped = 0
            for index, record in enumerate(self._records):
                if record.crc != record.content_crc():
                    dropped = len(self._records) - index
                    del self._records[index:]
                    break
        if dropped:
            self._wal_checksum_failures.inc(dropped)
        return dropped
