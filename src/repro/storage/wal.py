"""Write-ahead log for the LSM primary index.

AsterixDB uses a no-steal/no-force buffer policy with write-ahead logging
(paper §2.2): every insert/delete/upsert appends a log record before it is
applied to the in-memory component, and the log for a flushed component can
be truncated once the component's validity bit is set.  The paper observes
that continuous data-feed ingestion is bottlenecked by flushing these log
records to the device — which is why the Twitter feed experiment shows
little difference between SATA and NVMe — so the log charges its writes to
the simulated device under a dedicated ``"log"`` I/O class.

The log itself is an in-memory list of :class:`LogRecord`; durability in a
real deployment would come from fsyncing an append-only file, but crash
recovery in this reproduction (see :mod:`repro.lsm.recovery`) replays the
in-memory records of the "surviving" log, which exercises the same control
flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from ..errors import WALError
from .device import SimulatedStorageDevice

#: Fixed per-record header overhead charged to the device (type, LSN, sizes).
_LOG_HEADER_BYTES = 28


class LogRecordType(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    UPSERT = "upsert"
    FLUSH_START = "flush-start"
    FLUSH_END = "flush-end"


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    record_type: LogRecordType
    dataset: str
    partition: int
    key: Any = None
    payload: Optional[bytes] = None

    @property
    def size_bytes(self) -> int:
        payload_size = len(self.payload) if self.payload is not None else 0
        key_size = len(str(self.key)) if self.key is not None else 0
        return _LOG_HEADER_BYTES + key_size + payload_size


class WriteAheadLog:
    """Append-only log shared by all partitions of one node."""

    def __init__(self, device: Optional[SimulatedStorageDevice] = None) -> None:
        self.device = device
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._truncated_up_to = 0
        self.bytes_written = 0

    # -- appending ---------------------------------------------------------------

    def append(self, record_type: LogRecordType, dataset: str, partition: int,
               key: Any = None, payload: Optional[bytes] = None) -> LogRecord:
        record = LogRecord(self._next_lsn, record_type, dataset, partition, key, payload)
        self._next_lsn += 1
        self._records.append(record)
        self.bytes_written += record.size_bytes
        if self.device is not None:
            self.device.record_write(record.size_bytes, io_class="log")
        return record

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def __len__(self) -> int:
        return len(self._records)

    # -- truncation -----------------------------------------------------------------

    def truncate(self, up_to_lsn: int) -> None:
        """Discard log records with ``lsn <= up_to_lsn`` (component flushed)."""
        if up_to_lsn < self._truncated_up_to:
            raise WALError("cannot truncate backwards")
        self._records = [record for record in self._records if record.lsn > up_to_lsn]
        self._truncated_up_to = up_to_lsn

    # -- recovery ----------------------------------------------------------------------

    def replay(self, dataset: Optional[str] = None,
               partition: Optional[int] = None) -> Iterator[LogRecord]:
        """Yield surviving log records in LSN order, optionally filtered.

        Iterates over a snapshot so that recovery — which appends new log
        records while re-applying the old ones — cannot chase its own tail.
        """
        for record in list(self._records):
            if dataset is not None and record.dataset != dataset:
                continue
            if partition is not None and record.partition != partition:
                continue
            if record.record_type in (LogRecordType.FLUSH_START, LogRecordType.FLUSH_END):
                continue
            yield record

    def drop_after(self, lsn: int) -> None:
        """Simulate losing the log tail in a crash (records with lsn > ``lsn``)."""
        self._records = [record for record in self._records if record.lsn <= lsn]
