"""Thrift-like encoders: Binary Protocol (BP) and Compact Protocol (CP).

Both follow Apache Thrift's struct encoding: every present field is written
as a field header (type + numeric field id) followed by its value, and a
stop byte terminates the struct.  The Binary Protocol uses fixed-width
headers and integers (type: 1 byte, field id: 2 bytes, i64: 8 bytes,
string length: 4 bytes); the Compact Protocol packs the field-id delta and
type into one byte where possible and uses zig-zag varints for integers and
lengths — the reason Table 2 shows Thrift CP producing the smallest
encoding of the compared formats.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from ..errors import EncodingError
from ..types import ADate, ADateTime, AMultiset, APoint, ATime, Missing
from .schema_driven import FormatSchema, collection_items
from .varint import encode_varint, encode_zigzag_varint

# Thrift type ids (shared by both protocols for our purposes).
_T_BOOL = 2
_T_I64 = 10
_T_DOUBLE = 4
_T_STRING = 11
_T_STRUCT = 12
_T_LIST = 15
_T_STOP = 0


def _thrift_type(value: Any) -> int:
    if isinstance(value, bool):
        return _T_BOOL
    if isinstance(value, int) or isinstance(value, (ADate, ADateTime, ATime)):
        return _T_I64
    if isinstance(value, float):
        return _T_DOUBLE
    if isinstance(value, str):
        return _T_STRING
    if isinstance(value, dict) or isinstance(value, APoint):
        return _T_STRUCT
    if isinstance(value, (list, tuple, AMultiset)):
        return _T_LIST
    raise EncodingError(f"Thrift-like encoder cannot handle {type(value).__name__}")


def _as_int(value: Any) -> int:
    if isinstance(value, ADateTime):
        return value.millis_since_epoch
    if isinstance(value, ADate):
        return value.days_since_epoch
    if isinstance(value, ATime):
        return value.millis_since_midnight
    return value


class ThriftBinaryEncoder:
    """Thrift Binary Protocol (fixed-width headers and integers)."""

    name = "thrift-bp"

    def __init__(self, schema: FormatSchema) -> None:
        self.schema = schema

    def encode(self, record: Dict[str, Any]) -> bytes:
        return self._encode_struct("", record)

    def _encode_struct(self, path: str, record: Dict[str, Any]) -> bytes:
        out = bytearray()
        for name, field_id in self.schema.fields_of(path):
            value = record.get(name, None)
            if value is None or isinstance(value, Missing):
                continue
            out.append(_thrift_type(value))
            out += struct.pack(">h", field_id)
            out += self._encode_value(self.schema.child_path(path, name), value)
        out.append(_T_STOP)
        return bytes(out)

    def _encode_value(self, path: str, value: Any) -> bytes:
        if isinstance(value, bool):
            return b"\x01" if value else b"\x00"
        if isinstance(value, (int, ADate, ADateTime, ATime)):
            return struct.pack(">q", _as_int(value))
        if isinstance(value, float):
            return struct.pack(">d", value)
        if isinstance(value, str):
            payload = value.encode("utf-8")
            return struct.pack(">i", len(payload)) + payload
        if isinstance(value, APoint):
            return self._encode_struct(path, {"x": value.x, "y": value.y}) \
                if self.schema.fields_of(path) else struct.pack(">dd", value.x, value.y)
        if isinstance(value, dict):
            return self._encode_struct(path, value)
        items = collection_items(value)
        item_type = _thrift_type(items[0]) if items else _T_I64
        out = bytearray([item_type])
        out += struct.pack(">i", len(items))
        item_path = self.schema.item_path(path)
        for item in items:
            out += self._encode_value(item_path, item)
        return bytes(out)


class ThriftCompactEncoder:
    """Thrift Compact Protocol (packed field headers, varint integers)."""

    name = "thrift-cp"

    def __init__(self, schema: FormatSchema) -> None:
        self.schema = schema

    def encode(self, record: Dict[str, Any]) -> bytes:
        return self._encode_struct("", record)

    def _encode_struct(self, path: str, record: Dict[str, Any]) -> bytes:
        out = bytearray()
        previous_id = 0
        for name, field_id in self.schema.fields_of(path):
            value = record.get(name, None)
            if value is None or isinstance(value, Missing):
                continue
            delta = field_id - previous_id
            compact_type = _thrift_type(value)
            if 1 <= delta <= 15:
                out.append((delta << 4) | (compact_type & 0x0F))
            else:
                out.append(compact_type & 0x0F)
                out += encode_zigzag_varint(field_id)
            previous_id = field_id
            out += self._encode_value(self.schema.child_path(path, name), value)
        out.append(_T_STOP)
        return bytes(out)

    def _encode_value(self, path: str, value: Any) -> bytes:
        if isinstance(value, bool):
            return b"\x01" if value else b"\x02"  # CP encodes booleans as 1/2
        if isinstance(value, (int, ADate, ADateTime, ATime)):
            return encode_zigzag_varint(_as_int(value))
        if isinstance(value, float):
            return struct.pack("<d", value)
        if isinstance(value, str):
            payload = value.encode("utf-8")
            return encode_varint(len(payload)) + payload
        if isinstance(value, APoint):
            return struct.pack("<dd", value.x, value.y)
        if isinstance(value, dict):
            return self._encode_struct(path, value)
        items = collection_items(value)
        item_type = _thrift_type(items[0]) if items else _T_I64
        out = bytearray()
        if len(items) < 15:
            out.append((len(items) << 4) | (item_type & 0x0F))
        else:
            out.append(0xF0 | (item_type & 0x0F))
            out += encode_varint(len(items))
        item_path = self.schema.item_path(path)
        for item in items:
            out += self._encode_value(item_path, item)
        return bytes(out)
