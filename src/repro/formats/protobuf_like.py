"""Protocol-Buffers-like encoder (tag/wire-type keys, length-delimited messages).

Follows the proto3 wire format: every present field is written as a key
varint ``(field_number << 3) | wire_type`` followed by its value; integers
are varints, doubles are fixed 64-bit, strings and nested messages are
length-delimited, and repeated fields simply repeat their key.  Nested
messages must be length-prefixed, which forces the encoder to serialize
children into their own buffers before writing the parent — the same
copy-heavy construction pattern that makes Protobuf the slowest format to
*construct* in the paper's Table 2.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from ..errors import EncodingError
from ..types import ADate, ADateTime, AMultiset, APoint, ATime, Missing
from .schema_driven import FormatSchema, collection_items
from .varint import encode_varint, zigzag

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_LENGTH_DELIMITED = 2


def _key(field_number: int, wire_type: int) -> bytes:
    return encode_varint((field_number << 3) | wire_type)


def _as_int(value: Any) -> int:
    if isinstance(value, ADateTime):
        return value.millis_since_epoch
    if isinstance(value, ADate):
        return value.days_since_epoch
    if isinstance(value, ATime):
        return value.millis_since_midnight
    return value


class ProtobufLikeEncoder:
    """Encodes records against a :class:`FormatSchema` in proto3 wire format."""

    name = "protobuf"

    def __init__(self, schema: FormatSchema) -> None:
        self.schema = schema

    def encode(self, record: Dict[str, Any]) -> bytes:
        return self._encode_message("", record)

    def _encode_message(self, path: str, record: Dict[str, Any]) -> bytes:
        out = bytearray()
        for name, field_id in self.schema.fields_of(path):
            value = record.get(name, None)
            if value is None or isinstance(value, Missing):
                continue
            out += self._encode_field(self.schema.child_path(path, name), field_id, value)
        return bytes(out)

    def _encode_field(self, path: str, field_id: int, value: Any) -> bytes:
        if isinstance(value, bool):
            return _key(field_id, _WIRE_VARINT) + (b"\x01" if value else b"\x00")
        if isinstance(value, (int, ADate, ADateTime, ATime)):
            return _key(field_id, _WIRE_VARINT) + encode_varint(zigzag(_as_int(value)))
        if isinstance(value, float):
            return _key(field_id, _WIRE_FIXED64) + struct.pack("<d", value)
        if isinstance(value, str):
            payload = value.encode("utf-8")
            return _key(field_id, _WIRE_LENGTH_DELIMITED) + encode_varint(len(payload)) + payload
        if isinstance(value, APoint):
            nested = struct.pack("<d", value.x) + struct.pack("<d", value.y)
            return _key(field_id, _WIRE_LENGTH_DELIMITED) + encode_varint(len(nested)) + nested
        if isinstance(value, dict):
            nested = self._encode_message(path, value)
            return _key(field_id, _WIRE_LENGTH_DELIMITED) + encode_varint(len(nested)) + nested
        if isinstance(value, (list, tuple, AMultiset)):
            out = bytearray()
            item_path = self.schema.item_path(path)
            for item in collection_items(value):
                out += self._encode_field(item_path, field_id, item)
            return bytes(out)
        raise EncodingError(f"Protobuf-like encoder cannot handle {type(value).__name__}")
