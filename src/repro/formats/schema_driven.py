"""Shared machinery of the schema-driven comparison formats (Table 2).

Apache Avro, Apache Thrift, and Protocol Buffers all require a schema to
write a record: field names live in the schema, fields are identified by
position or numeric id, and optional/heterogeneous values go through
explicitly declared unions.  The paper's Table 2 compares the *encoded
size* and the *record-construction time* of those formats against the
vector-based format on a sample of tweets.

To feed the three encoders, :class:`FormatSchema` assigns stable numeric
field ids to every object field path seen in a sample of records (what a
user would do once, by hand, when writing an ``.avsc``/``.thrift``/
``.proto`` file).  The encoders then walk records value-by-value, looking
field ids up in this schema, so their output contains no field-name bytes —
only ids, tags, and values — while the self-describing formats (BSON, ADM
open, uncompacted vector-based) pay for names in every record.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from ..errors import EncodingError
from ..types import AMultiset, Missing

#: A path identifying one object context ("" for the root, "a.b" for nested).
ObjectPath = str


class FormatSchema:
    """Field-name -> numeric-id assignment per object path."""

    def __init__(self) -> None:
        self._fields: Dict[ObjectPath, Dict[str, int]] = {}

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "FormatSchema":
        schema = cls()
        for record in records:
            schema._observe_object("", record)
        return schema

    def _observe_object(self, path: ObjectPath, record: Dict[str, Any]) -> None:
        fields = self._fields.setdefault(path, {})
        for name, value in record.items():
            if isinstance(value, Missing):
                continue
            if name not in fields:
                fields[name] = len(fields) + 1
            self._observe_value(f"{path}.{name}" if path else name, value)

    def _observe_value(self, path: ObjectPath, value: Any) -> None:
        if isinstance(value, dict):
            self._observe_object(path, value)
        elif isinstance(value, (list, tuple, AMultiset)):
            items = value.items if isinstance(value, AMultiset) else value
            for item in items:
                self._observe_value(path + "[]", item)

    # -- lookups -----------------------------------------------------------------

    def field_id(self, path: ObjectPath, name: str) -> int:
        try:
            return self._fields[path][name]
        except KeyError as exc:
            raise EncodingError(
                f"field {name!r} at {path or '<root>'!r} is not part of the declared schema"
            ) from exc

    def fields_of(self, path: ObjectPath) -> List[Tuple[str, int]]:
        """Declared (name, id) pairs of an object path, in id order."""
        fields = self._fields.get(path, {})
        return sorted(fields.items(), key=lambda pair: pair[1])

    def child_path(self, path: ObjectPath, name: str) -> ObjectPath:
        return f"{path}.{name}" if path else name

    @staticmethod
    def item_path(path: ObjectPath) -> ObjectPath:
        return path + "[]"

    def object_count(self) -> int:
        return len(self._fields)


def collection_items(value: Any) -> List[Any]:
    if isinstance(value, AMultiset):
        return list(value.items)
    return list(value)
