"""Varint / zig-zag primitives shared by the Avro-, Thrift- and Protobuf-like
encoders used in the Table 2 comparison."""

from __future__ import annotations

from typing import Tuple


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("encode_varint expects a non-negative integer")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(payload: bytes, offset: int = 0) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed integer onto an unsigned one (Avro/Thrift-CP/Protobuf sint)."""
    return (value << 1) ^ (value >> 63)


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_zigzag_varint(value: int) -> bytes:
    return encode_varint(zigzag(value))


def decode_zigzag_varint(payload: bytes, offset: int = 0) -> Tuple[int, int]:
    raw, offset = decode_varint(payload, offset)
    return unzigzag(raw), offset
