"""Avro-like binary encoder (schema-driven, no per-record metadata).

Follows the Apache Avro binary encoding rules for the types the datasets
use: zig-zag varint integers, length-prefixed UTF-8 strings, IEEE-754
little-endian doubles, one-byte booleans, arrays as a varint item count
followed by the items and a zero terminator, and records as their fields in
schema order.  Every record field is treated as the union
``[null, <type>]`` — the idiomatic way to declare optional fields in Avro —
so each present field costs one extra varint for the union branch and each
absent field costs exactly one byte.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from ..errors import EncodingError
from ..types import ADate, ADateTime, AMultiset, APoint, ATime, Missing
from .schema_driven import FormatSchema, collection_items
from .varint import encode_varint, encode_zigzag_varint

_NULL_BRANCH = encode_varint(0)
_VALUE_BRANCH = encode_varint(1)


class AvroLikeEncoder:
    """Encodes records against a :class:`FormatSchema`."""

    name = "avro"

    def __init__(self, schema: FormatSchema) -> None:
        self.schema = schema

    def encode(self, record: Dict[str, Any]) -> bytes:
        return self._encode_record("", record)

    def _encode_record(self, path: str, record: Dict[str, Any]) -> bytes:
        out = bytearray()
        for name, _field_id in self.schema.fields_of(path):
            value = record.get(name, None)
            if value is None or isinstance(value, Missing):
                out += _NULL_BRANCH
                continue
            out += _VALUE_BRANCH
            out += self._encode_value(self.schema.child_path(path, name), value)
        return bytes(out)

    def _encode_value(self, path: str, value: Any) -> bytes:
        if isinstance(value, bool):
            return b"\x01" if value else b"\x00"
        if isinstance(value, int):
            return encode_zigzag_varint(value)
        if isinstance(value, float):
            return struct.pack("<d", value)
        if isinstance(value, str):
            payload = value.encode("utf-8")
            return encode_varint(len(payload)) + payload
        if isinstance(value, dict):
            return self._encode_record(path, value)
        if isinstance(value, (list, tuple, AMultiset)):
            items = collection_items(value)
            out = bytearray()
            if items:
                out += encode_zigzag_varint(len(items))
                item_path = self.schema.item_path(path)
                for item in items:
                    out += self._encode_value(item_path, item)
            out += encode_varint(0)  # end of blocks
            return bytes(out)
        if isinstance(value, ADateTime):
            return encode_zigzag_varint(value.millis_since_epoch)
        if isinstance(value, ADate):
            return encode_zigzag_varint(value.days_since_epoch)
        if isinstance(value, ATime):
            return encode_zigzag_varint(value.millis_since_midnight)
        if isinstance(value, APoint):
            return struct.pack("<dd", value.x, value.y)
        raise EncodingError(f"Avro-like encoder cannot handle {type(value).__name__}")
