"""BSON-like self-describing encoder (the MongoDB storage baseline).

The paper compares AsterixDB's compressed *open* storage size with
MongoDB's compressed collection size to show they are comparable (§4.2).
MongoDB stores documents in BSON, so this module implements the relevant
subset of the BSON wire format — enough to measure how many bytes a
document-per-document, self-describing store needs for the same records.
Like real BSON it stores every field name inline, every element with a type
byte, and arrays as documents with stringified integer keys; that is the
metadata overhead page-level compression then squeezes back out.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

from ..errors import EncodingError
from ..types import ADate, ADateTime, AMultiset, APoint, ATime, Missing

_DOUBLE = 0x01
_STRING = 0x02
_DOCUMENT = 0x03
_ARRAY = 0x04
_BOOLEAN = 0x08
_DATETIME = 0x09
_NULL = 0x0A
_INT32 = 0x10
_INT64 = 0x12


def encode_document(document: Dict[str, Any]) -> bytes:
    """Encode a dict into BSON-like bytes."""
    body = bytearray()
    for name, value in document.items():
        if isinstance(value, Missing):
            continue
        body += _encode_element(name, value)
    # int32 total length + body + trailing NUL, exactly like BSON.
    return struct.pack("<i", len(body) + 5) + bytes(body) + b"\x00"


def _cstring(text: str) -> bytes:
    return text.encode("utf-8") + b"\x00"


def _encode_element(name: str, value: Any) -> bytes:
    if value is None:
        return bytes([_NULL]) + _cstring(name)
    if isinstance(value, bool):
        return bytes([_BOOLEAN]) + _cstring(name) + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        if -(2 ** 31) <= value < 2 ** 31:
            return bytes([_INT32]) + _cstring(name) + struct.pack("<i", value)
        return bytes([_INT64]) + _cstring(name) + struct.pack("<q", value)
    if isinstance(value, float):
        return bytes([_DOUBLE]) + _cstring(name) + struct.pack("<d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8") + b"\x00"
        return bytes([_STRING]) + _cstring(name) + struct.pack("<i", len(payload)) + payload
    if isinstance(value, dict):
        return bytes([_DOCUMENT]) + _cstring(name) + encode_document(value)
    if isinstance(value, (list, tuple, AMultiset)):
        items = value.items if isinstance(value, AMultiset) else value
        as_document = {str(index): item for index, item in enumerate(items)}
        return bytes([_ARRAY]) + _cstring(name) + encode_document(as_document)
    if isinstance(value, ADateTime):
        return bytes([_DATETIME]) + _cstring(name) + struct.pack("<q", value.millis_since_epoch)
    if isinstance(value, ADate):
        millis = value.days_since_epoch * 24 * 60 * 60 * 1000
        return bytes([_DATETIME]) + _cstring(name) + struct.pack("<q", millis)
    if isinstance(value, ATime):
        return bytes([_DATETIME]) + _cstring(name) + struct.pack("<q", value.millis_since_midnight)
    if isinstance(value, APoint):
        return _encode_element(name, {"x": value.x, "y": value.y})
    raise EncodingError(f"BSON-like encoder cannot handle {type(value).__name__}")


def decode_document(payload: bytes, offset: int = 0) -> Tuple[Dict[str, Any], int]:
    """Decode a BSON-like document (for round-trip tests)."""
    (length,) = struct.unpack_from("<i", payload, offset)
    end = offset + length - 1  # trailing NUL
    cursor = offset + 4
    document: Dict[str, Any] = {}
    while cursor < end:
        element_type = payload[cursor]
        cursor += 1
        name_end = payload.index(b"\x00", cursor)
        name = payload[cursor:name_end].decode("utf-8")
        cursor = name_end + 1
        value, cursor = _decode_value(element_type, payload, cursor)
        document[name] = value
    return document, end + 1


def _decode_value(element_type: int, payload: bytes, cursor: int) -> Tuple[Any, int]:
    if element_type == _NULL:
        return None, cursor
    if element_type == _BOOLEAN:
        return payload[cursor] == 1, cursor + 1
    if element_type == _INT32:
        return struct.unpack_from("<i", payload, cursor)[0], cursor + 4
    if element_type in (_INT64, _DATETIME):
        return struct.unpack_from("<q", payload, cursor)[0], cursor + 8
    if element_type == _DOUBLE:
        return struct.unpack_from("<d", payload, cursor)[0], cursor + 8
    if element_type == _STRING:
        (length,) = struct.unpack_from("<i", payload, cursor)
        start = cursor + 4
        return payload[start:start + length - 1].decode("utf-8"), start + length
    if element_type == _DOCUMENT:
        return decode_document(payload, cursor)
    if element_type == _ARRAY:
        document, cursor = decode_document(payload, cursor)
        return [document[key] for key in sorted(document, key=int)], cursor
    raise EncodingError(f"unknown BSON element type 0x{element_type:02x}")
