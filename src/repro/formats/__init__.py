"""Comparison record formats (paper Table 2 + the MongoDB/BSON baseline)."""

from .avro_like import AvroLikeEncoder
from .bson_like import decode_document, encode_document
from .protobuf_like import ProtobufLikeEncoder
from .schema_driven import FormatSchema
from .thrift_like import ThriftBinaryEncoder, ThriftCompactEncoder

__all__ = [
    "FormatSchema",
    "AvroLikeEncoder",
    "ThriftBinaryEncoder",
    "ThriftCompactEncoder",
    "ProtobufLikeEncoder",
    "encode_document",
    "decode_document",
]
