"""Per-node storage environment: device, file manager, buffer cache, WAL.

In AsterixDB (paper Figure 3) each node controller owns a buffer cache, an
in-memory-component memory budget, and a transaction log that its data
partitions share, while each partition manages its own files on its own
storage device.  A :class:`StorageEnvironment` bundles exactly those per-node
resources so datasets and the cluster simulator can create partitions
against it without re-plumbing devices and caches everywhere.
"""

from __future__ import annotations

from typing import Optional

from ..cache import ColumnSliceCache
from ..config import DeviceKind, StorageConfig
from ..obs import MetricsRegistry, get_registry
from ..storage import (
    BufferCache,
    FileManager,
    InMemoryFileManager,
    SimulatedStorageDevice,
    WriteAheadLog,
    get_codec,
)


class StorageEnvironment:
    """Everything a node needs to host dataset partitions."""

    def __init__(self, storage_config: Optional[StorageConfig] = None,
                 base_dir: Optional[str] = None, node_id: int = 0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = storage_config or StorageConfig()
        self.node_id = node_id
        #: Metrics registry every component of this environment publishes
        #: into; defaults to the process-wide registry so cluster-level
        #: consumers see one coherent snapshot (pass a fresh registry for
        #: isolation in tests).
        self.metrics = metrics if metrics is not None else get_registry()
        self.device = SimulatedStorageDevice(self.config.device_kind,
                                             throttle=self.config.io_throttle,
                                             metrics=self.metrics)
        codec = get_codec(self.config.compression, self.config.compression_level)
        if base_dir is None:
            self.file_manager = InMemoryFileManager(self.device, self.config.page_size, codec)
        else:
            self.file_manager = FileManager(base_dir, self.device, self.config.page_size, codec)
        self.buffer_cache = BufferCache(self.file_manager, self.config.buffer_cache_pages,
                                        metrics=self.metrics)
        self.wal = WriteAheadLog(self.device, metrics=self.metrics)
        #: Decoded column-slice cache shared by this environment's datasets
        #: (budget from ``REPRO_COLUMN_CACHE_BYTES``; 0 disables it).  Sits
        #: above the buffer cache: warm scans skip page reads entirely, and
        #: the LSM component lifecycle invalidates entries eagerly.
        self.column_cache = ColumnSliceCache(metrics=self.metrics)

    # -- reporting -------------------------------------------------------------

    @property
    def compression_enabled(self) -> bool:
        return self.config.compression is not None

    def storage_size(self) -> int:
        """Total bytes stored across every file of this environment."""
        return self.file_manager.total_size()

    def simulated_io_seconds(self) -> float:
        return self.device.simulated_seconds()

    def reset_io_accounting(self) -> None:
        self.device.reset()

    def drop_caches(self) -> None:
        """Empty the buffer and column-slice caches (cold-start a query
        experiment: the next scan pays full page-read *and* decode cost)."""
        self.buffer_cache.clear()
        self.column_cache.clear()

    @classmethod
    def for_device(cls, device_kind: DeviceKind, compression: Optional[str] = None,
                   page_size: int = 16 * 1024, buffer_cache_pages: int = 4096,
                   node_id: int = 0) -> "StorageEnvironment":
        """Convenience factory used heavily by benchmarks and examples."""
        return cls(StorageConfig(page_size=page_size, buffer_cache_pages=buffer_cache_pages,
                                 device_kind=device_kind, compression=compression),
                   node_id=node_id)
