"""Core public API: datasets, partitions, the tuple compactor, record codecs."""

from .dataset import Dataset, PreparedStatement, hash_partition
from .environment import StorageEnvironment
from .formats import DictRecordView, RecordFormatCodec
from .partition import Partition
from .tuple_compactor import TupleCompactor

__all__ = [
    "Dataset",
    "PreparedStatement",
    "hash_partition",
    "StorageEnvironment",
    "Partition",
    "TupleCompactor",
    "RecordFormatCodec",
    "DictRecordView",
]
