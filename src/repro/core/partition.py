"""One data partition of a dataset: primary LSM index + record codec.

A partition owns its primary LSM B+-tree (and, through it, the per-component
primary-key and secondary indexes), encodes incoming records with the
dataset's record-format codec, and — when the dataset enables the tuple
compactor — hosts the partition-local :class:`~repro.core.TupleCompactor`
whose schema is entirely independent of other partitions' schemas
(paper §3.4.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import DatasetConfig
from ..lsm import LSMBTree, LSMIOScheduler, SecondaryIndexDef, make_merge_policy, recover_index
from ..lsm.lifecycle import FlushCallback
from ..schema import InferredSchema
from ..types import AMultiset, Datatype, Missing
from .environment import StorageEnvironment
from .formats import DictRecordView, RecordFormatCodec
from .tuple_compactor import TupleCompactor


def _indexable(value: Any) -> Any:
    """The value a secondary index stores for a field, or None to skip it.

    Absent (NULL/MISSING) and non-scalar values are not indexed — range
    predicates over them are never true, so skipping them is lossless.
    """
    if value is None or isinstance(value, Missing):
        return None
    if isinstance(value, (dict, list, tuple, AMultiset)):
        return None
    return value


class Partition:
    """A single hash-partition of a dataset on one node."""

    def __init__(self, config: DatasetConfig, partition_id: int,
                 environment: StorageEnvironment, datatype: Optional[Datatype],
                 scheduler: Optional[LSMIOScheduler] = None) -> None:
        self.config = config
        self.partition_id = partition_id
        self.environment = environment
        self.datatype = datatype
        self.codec = RecordFormatCodec(config.storage_format, datatype)
        if config.tuple_compactor_enabled:
            self.compactor: Optional[TupleCompactor] = TupleCompactor(datatype)
            callback: FlushCallback = self.compactor
        else:
            self.compactor = None
            callback = FlushCallback()
        merge_policy = make_merge_policy(
            config.lsm.merge_policy,
            config.lsm.max_mergable_component_size,
            config.lsm.max_tolerable_component_count,
        )
        self.index = LSMBTree(
            name=config.name,
            partition=partition_id,
            buffer_cache=environment.buffer_cache,
            memory_budget=config.lsm.memory_component_budget,
            merge_policy=merge_policy,
            flush_callback=callback,
            wal=environment.wal,
            maintain_primary_key_index=config.lsm.maintain_primary_key_index,
            scheduler=scheduler,
            max_sealed_memtables=config.lsm.max_sealed_memtables,
            max_merge_debt=config.lsm.max_merge_debt,
            metrics=environment.metrics,
            column_cache=environment.column_cache,
        )

    # ------------------------------------------------------------------ writes

    def _key_of(self, record: Dict[str, Any]) -> Any:
        try:
            return record[self.config.primary_key]
        except KeyError as exc:
            raise KeyError(f"record is missing the primary key {self.config.primary_key!r}") from exc

    def insert(self, record: Dict[str, Any]) -> None:
        key = self._key_of(record)
        self.index.insert(key, record, self.codec.encode(record))

    def upsert(self, record: Dict[str, Any]) -> None:
        key = self._key_of(record)
        self.index.upsert(key, record, self.codec.encode(record))

    def delete(self, key: Any) -> None:
        self.index.delete(key)

    def bulk_load(self, records: Sequence[Dict[str, Any]]) -> None:
        rows = [(self._key_of(record), record, self.codec.encode(record)) for record in records]
        self.index.load(rows)

    def flush(self) -> None:
        self.index.flush()

    def drain(self) -> None:
        """Wait until this partition's background flushes/merges are quiet."""
        self.index.drain_maintenance()

    def resume_maintenance(self) -> int:
        """Requeue flush work orphaned by a cleared background failure."""
        return self.index.resume_maintenance()

    # ------------------------------------------------------------------ reads

    def search(self, key: Any) -> Optional[Dict[str, Any]]:
        result = self.index.search(key)
        if result is None:
            return None
        if result.record is not None:
            return result.record
        return self.codec.decode(result.payload, result.schema or self.current_schema())

    def scan_views(self) -> Iterator[Any]:
        """Yield a record view per live record (the query engine's scan source)."""
        for result in self.index.scan():
            if result.record is not None:
                yield DictRecordView(result.record)
            else:
                yield self.codec.view(result.payload, result.schema or self.current_schema())

    def scan_records(self) -> Iterator[Dict[str, Any]]:
        for view in self.scan_views():
            yield view.materialize()

    def slice_scan_views(self, paths: Sequence[Tuple[Any, ...]], extractor: Any,
                         slice_stats: Any = None) -> Optional[Iterator[Tuple[Any, Any]]]:
        """Scan through the environment's decoded column-slice cache.

        Yields one ``(values, view)`` pair per live record in key order:
        ``values`` is the tuple of decoded column values aligned with
        ``paths`` for rows served (or freshly decoded) on the cached disk
        path, ``view`` is the record view for rows that still need
        extraction (memtable hits).  Exactly one of the two is non-None.
        Returns ``None`` when the cache is disabled, in which case callers
        use :meth:`scan_views` unchanged.
        """
        cache = self.environment.column_cache
        if cache is None or not cache.enabled:
            return None
        from ..cache import cached_component_scan
        from ..cache.column_cache import paths_cache_key

        pkey = paths_cache_key(paths)

        def source(component):
            def decode(payload):
                return self.codec.view(payload, component.schema or self.current_schema())

            return cached_component_scan(cache, component, decode, extractor,
                                         pkey, slice_stats)

        def generate():
            for result in self.index.scan(component_source=source):
                if result.values is not None:
                    yield result.values, None
                elif result.record is not None:
                    yield None, DictRecordView(result.record)
                else:
                    yield None, self.codec.view(result.payload,
                                                result.schema or self.current_schema())

        return generate()

    # ------------------------------------------------------------------ secondary indexes

    def create_secondary_index(self, name: str, field_path: Tuple[str, ...]) -> None:
        codec = self.codec
        field_path = tuple(field_path)

        def extractor(payload: bytes, schema: Optional[InferredSchema]) -> Any:
            view = codec.view(payload, schema)
            value = view.get_field(*field_path)
            return _indexable(value)

        self.index.add_secondary_index(
            SecondaryIndexDef(name=name, extractor=extractor, field_path=field_path))

    def list_secondary_indexes(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """``(name, field_path)`` of every secondary index on this partition."""
        return [(definition.name, definition.field_path or ())
                for definition in self.index.secondary_indexes]

    def index_statistics(self, index_name: str):
        """The named index's :class:`~repro.datasets.stats.FieldStatistics`,
        aggregated over this partition's live components."""
        return self.index.secondary_statistics(index_name)

    def secondary_range_search(self, index_name: str, low: Any, high: Any) -> List[Dict[str, Any]]:
        """Range query through a secondary index: keys first, then records.

        Kept for the storage-level API; candidates whose *newest* version
        drifted out of the range (an upsert after the indexing flush) are
        re-checked here, and unflushed memtable records are swept in, so the
        result matches a scan-with-predicate exactly.
        """
        definition = self.index.secondary_index_def(index_name)
        field_path = definition.field_path or () if definition is not None else ()
        records = []
        for view in self.probe_views(index_name, low, high):
            value = _indexable(view.get_field(*field_path))
            if value is None:
                continue
            try:
                if (low is not None and value < low) or (high is not None and value > high):
                    continue
            except TypeError:
                continue
            records.append(view.materialize())
        return records

    def probe_views(self, index_name: str, low: Any, high: Any,
                    low_inclusive: bool = True, high_inclusive: bool = True) -> Iterator[Any]:
        """Candidate record views for an index probe (the query engine's source).

        Yields the newest version of every record the secondary index places
        in the range, plus every live memtable record (the in-memory
        component is not secondary-indexed, so it is swept wholesale — a
        memory-only operation).  The stream is a *superset* of the true
        answer: callers must re-apply the predicate, because an indexed key's
        newest version may no longer satisfy it.
        """
        with self.index.read_guard():
            memtable_keys = set()
            # Sweep the mutable *and* sealed memtables (reconciled newest
            # wins): sealed entries are not secondary-indexed yet either.
            for entry in self.index.memory_entries_snapshot():
                memtable_keys.add(entry.key)
                if entry.is_antimatter:
                    continue
                if entry.record is not None:
                    yield DictRecordView(entry.record)
                else:
                    yield self.codec.view(entry.encoded, self.current_schema())
            keys = self.index.secondary_candidate_keys(index_name, low, high,
                                                       low_inclusive, high_inclusive)
            keys.sort()
            for key in keys:
                if key in memtable_keys:
                    continue  # the memtable sweep already yielded the newest version
                disk = self.index._search_disk(key)
                if disk is None:
                    continue
                payload, component = disk
                yield self.codec.view(payload, component.schema or self.current_schema())

    # ------------------------------------------------------------------ maintenance & stats

    def current_schema(self) -> Optional[InferredSchema]:
        if self.compactor is not None:
            return self.compactor.schema
        return None

    def storage_size(self) -> int:
        return self.index.storage_size()

    def record_count(self) -> int:
        """Exact live-record count (reconciling updates and deletes)."""
        return self.index.exact_count()

    def recover(self) -> "Partition":
        """Re-activate this partition after a simulated crash.

        The partition object must be freshly constructed (empty memtable, no
        components); recovery re-discovers valid components, reloads the
        newest schema, replays the WAL, and flushes (paper §3.1.2).
        """
        recover_index(
            self.index,
            wal=self.environment.wal,
            datatype=self.datatype,
            payload_decoder=lambda payload: self.codec.decode(payload, None),
        )
        return self
