"""The tuple compactor — the paper's core contribution (§3).

The :class:`TupleCompactor` is an LSM lifecycle callback attached to a
partition's primary index when the dataset is created with
``{"tuple-compactor-enabled": true}`` (paper Figure 8).  During each flush
it:

1. scans the type-tag and field-name vectors of every flushed record and
   folds them into the partition's in-memory schema
   (:class:`~repro.schema.InferredSchema`);
2. processes the anti-schemas carried by delete/upsert entries, decrementing
   the schema's counters so it can shrink again (§3.2.2);
3. rewrites each record into its compacted form — field names replaced by
   the schema's ``FieldNameID``\\ s (§3.3.2);
4. persists a snapshot of the inferred schema into the new component's
   metadata page (§3.1.1).

Merges never touch the in-memory schema: the merged component simply keeps
the most recent schema among the merged components, which is a superset of
the others because schemas only grow between deletes (§3.1.1, Figure 9c).
Crash recovery re-loads the newest valid component's schema via
:meth:`load_schema` (§3.1.2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..lsm.component import OnDiskComponent
from ..lsm.component_id import ComponentId
from ..lsm.lifecycle import FlushCallback
from ..schema import InferredSchema
from ..types import Datatype
from ..vector import VectorRecordView, compact_record


class TupleCompactor(FlushCallback):
    """Schema-inferring, record-compacting LSM flush callback."""

    needs_antischema = True

    def __init__(self, datatype: Optional[Datatype] = None, compact: bool = True) -> None:
        #: The partition's current in-memory schema (grows across flushes).
        self.schema = InferredSchema(datatype)
        self.datatype = datatype
        #: ``compact=False`` turns the compactor into a pure schema inferrer;
        #: the Figure 21 SL-VB ablation uses the plain pass-through callback
        #: instead, but this switch is useful for targeted experiments.
        self.compact = compact
        self.flush_count = 0
        self.records_compacted = 0
        self.bytes_saved = 0

    # ------------------------------------------------------------------ flush hooks

    def begin_flush(self, component_id: ComponentId) -> None:
        self.flush_count += 1

    def snapshot_state(self) -> Any:
        """Deep-copy the cumulative schema state for flush-retry rollback.

        The schema (and its counters) grow record by record during a flush;
        if the flush fails mid-way and is retried, replaying the memtable
        against the mutated schema would double-count every observed field
        — so the engine restores this snapshot first.
        """
        return (self.schema.snapshot(), self.flush_count,
                self.records_compacted, self.bytes_saved)

    def restore_state(self, state: Any) -> None:
        (self.schema, self.flush_count,
         self.records_compacted, self.bytes_saved) = state

    def transform_record(self, key: Any, record: Optional[Dict[str, Any]], encoded: bytes) -> bytes:
        """Infer the record's schema, then compact it.

        Inference deliberately goes through
        :meth:`~repro.vector.VectorRecordView.structure`, which reads only
        the type-tag and field-name vectors — the same access pattern the
        paper describes for the flush-time scan — rather than re-using the
        Python dict that happens to still be in the memtable.
        """
        view = VectorRecordView(encoded, self.datatype)
        skeleton = view.structure()
        self.schema.observe(skeleton)
        if not self.compact:
            return encoded
        compacted = compact_record(encoded, self.schema.dictionary)
        self.records_compacted += 1
        self.bytes_saved += len(encoded) - len(compacted)
        return compacted

    def process_antischema(self, antischema: Optional[Dict[str, Any]]) -> None:
        if antischema:
            self.schema.remove(antischema)

    def end_flush(self) -> Tuple[bytes, Optional[InferredSchema]]:
        snapshot = self.schema.snapshot()
        return snapshot.to_bytes(), snapshot

    # ------------------------------------------------------------------ merge hook

    def select_merge_schema(self, components: Sequence[OnDiskComponent]) -> Tuple[bytes, Optional[InferredSchema]]:
        """Persist the most recent schema among the merged components."""
        newest = max(components, key=lambda component: component.component_id)
        if newest.schema is None:
            return b"", None
        return newest.schema.to_bytes(), newest.schema

    # ------------------------------------------------------------------ recovery & maintenance

    def load_schema(self, schema: InferredSchema) -> None:
        """Adopt a schema recovered from the newest valid on-disk component."""
        schema.datatype = self.datatype
        self.schema = schema

    def decode_record(self, payload: bytes, component_schema: Optional[InferredSchema]) -> Dict[str, Any]:
        """Materialize a stored (possibly compacted) record for maintenance.

        Field-name ids are stable across schema versions within a partition
        (the dictionary is append-only), so the *current* dictionary decodes
        records compacted against any earlier snapshot.
        """
        dictionary = self.schema.dictionary
        if component_schema is not None and len(component_schema.dictionary) > len(dictionary):
            dictionary = component_schema.dictionary
        return VectorRecordView(payload, self.datatype, dictionary).materialize()
