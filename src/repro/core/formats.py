"""Record-format codecs and uniform record views.

A dataset's :class:`~repro.config.StorageFormat` decides how its records are
physically encoded (paper §4: *open* and *closed* use the ADM format,
*inferred* and *SL-VB* use the vector-based format) and, consequently, how
fields are accessed at query time: offset-guided navigation for ADM records
versus a consolidated linear scan for vector-based records.

To keep the query engine format-agnostic, every stored record is exposed to
it through the small ``RecordView`` protocol — ``get_field``, ``get_values``,
``get_items``, ``materialize`` — implemented by the ADM view, the vector
view, and a plain-dict view (used for records still in the memtable and for
intermediate query results).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..adm import ADMEncoder, ADMRecordView
from ..config import StorageFormat
from ..schema import InferredSchema
from ..types import AMultiset, Datatype, MISSING
from ..vector import VectorEncoder, VectorRecordView


def _navigate(value: Any, path: Sequence[Any]) -> Any:
    """Navigate a path of field names / collection indexes into plain values."""
    for step in path:
        if value is MISSING or value is None:
            return MISSING
        if isinstance(step, str):
            if isinstance(value, dict) and step in value:
                value = value[step]
            else:
                return MISSING
        else:
            items = value.items if isinstance(value, AMultiset) else value
            if (not isinstance(items, (list, tuple)) or not isinstance(step, int)
                    or step < 0 or step >= len(items)):
                return MISSING
            value = items[step]
    return value


class DictRecordView:
    """Record view over an already-materialized Python dict."""

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record

    def materialize(self) -> Dict[str, Any]:
        return self.record

    def get_field(self, *path: Any) -> Any:
        if "*" in path:
            index = path.index("*")
            prefix, suffix = path[:index], path[index + 1:]
            collection = self.get_field(*prefix) if prefix else self.record
            items = collection.items if isinstance(collection, AMultiset) else collection
            if not isinstance(items, (list, tuple)):
                return MISSING
            if not suffix:
                return list(items)
            return [DictRecordView(item).get_field(*suffix) if isinstance(item, dict) else MISSING
                    for item in items]
        value: Any = self.record
        for step in path:
            if isinstance(step, str):
                if not isinstance(value, dict) or step not in value:
                    return MISSING
                value = value[step]
            else:
                items = value.items if isinstance(value, AMultiset) else value
                if not isinstance(items, (list, tuple)) or not isinstance(step, int):
                    return MISSING
                if step < 0 or step >= len(items):
                    return MISSING
                value = items[step]
        return value

    def get_values(self, *paths: Sequence[Any]) -> List[Any]:
        results = []
        for path in paths:
            if "*" in path:
                index = path.index("*")
                prefix, suffix = list(path[:index]), list(path[index + 1:])
                collection = self.get_field(*prefix) if prefix else self.record
                items = collection.items if isinstance(collection, AMultiset) else collection
                if isinstance(items, (list, tuple)):
                    results.append([_navigate(item, suffix) for item in items]
                                   if suffix else list(items))
                elif collection is MISSING or collection is None:
                    results.append([])
                else:
                    # Non-collection at the wildcard prefix: pass the value
                    # through so callers can apply SQL++ singleton semantics
                    # (mirrors VectorRecordView.get_values).
                    results.append(collection)
            else:
                results.append(self.get_field(*path))
        return results

    def get_items(self, *path: Any) -> Sequence[Any]:
        value = self.get_field(*path)
        if isinstance(value, AMultiset):
            return list(value.items)
        if isinstance(value, list):
            return value
        if value is MISSING or value is None:
            return []
        return [value]


class RecordFormatCodec:
    """Encodes records for storage and re-opens stored payloads as views."""

    def __init__(self, storage_format: StorageFormat, datatype: Optional[Datatype],
                 validate: bool = True) -> None:
        self.storage_format = storage_format
        self.datatype = datatype
        if storage_format.uses_vector_format:
            self._encoder = VectorEncoder(datatype, validate=validate)
        else:
            self._encoder = ADMEncoder(datatype, validate=validate)

    # -- encoding -----------------------------------------------------------------

    def encode(self, record: Dict[str, Any]) -> bytes:
        """Encode one record into its in-memory-component representation.

        For vector-based formats this is always the *uncompacted* form; the
        tuple compactor produces the compacted form during flushes.
        """
        return self._encoder.encode(record)

    # -- views ----------------------------------------------------------------------

    def view(self, payload: bytes, schema: Optional[InferredSchema] = None):
        """Open a stored payload as a record view."""
        if self.storage_format.uses_vector_format:
            dictionary = schema.dictionary if schema is not None else None
            return VectorRecordView(payload, self.datatype, dictionary)
        return ADMRecordView(payload, self.datatype)

    def decode(self, payload: bytes, schema: Optional[InferredSchema] = None) -> Dict[str, Any]:
        """Materialize a stored payload back into a Python record."""
        return self.view(payload, schema).materialize()

    def view_of_record(self, record: Dict[str, Any]) -> DictRecordView:
        return DictRecordView(record)
