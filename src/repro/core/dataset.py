"""Dataset: the public, AsterixDB-like entry point of the library.

A dataset is created from a :class:`~repro.config.DatasetConfig` (the
equivalent of ``CREATE DATASET ... WITH {"tuple-compactor-enabled": true}``,
paper Figure 8) over one or more storage environments.  Records are
hash-partitioned on the primary key across the dataset's partitions
(paper §2.2); every partition runs its own LSM index and — for inferred
datasets — its own tuple compactor with its own, independently grown schema
(§3.4.1).

The query engine (:mod:`repro.query`) executes jobs against the dataset's
partitions; this class only exposes the storage-level API: ingest, point
lookups, scans, secondary indexes, bulk load, flush, and statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..cache import PlanCache, normalize_statement
from ..config import DatasetConfig, StorageFormat
from ..errors import DatasetError
from ..lsm import LSMIOScheduler
from ..obs import MetricsRegistry
from ..obs import tracer as _tracer
from ..schema import InferredSchema
from ..types import Datatype, open_only_primary_key
from .environment import StorageEnvironment
from .partition import Partition


def hash_partition(key: Any, partition_count: int) -> int:
    """Deterministic hash partitioning of a primary key.

    Python's builtin ``hash`` is salted per process for strings, which would
    make experiments irreproducible, so integers use a Knuth-style multiply
    and strings a small FNV-1a.
    """
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        key = str(key)
    if isinstance(key, int):
        return (key * 2654435761 & 0xFFFFFFFF) % partition_count
    digest = 2166136261
    for byte in key.encode("utf-8"):
        digest = ((digest ^ byte) * 16777619) & 0xFFFFFFFF
    return digest % partition_count


class Dataset:
    """A logical dataset spread over one or more partitions."""

    def __init__(self, config: DatasetConfig, environments: Sequence[StorageEnvironment],
                 partitions_per_environment: int = 1,
                 datatype: Optional[Datatype] = None) -> None:
        if not environments:
            raise DatasetError("a dataset needs at least one storage environment")
        # The environment's StorageConfig is the physical truth (device
        # profile, page size, compression): sync it into the dataset config
        # so consumers like the access-path cost model never price against
        # stale defaults.  Previously only Dataset.create did this, letting
        # datasets built through this bare constructor disagree with their
        # own environments.
        if config.storage is not environments[0].config:
            from dataclasses import replace

            config = replace(config, storage=environments[0].config)
        self.config = config
        self.datatype = datatype if datatype is not None else open_only_primary_key(
            f"{config.name}Type", config.primary_key)
        self.environments = list(environments)
        # Background LSM lifecycle: when enabled (config knob or the
        # REPRO_LSM_SCHEDULER environment variable), all partitions share one
        # bounded scheduler that runs flushes and merges off the ingest path.
        self.scheduler: Optional[LSMIOScheduler] = None
        if config.lsm.resolved_background_maintenance():
            self.scheduler = LSMIOScheduler(
                max_flush_workers=config.lsm.max_flush_workers,
                max_merge_workers=config.lsm.max_merge_workers,
                metrics=environments[0].metrics)
        self._closed = False
        #: Trace id of the most recent traced query (see :meth:`last_trace`).
        self._last_trace_id: Optional[str] = None
        #: Bounded LRU of compiled physical plans (see :meth:`query` and
        #: :meth:`prepare`); sized by ``REPRO_PLAN_CACHE``, 0 disables it.
        self.plan_cache = PlanCache(metrics=environments[0].metrics)
        #: Dataset-level half of the plan-reuse epoch: bumped by CREATE
        #: INDEX and :meth:`invalidate_plans` (config/stats changes); the
        #: per-partition ``structure_version`` half covers flush/merge/
        #: bulk-load component swaps and quarantine.
        self._plan_epoch = 0
        self.partitions: List[Partition] = []
        partition_id = 0
        for environment in self.environments:
            for _ in range(partitions_per_environment):
                self.partitions.append(Partition(config, partition_id, environment,
                                                 self.datatype, scheduler=self.scheduler))
                partition_id += 1

    # ------------------------------------------------------------------ factory

    @classmethod
    def create(cls, name: str, storage_format: StorageFormat = StorageFormat.OPEN,
               environment: Optional[StorageEnvironment] = None,
               datatype: Optional[Datatype] = None, primary_key: str = "id",
               partitions: int = 1, **config_overrides) -> "Dataset":
        """Single-node convenience factory (most examples and tests use this)."""
        from dataclasses import replace

        environment = environment or StorageEnvironment()
        # Carry the environment's physical storage config into the dataset
        # config so consumers (e.g. the access-path cost model) see the real
        # device profile and page size, not the defaults.
        config = DatasetConfig(name=name, primary_key=primary_key, storage_format=storage_format,
                               tuple_compactor_enabled=storage_format is StorageFormat.INFERRED,
                               storage=environment.config)
        if config_overrides:
            config = replace(config, **config_overrides)
        return cls(config, [environment], partitions_per_environment=partitions, datatype=datatype)

    # ------------------------------------------------------------------ writes

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def _partition_for(self, key: Any) -> Partition:
        return self.partitions[hash_partition(key, self.partition_count)]

    def _key_of(self, record: Dict[str, Any]) -> Any:
        try:
            return record[self.config.primary_key]
        except KeyError as exc:
            raise DatasetError(
                f"record is missing the primary key field {self.config.primary_key!r}"
            ) from exc

    def insert(self, record: Dict[str, Any]) -> None:
        self._partition_for(self._key_of(record)).insert(record)

    def insert_all(self, records: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for record in records:
            self.insert(record)
            count += 1
        return count

    def upsert(self, record: Dict[str, Any]) -> None:
        self._partition_for(self._key_of(record)).upsert(record)

    def delete(self, key: Any) -> None:
        self._partition_for(key).delete(key)

    def bulk_load(self, records: Iterable[Dict[str, Any]]) -> None:
        """Bulk load (sort + bottom-up B+-tree build per partition, §4.3)."""
        buckets: List[List[Dict[str, Any]]] = [[] for _ in self.partitions]
        for record in records:
            buckets[hash_partition(self._key_of(record), self.partition_count)].append(record)
        for partition, bucket in zip(self.partitions, buckets):
            partition.bulk_load(bucket)

    def flush_all(self) -> None:
        for partition in self.partitions:
            partition.flush()

    # ------------------------------------------------------------------ lifecycle

    @property
    def background_maintenance(self) -> bool:
        """Whether this dataset runs flushes/merges on a background scheduler."""
        return self.scheduler is not None

    def drain(self) -> None:
        """Wait for all in-flight background flushes/merges to finish.

        A quiescence barrier, not a flush: whatever is still in the mutable
        memtables stays there (call :meth:`flush_all` to persist it).  No-op
        in synchronous mode.  Raises :class:`~repro.errors.SchedulerError`
        if a background operation failed.
        """
        for partition in self.partitions:
            partition.drain()

    def resume_maintenance(self) -> Optional[BaseException]:
        """Acknowledge a background maintenance failure and resume.

        The scheduler's failure latch is explicit: a flush/merge that dies
        (retry budget exhausted, or a non-transient error) keeps surfacing
        through ``drain()``/ingest backpressure until cleared here.  Clears
        the latch, then resubmits flush tasks for any sealed memtables the
        dead task orphaned, so the pipeline makes progress again.  Returns
        the cleared exception (``None`` when nothing had failed).  No-op in
        synchronous mode.
        """
        if self.scheduler is None:
            return None
        failure = self.scheduler.clear_failure()
        for partition in self.partitions:
            partition.resume_maintenance()
        return failure

    def close(self) -> None:
        """Quiesce background maintenance deterministically.  Idempotent.

        Drains every partition's in-flight flushes and merges, then shuts
        the scheduler's worker pools down.  The dataset remains readable —
        and even writable: post-close writes fall back to synchronous,
        inline maintenance, the default-off escape hatch mode.
        """
        if self._closed:
            return
        self._closed = True
        if self.scheduler is None:
            return
        try:
            self.drain()
        finally:
            self.scheduler.close()

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ reads

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        return self._partition_for(key).search(key)

    def scan(self) -> Iterator[Dict[str, Any]]:
        for partition in self.partitions:
            yield from partition.scan_records()

    def count(self) -> int:
        return sum(partition.record_count() for partition in self.partitions)

    def approximate_record_count(self) -> int:
        """Record count from component metadata only — no page reads.

        Slightly over-counts keys that are shadowed across components; used
        by the optimizer's cost model, which must not do I/O while planning.
        """
        return sum(partition.index.record_count() for partition in self.partitions)

    # ------------------------------------------------------------------ SQL++

    def query(self, text: str, executor: Optional[Any] = None, **executor_options):
        """Compile and run a SQL++ query string against this dataset.

        The text is compiled by :mod:`repro.sqlpp` into the same
        :class:`~repro.query.plan.QuerySpec` the fluent builder produces and
        executed with a :class:`~repro.query.QueryExecutor` (a fresh one per
        call unless ``executor`` is given; ``executor_options`` — e.g.
        ``cold_cache=True`` or ``parallelism=4`` — configure the fresh one;
        partitions fan out across a worker pool, one worker per partition by
        default, and ``parallelism=1`` runs them sequentially).  Returns the
        executor's :class:`~repro.query.QueryResult`.  Malformed queries
        raise :class:`~repro.errors.SqlppError` with line/column info.

        The FROM clause's dataset name is deliberately *not* matched against
        this dataset's name: the paper's query texts say ``FROM Tweets``
        while benchmark datasets carry configuration-mangled names, so the
        name acts purely as documentation and the alias binds to whatever
        dataset the method is called on.

        Physical plans are memoized in :attr:`plan_cache`, keyed by the
        normalized statement text, the dataset's :meth:`reuse_epoch`, and
        the executor's plan signature — a repeat of the same text skips
        parse → bind → optimize entirely (``stats.plan_source == "cache"``)
        until a CREATE INDEX, flush/merge component swap, or
        :meth:`invalidate_plans` call moves the epoch forward.
        """
        from ..query.executor import ExecutionStats, QueryExecutor, QueryResult
        from ..sqlpp import CompiledCreateIndex
        from ..sqlpp import compile as compile_sqlpp

        if executor is not None and executor_options:
            raise DatasetError(
                "pass either a prebuilt executor or executor options, not both")
        explicit_executor = executor is not None or bool(executor_options)
        with _tracer.span("query", text=normalize_statement(text)[:200]) as span:
            if span.trace_id:
                self._last_trace_id = span.trace_id
            runner = executor if executor is not None else QueryExecutor(**executor_options)
            key = None
            if self.plan_cache.enabled:
                key = (normalize_statement(text), self.reuse_epoch(),
                       runner.plan_signature())
                physical = self.plan_cache.get(key)
                if physical is not None:
                    result = runner.execute_physical(self, physical)
                    result.stats.plan_source = "cache"
                    return result
            compiled = compile_sqlpp(text)
            if isinstance(compiled, CompiledCreateIndex):
                if explicit_executor:
                    raise DatasetError("CREATE INDEX does not take an executor")
                self.create_index(compiled.index_name, compiled.field_path)
                return QueryResult(rows=[], stats=ExecutionStats())
            result, physical = runner.execute_prepared(self, compiled.spec)
            result.stats.plan_source = "compiled"
            if key is not None:
                self.plan_cache.put(key, physical)
            return result

    def prepare(self, text: str, executor: Optional[Any] = None,
                **executor_options) -> "PreparedStatement":
        """Parse, bind, and optimize ``text`` once; execute it many times.

        Returns a :class:`PreparedStatement` whose :meth:`~PreparedStatement.execute`
        reuses the compiled physical plan directly (no plan-cache probe, no
        re-parse) while the dataset's :meth:`reuse_epoch` is unchanged, and
        transparently re-prepares after CREATE INDEX, component swaps, or
        :meth:`invalidate_plans`.  ``executor``/``executor_options`` follow
        the same rules as :meth:`query`; CREATE INDEX statements cannot be
        prepared.
        """
        from ..query.executor import QueryExecutor

        if executor is not None and executor_options:
            raise DatasetError(
                "pass either a prebuilt executor or executor options, not both")
        if executor is None:
            executor = QueryExecutor(**executor_options)
        return PreparedStatement(self, text, executor)

    def reuse_epoch(self) -> Tuple:
        """The dataset state a cached physical plan is valid against.

        Combines the dataset-level plan epoch (CREATE INDEX, config/stats
        invalidations) with every partition's LSM ``structure_version``
        (bumped on flush install, bulk load, merge swap, secondary-index
        backfill, and quarantine), so any event that can change optimizer
        inputs or access-path viability yields a fresh epoch — stale plans
        simply stop matching and age out of the LRU.
        """
        return (self._plan_epoch,
                tuple(partition.index.structure_version for partition in self.partitions))

    def invalidate_plans(self) -> None:
        """Force re-planning of every cached/prepared statement.

        Call after out-of-band changes the engine cannot observe (e.g.
        mutating executor-relevant configuration in place or refreshing
        statistics externally).  Bumps the plan epoch and drops the cache's
        current entries.
        """
        self._plan_epoch += 1
        self.plan_cache.clear()

    def explain(self, query: Any, access_path: str = "auto", analyze: bool = False,
                **executor_options: Any) -> str:
        """Render the plan (access path, pipeline, costs) for ``query``.

        ``query`` is a SQL++ string or a prebuilt
        :class:`~repro.query.plan.QuerySpec`; see :mod:`repro.query.explain`.
        With ``analyze=True`` the plan is *executed* and per-operator actual
        rows, wall time, and bytes are rendered next to the optimizer's
        estimates — including the estimated-vs-actual cardinality error.
        ``executor_options`` (e.g. ``parallelism=1``, ``cold_cache=True``)
        configure the analyzing executor.
        """
        from ..query.explain import explain as explain_plan

        return explain_plan(self, query, access_path=access_path, analyze=analyze,
                            **executor_options)

    # ------------------------------------------------------------------ observability

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry this dataset's environments publish into."""
        return self.environments[0].metrics

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable snapshot of the dataset's metrics registry."""
        return self.metrics.snapshot()

    def last_trace(self) -> List[Dict[str, Any]]:
        """Spans of the most recent traced query, as exported dicts.

        Empty when tracing is disabled (``REPRO_TRACE`` unset and the tracer
        not enabled programmatically) or no query has run yet.  Spans are
        returned in completion order; each carries ``span_id``/``parent_id``
        so callers can rebuild the tree.
        """
        if self._last_trace_id is None:
            return []
        return [span.to_dict() for span in _tracer.spans(self._last_trace_id)]

    # ------------------------------------------------------------------ secondary indexes

    def create_index(self, name: str, field_path: Any) -> None:
        """``CREATE INDEX name ON <this dataset> (field.path)``.

        ``field_path`` is a dotted string (``"user.followers_count"``) or a
        sequence of steps.  Existing components are backfilled, so the index
        may be created before or after data is loaded.
        """
        path = self._normalize_field_path(field_path)
        if not path:
            raise DatasetError("create_index needs a non-empty field path")
        for partition in self.partitions:
            partition.create_secondary_index(name, path)
        # A new index changes access-path planning: move the reuse epoch so
        # cached plans compiled without it stop matching.
        self._plan_epoch += 1

    def create_secondary_index(self, name: str, field_path: Tuple[str, ...]) -> None:
        """Storage-level alias of :meth:`create_index` (kept for the benchmarks)."""
        self.create_index(name, field_path)

    def list_secondary_indexes(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """``(name, field_path)`` of every secondary index (same on all partitions)."""
        return self.partitions[0].list_secondary_indexes()

    def index_statistics(self, index_name: str):
        """Dataset-wide field statistics of one index (partition stats merged)."""
        merged = None
        for partition in self.partitions:
            statistics = partition.index_statistics(index_name)
            if statistics is None:
                continue
            merged = statistics if merged is None else merged.merge(statistics)
        return merged

    @staticmethod
    def _normalize_field_path(field_path: Any) -> Tuple[str, ...]:
        if isinstance(field_path, str):
            return tuple(step for step in field_path.split(".") if step)
        return tuple(field_path)

    def secondary_range_search(self, index_name: str, low: Any, high: Any) -> List[Dict[str, Any]]:
        results: List[Dict[str, Any]] = []
        for partition in self.partitions:
            results.extend(partition.secondary_range_search(index_name, low, high))
        return results

    # ------------------------------------------------------------------ schemas & stats

    def schemas(self) -> Dict[int, Optional[InferredSchema]]:
        """Per-partition schemas (the schema-broadcast payload of §3.4.1)."""
        return {partition.partition_id: partition.current_schema() for partition in self.partitions}

    def storage_size(self) -> int:
        return sum(partition.storage_size() for partition in self.partitions)

    def ingest_stats(self) -> Dict[str, float]:
        totals = {"inserts": 0, "deletes": 0, "upserts": 0, "flushes": 0, "merges": 0,
                  "maintenance_point_lookups": 0, "bytes_flushed": 0, "bytes_merged": 0,
                  "ingest_stall_seconds": 0.0}
        for partition in self.partitions:
            stats = partition.index.stats
            for field_name in totals:
                totals[field_name] += getattr(stats, field_name)
        return totals

    def describe_schema(self, partition_id: int = 0) -> str:
        schema = self.partitions[partition_id].current_schema()
        if schema is None:
            return "<no inferred schema: tuple compactor disabled>"
        return schema.describe()


class PreparedStatement:
    """A SQL++ statement compiled and optimized once, executed many times.

    Created by :meth:`Dataset.prepare`.  Holds the physical plan pinned
    (independent of the shared plan cache, so it works even with
    ``REPRO_PLAN_CACHE=0``) together with the :meth:`Dataset.reuse_epoch`
    it was compiled against; :meth:`execute` re-prepares transparently when
    the epoch has moved (CREATE INDEX, flush/merge component swaps,
    :meth:`Dataset.invalidate_plans`), so results are always identical to an
    uncached :meth:`Dataset.query` of the same text.
    """

    def __init__(self, dataset: Dataset, text: str, executor: Any) -> None:
        self._dataset = dataset
        #: The statement exactly as prepared — this is what gets compiled,
        #: so string literals keep their spacing byte-for-byte.
        self.text = text
        # The text component of the shared plan-cache key this statement
        # seeds (must match what Dataset.query computes for the same text).
        self._key_text = normalize_statement(text)
        self._executor = executor
        self._signature = executor.plan_signature()
        self._epoch: Optional[Tuple] = None
        self._physical: Optional[Any] = None
        self._warm()

    def _warm(self) -> None:
        from ..sqlpp import CompiledCreateIndex
        from ..sqlpp import compile as compile_sqlpp

        epoch = self._dataset.reuse_epoch()
        compiled = compile_sqlpp(self.text)
        if isinstance(compiled, CompiledCreateIndex):
            raise DatasetError("only queries can be prepared, not CREATE INDEX")
        self._physical = self._executor.prepare_physical(self._dataset, compiled.spec)
        self._epoch = epoch
        # Seed the shared cache too: plain dataset.query(text) calls with a
        # signature-compatible executor hit immediately.
        if self._dataset.plan_cache.enabled:
            self._dataset.plan_cache.put((self._key_text, epoch, self._signature),
                                         self._physical)

    def execute(self):
        """Run the prepared plan; returns a :class:`~repro.query.QueryResult`.

        ``result.stats.plan_source`` is ``"cache"`` when the pinned plan was
        reused as-is and ``"compiled"`` when a reuse-epoch change forced a
        re-prepare on this call.
        """
        with _tracer.span("query", text=self._key_text[:200]) as span:
            if span.trace_id:
                self._dataset._last_trace_id = span.trace_id
            reused = self._epoch == self._dataset.reuse_epoch()
            if not reused:
                self._warm()
            result = self._executor.execute_physical(self._dataset, self._physical)
            result.stats.plan_source = "cache" if reused else "compiled"
            return result
