"""Synthetic IoT sensors dataset and its four evaluation queries.

The paper's Sensors dataset is 122 GB of synthetic sensor output (Table 1:
5.1 KB/record, 248 scalar values each, max depth 3, doubles dominant) whose
defining property is a *high field-name-size to value-size ratio*: each
record carries an array of small ``{"value": double, "timestamp": bigint}``
reading objects plus a block of health-status gauges.  That is precisely the
shape on which the vector-based format wins most (Figure 16c: 4.3× smaller
than open, and smaller than closed thanks to the eliminated per-object
offsets), so the generator reproduces it directly at a reduced reading
count.

``QUERIES`` holds the four queries of Appendix A.3:

* Q1 — ``COUNT(*)`` over unnested readings
* Q2 — global min/max reading temperature
* Q3 — top-10 sensors by average reading (UNNEST / GROUP BY / ORDER BY)
* Q4 — same as Q3 but restricted to one day (highly selective WHERE)
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator

from ..query import And, Comparison, QuerySpec, field, lit, scan

DEFAULT_SCALE = 1500

#: Readings per record (the paper's records carry ~120 readings; scaled down
#: but kept large enough that per-object overheads dominate record size).
READINGS_PER_RECORD = 40

#: Report-time base (milliseconds) — matches the constant used in the paper's Q4.
REPORT_TIME_BASE = 1_556_496_000_000
#: Interval between consecutive reports from the same sensor (one minute).
REPORT_INTERVAL_MS = 60_000


def generate(count: int = DEFAULT_SCALE, seed: int = 13, start_id: int = 0,
             sensor_count: int = 50,
             readings_per_record: int = READINGS_PER_RECORD) -> Iterator[Dict[str, Any]]:
    """Yield ``count`` sensor report records with deterministic content."""
    rng = random.Random(seed)
    for offset in range(count):
        report_id = start_id + offset
        sensor_id = report_id % sensor_count
        report_time = REPORT_TIME_BASE + (report_id // sensor_count) * REPORT_INTERVAL_MS
        base_temp = 15.0 + (sensor_id % 20)
        # Reading timestamps are sub-second epoch values stored as doubles, so
        # the dataset stays double-dominant like the paper's Table 1 row.
        readings = [
            {"temp": round(base_temp + rng.uniform(-5.0, 5.0), 3),
             "timestamp": (report_time + index * 1000) / 1000.0}
            for index in range(readings_per_record)
        ]
        yield {
            "id": report_id,
            "sensor_id": sensor_id,
            "report_time": report_time,
            "readings": readings,
            "status": {
                "battery_voltage": round(rng.uniform(3.1, 4.2), 3),
                "signal_strength": round(rng.uniform(-90.0, -30.0), 2),
                "uptime_seconds": rng.randrange(0, 10_000_000),
                "memory_free": rng.randrange(1_000, 64_000),
                "cpu_temperature": round(rng.uniform(30.0, 80.0), 2),
                "error_count": rng.randrange(0, 5),
                "firmware": {"major": 2, "minor": rng.randrange(0, 9), "patch": rng.randrange(0, 30)},
            },
            "calibration": {
                "offset": round(rng.uniform(-0.5, 0.5), 4),
                "scale": round(rng.uniform(0.95, 1.05), 4),
                "last_calibrated": REPORT_TIME_BASE - rng.randrange(0, 10 ** 9),
            },
        }


# ---------------------------------------------------------------------------
# Appendix A.3 queries
# ---------------------------------------------------------------------------

def q1_count_readings() -> QuerySpec:
    """SELECT count(*) FROM Sensors s, s.readings r."""
    return (scan("s")
            .unnest(field("s", "readings"), "r")
            .count_star()
            .build())


def q2_min_max() -> QuerySpec:
    """SELECT max(r.temp), min(r.temp) FROM Sensors s, s.readings r."""
    return (scan("s")
            .unnest(field("s", "readings"), "r")
            .aggregate("max_temp", "max", field("r", "temp"))
            .aggregate("min_temp", "min", field("r", "temp"))
            .build())


def q3_top_sensors_by_avg() -> QuerySpec:
    """Top-10 sensors with the highest average reading."""
    return (scan("s")
            .unnest(field("s", "readings"), "r")
            .group_by(("sid", field("s", "sensor_id")))
            .aggregate("avg_temp", "avg", field("r", "temp"))
            .order_by("avg_temp", descending=True)
            .limit(10)
            .build())


def q4_top_sensors_one_day(day_start: int = REPORT_TIME_BASE - 1,
                           window_ms: int = 2 * REPORT_INTERVAL_MS) -> QuerySpec:
    """Q3 restricted to a short reporting window (selective filter).

    The paper filters to one day out of the dataset's full time range, a
    ~0.001 % selectivity at its 25 M-record scale.  The scaled-down generator
    spans only minutes of report time, so the default window here covers two
    report intervals — selective relative to the generated span — while the
    ``day_start``/``window_ms`` parameters let benchmarks pick any
    selectivity explicitly.
    """
    day_end = day_start + window_ms
    return (scan("s")
            .unnest(field("s", "readings"), "r")
            .where(And(Comparison(">", field("s", "report_time"), lit(day_start)),
                       Comparison("<", field("s", "report_time"), lit(day_end))))
            .group_by(("sid", field("s", "sensor_id")))
            .aggregate("avg_temp", "avg", field("r", "temp"))
            .order_by("avg_temp", descending=True)
            .limit(10)
            .build())


QUERIES = {
    "Q1": q1_count_readings,
    "Q2": q2_min_max,
    "Q3": q3_top_sensors_by_avg,
    "Q4": q4_top_sensors_one_day,
}

#: SQL++ text versions of the same queries (Q4 at its default window);
#: tests/test_sqlpp_parity.py asserts result parity with ``QUERIES``.
SQLPP = {
    "Q1": "SELECT VALUE count(*) FROM Sensors AS s UNNEST s.readings AS r",
    "Q2": """
        SELECT max(r.temp) AS max_temp, min(r.temp) AS min_temp
        FROM Sensors AS s UNNEST s.readings AS r
    """,
    "Q3": """
        SELECT sid, avg(r.temp) AS avg_temp
        FROM Sensors AS s UNNEST s.readings AS r
        GROUP BY s.sensor_id AS sid
        ORDER BY avg_temp DESC
        LIMIT 10
    """,
    "Q4": f"""
        SELECT sid, avg(r.temp) AS avg_temp
        FROM Sensors AS s UNNEST s.readings AS r
        WHERE s.report_time > {REPORT_TIME_BASE - 1}
          AND s.report_time < {REPORT_TIME_BASE - 1 + 2 * REPORT_INTERVAL_MS}
        GROUP BY s.sensor_id AS sid
        ORDER BY avg_temp DESC
        LIMIT 10
    """,
}
