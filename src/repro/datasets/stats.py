"""Structural statistics of generated datasets (the paper's Table 1).

Table 1 summarizes each dataset by total size, record count, record size,
scalar-value counts (min/max/avg), maximum nesting depth, dominant scalar
type, and whether union-typed values occur.  :func:`dataset_statistics`
computes the same summary for any iterable of records so the Table 1
benchmark can print the scaled-down equivalents next to the paper's
figures, and so tests can assert that the generators really have the
structural properties the substitutions in DESIGN.md promise.

:class:`FieldStatistics` is the second, per-field kind of statistic: a
min/max/count summary of one indexed field's values, maintained by the LSM
secondary indexes as they build and consumed by the query optimizer's cost
model to estimate range-predicate selectivities (uniform-distribution
interpolation for numeric fields, a conservative default otherwise).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..types import AMultiset, Missing, TypeTag, type_tag_of

#: Selectivity assumed for range predicates the statistics cannot interpolate
#: (non-numeric fields, empty statistics): pessimistic enough that the cost
#: model only prefers an index probe when it can actually reason about it.
DEFAULT_RANGE_SELECTIVITY = 0.1


@dataclass
class FieldStatistics:
    """Min/max/count summary of one field's indexed (present, scalar) values."""

    field_path: Tuple[str, ...] = ()
    count: int = 0
    min_value: Any = None
    max_value: Any = None

    def observe(self, value: Any) -> None:
        """Fold one indexed value into the summary (absent values never reach here)."""
        if self.count == 0:
            self.min_value = value
            self.max_value = value
        else:
            try:
                if value < self.min_value:
                    self.min_value = value
                if value > self.max_value:
                    self.max_value = value
            except TypeError:
                # Mixed-type fields: keep the count, stop trusting the bounds.
                self.min_value = None
                self.max_value = None
        self.count += 1

    def merge(self, other: "FieldStatistics") -> "FieldStatistics":
        """Combine two summaries (e.g. across a dataset's partitions)."""
        merged = FieldStatistics(field_path=self.field_path or other.field_path)
        merged.count = self.count + other.count
        nonempty = [stats for stats in (self, other) if stats.count]
        if nonempty and all(stats.min_value is not None for stats in nonempty):
            try:
                merged.min_value = min(stats.min_value for stats in nonempty)
                merged.max_value = max(stats.max_value for stats in nonempty)
            except TypeError:
                merged.min_value = None
                merged.max_value = None
        return merged

    @property
    def _numeric_bounds(self) -> Optional[Tuple[float, float]]:
        if (isinstance(self.min_value, (int, float)) and not isinstance(self.min_value, bool)
                and isinstance(self.max_value, (int, float))
                and not isinstance(self.max_value, bool)):
            return float(self.min_value), float(self.max_value)
        return None

    def estimate_range_selectivity(self, low: Any = None, high: Any = None) -> float:
        """Estimated fraction of records with an indexed value in ``[low, high]``.

        Numeric fields interpolate under a uniform-distribution assumption;
        anything else falls back to :data:`DEFAULT_RANGE_SELECTIVITY`.  The
        estimate is clamped to ``[1/count, 1]`` so an equality probe never
        rounds down to an impossible zero cost.
        """
        if self.count == 0:
            return 1.0
        bounds = self._numeric_bounds
        floor = 1.0 / self.count
        if bounds is None:
            if low is None and high is None:
                return 1.0
            return max(DEFAULT_RANGE_SELECTIVITY, floor)
        minimum, maximum = bounds
        effective_low = minimum if low is None else float(low) if _is_number(low) else None
        effective_high = maximum if high is None else float(high) if _is_number(high) else None
        if effective_low is None or effective_high is None:
            return max(DEFAULT_RANGE_SELECTIVITY, floor)
        effective_low = max(effective_low, minimum)
        effective_high = min(effective_high, maximum)
        if effective_high < effective_low:
            return floor
        width = maximum - minimum
        if width <= 0:
            return 1.0
        fraction = (effective_high - effective_low) / width
        return min(1.0, max(floor, fraction))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class DatasetStatistics:
    """Structural summary of a record sample (one row of Table 1)."""

    record_count: int
    total_json_bytes: int
    avg_record_bytes: float
    scalar_counts: Tuple[int, int, float]  # min, max, avg
    max_depth: int
    dominant_type: str
    has_union_types: bool
    distinct_field_names: int

    def as_row(self) -> Dict[str, Any]:
        minimum, maximum, average = self.scalar_counts
        return {
            "# of Records": self.record_count,
            "Total Size (bytes)": self.total_json_bytes,
            "Record Size (bytes)": round(self.avg_record_bytes, 1),
            "# of Scalar val. (min, max, avg)": f"{minimum}, {maximum}, {round(average, 1)}",
            "Max. Depth": self.max_depth,
            "Dominant Type": self.dominant_type,
            "Union Type?": "Yes" if self.has_union_types else "No",
            "Distinct field names": self.distinct_field_names,
        }


def _scan_value(value: Any, depth: int, type_counter: Counter, field_names: set,
                field_types: Dict[str, set]) -> Tuple[int, int]:
    """Return (scalar_count, max_depth) of one value subtree."""
    if isinstance(value, Missing):
        return 0, depth
    if isinstance(value, dict):
        scalars, deepest = 0, depth
        for name, child in value.items():
            field_names.add(name)
            child_tag = type_tag_of(child) if not isinstance(child, Missing) else TypeTag.MISSING
            field_types.setdefault(name, set()).add(child_tag)
            child_scalars, child_depth = _scan_value(child, depth + 1, type_counter,
                                                     field_names, field_types)
            scalars += child_scalars
            deepest = max(deepest, child_depth)
        return scalars, deepest
    if isinstance(value, (list, tuple, AMultiset)):
        items = value.items if isinstance(value, AMultiset) else value
        scalars, deepest = 0, depth
        for item in items:
            child_scalars, child_depth = _scan_value(item, depth + 1, type_counter,
                                                     field_names, field_types)
            scalars += child_scalars
            deepest = max(deepest, child_depth)
        return scalars, deepest
    tag = type_tag_of(value)
    type_counter[tag] += 1
    return 1, depth


def dataset_statistics(records: Iterable[Dict[str, Any]]) -> DatasetStatistics:
    """Compute Table 1-style statistics over a record sample."""
    type_counter: Counter = Counter()
    field_names: set = set()
    field_types: Dict[str, set] = {}
    scalar_counts: List[int] = []
    depths: List[int] = []
    total_bytes = 0
    count = 0
    for record in records:
        count += 1
        scalars, depth = _scan_value(record, 0, type_counter, field_names, field_types)
        scalar_counts.append(scalars)
        depths.append(depth)
        total_bytes += len(json.dumps(record, default=str))
    if count == 0:
        raise ValueError("cannot compute statistics over an empty sample")
    dominant_tag, _ = max(type_counter.items(), key=lambda pair: pair[1])
    has_union = any(len(tags - {TypeTag.NULL, TypeTag.MISSING}) > 1 for tags in field_types.values())
    return DatasetStatistics(
        record_count=count,
        total_json_bytes=total_bytes,
        avg_record_bytes=total_bytes / count,
        scalar_counts=(min(scalar_counts), max(scalar_counts), sum(scalar_counts) / count),
        max_depth=max(depths),
        dominant_type=dominant_tag.name.title(),
        has_union_types=has_union,
        distinct_field_names=len(field_names),
    )
