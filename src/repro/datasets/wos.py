"""Synthetic Web-of-Science-like dataset and its four evaluation queries.

The paper's WoS dataset is 253 GB of publication metadata converted from XML
to JSON (Table 1: ~6.2 KB/record, deep nesting, strings dominant, and —
because of the XML conversion — *union-typed* fields where a value is
sometimes a single object and sometimes an array of objects).  This
generator reproduces those characteristics: publications with authors,
addresses, funding, subject categories, and an ``addresses.address_name``
field that is an object for single-institute papers and an array of objects
otherwise, which is exactly the heterogeneity the tuple compactor's union
nodes have to absorb.

``QUERIES`` holds the four queries of Appendix A.2:

* Q1 — ``COUNT(*)``
* Q2 — top-10 subject categories by number of publications
* Q3 — top-10 countries co-publishing with US institutes
* Q4 — top-10 country pairs by number of co-published articles
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Any, Dict, Iterator, List

from ..query import And, Comparison, Func, QuerySpec, Var, field, lit, register_function, scan

DEFAULT_SCALE = 2500

_COUNTRIES = ["USA", "China", "Germany", "UK", "Japan", "France", "Saudi Arabia",
              "Canada", "South Korea", "Brazil", "India", "Australia"]
_SUBJECTS = ["Computer Science", "Physics", "Chemistry", "Biology", "Mathematics",
             "Medicine", "Engineering", "Materials Science", "Economics", "Psychology"]
_INSTITUTES = ["UC Irvine", "KACST", "MIT", "Tsinghua", "Max Planck", "Oxford",
               "U Tokyo", "Sorbonne", "KAIST", "USP"]
_WORDS = ("study analysis results method data model system experiment evaluation approach "
          "novel framework performance distributed storage query compaction schema").split()


def _address(rng: random.Random) -> Dict[str, Any]:
    return {
        "address_spec": {
            "country": rng.choice(_COUNTRIES),
            "city": f"City{rng.randrange(0, 50)}",
            "organizations": {"organization": rng.choice(_INSTITUTES)},
            "zip": {"location": "post", "value": f"{rng.randrange(10000, 99999)}"},
        }
    }


def generate(count: int = DEFAULT_SCALE, seed: int = 11, start_id: int = 0) -> Iterator[Dict[str, Any]]:
    """Yield ``count`` publication records with deterministic content."""
    rng = random.Random(seed)
    for offset in range(count):
        publication_id = start_id + offset
        n_authors = rng.randrange(1, 6)
        n_addresses = rng.choice([1, 1, 2, 2, 3, 4])
        addresses: Any = [_address(rng) for _ in range(n_addresses)]
        if n_addresses == 1 and rng.random() < 0.5:
            # The XML-to-JSON conversion artifact: a single address is an
            # object, multiple addresses are an array -> union(object, array).
            addresses = addresses[0]
        n_subjects = rng.randrange(1, 4)
        record = {
            "id": publication_id,
            "UID": f"WOS:{publication_id:012d}",
            "static_data": {
                "summary": {
                    "pub_info": {
                        "pubyear": 1980 + publication_id % 37,
                        "pubtype": rng.choice(["Journal", "Conference", "Book"]),
                        "page_count": rng.randrange(4, 40),
                        "has_abstract": rng.random() < 0.8,
                    },
                    "titles": {
                        "title": " ".join(rng.choice(_WORDS) for _ in range(rng.randrange(6, 14))).title(),
                        "source": f"Journal of {rng.choice(_SUBJECTS)}",
                    },
                    "names": {
                        "count": n_authors,
                        "name": [
                            {
                                "display_name": f"Author {rng.randrange(0, 5000)}",
                                "seq_no": index + 1,
                                "role": "author",
                                "reprint": "Y" if index == 0 else "N",
                            }
                            for index in range(n_authors)
                        ],
                    },
                },
                "fullrecord_metadata": {
                    "addresses": {"count": n_addresses, "address_name": addresses},
                    "category_info": {
                        "subjects": {
                            "subject": [
                                {"ascatype": rng.choice(["traditional", "extended"]),
                                 "value": rng.choice(_SUBJECTS)}
                                for _ in range(n_subjects)
                            ]
                        }
                    },
                    "fund_ack": {
                        "grants": {
                            "grant": [{"grant_agency": rng.choice(_INSTITUTES),
                                       "grant_ids": {"grant_id": f"G-{rng.randrange(10**6):06d}"}}
                                      for _ in range(rng.choice([0, 0, 1, 2]))]
                        }
                    } if rng.random() < 0.6 else None,
                    "abstracts": {
                        "abstract": {
                            "abstract_text": {
                                "p": " ".join(rng.choice(_WORDS) for _ in range(rng.randrange(40, 120))),
                            }
                        }
                    },
                },
            },
            "dynamic_data": {
                "citation_related": {
                    "tc_list": {"silo_tc": {"local_count": rng.randrange(0, 500), "coll_id": "WOS"}}
                }
            },
        }
        yield record


# ---------------------------------------------------------------------------
# Appendix A.2 queries
# ---------------------------------------------------------------------------

_ADDRESS_PATH = ("static_data", "fullrecord_metadata", "addresses", "address_name")
_SUBJECT_PATH = ("static_data", "fullrecord_metadata", "category_info", "subjects", "subject")


def _register_pair_function() -> None:
    """Register the country-pair helper used by Q4 (ordered 2-combinations)."""

    def array_pairs(values):
        if not isinstance(values, list):
            return []
        ordered = sorted({value for value in values if isinstance(value, str)})
        return [list(pair) for pair in combinations(ordered, 2)]

    register_function("array_pairs", array_pairs)

    def to_array(value):
        """XML-conversion artifact helper: wrap lone objects into an array."""
        if isinstance(value, list):
            return value
        if value is None:
            return []
        return [value]

    register_function("to_array", to_array)


_register_pair_function()


def q1_count() -> QuerySpec:
    """SELECT VALUE count(*) FROM Publications."""
    return scan("t").count_star().build()


def q2_top_subjects() -> QuerySpec:
    """Top-10 subject categories (UNNEST subjects, filter ascatype, GROUP BY)."""
    return (scan("t")
            .unnest(field("t", *_SUBJECT_PATH), "subject")
            .where(Comparison("=", field("subject", "ascatype"), lit("extended")))
            .group_by(("v", field("subject", "value")))
            .aggregate("cnt", "count", None)
            .order_by("cnt", descending=True)
            .limit(10)
            .build())


def q3_us_collaborators() -> QuerySpec:
    """Top-10 countries that co-published the most with US-based institutes.

    The record-level predicates (multi-country, includes USA) and the
    item-level predicate (country != USA) are combined into one conjunction
    evaluated after the UNNEST, which is equivalent for this query because
    the record-level predicates do not depend on the unnested item.
    """
    return (scan("t")
            .let("countries", Func("array_distinct",
                                   field("t", *(_ADDRESS_PATH + ("*", "address_spec", "country")))))
            .unnest(Var("countries"), "country")
            .where(And(
                Func("is_array", field("t", *_ADDRESS_PATH)),
                Comparison(">", Func("array_count", Var("countries")), lit(1)),
                Func("array_contains", Var("countries"), lit("USA")),
                Comparison("!=", Var("country"), lit("USA")),
            ))
            .group_by(("country", Var("country")))
            .aggregate("cnt", "count", None)
            .order_by("cnt", descending=True)
            .limit(10)
            .build())


def q4_country_pairs() -> QuerySpec:
    """Top-10 pairs of countries with the most co-published articles."""
    return (scan("t")
            .let("countries", Func("array_distinct",
                                   field("t", *(_ADDRESS_PATH + ("*", "address_spec", "country")))))
            .let("pairs", Func("array_pairs", Var("countries")))
            .where(And(Func("is_array", field("t", *_ADDRESS_PATH)),
                       Comparison(">", Func("array_count", Var("countries")), lit(1))))
            .unnest(Var("pairs"), "pair")
            .group_by(("pair", Var("pair")))
            .aggregate("cnt", "count", None)
            .order_by("cnt", descending=True)
            .limit(10)
            .build())


QUERIES = {
    "Q1": q1_count,
    "Q2": q2_top_subjects,
    "Q3": q3_us_collaborators,
    "Q4": q4_country_pairs,
}

_ADDRESS_SQLPP = "t." + ".".join(_ADDRESS_PATH)
_SUBJECT_SQLPP = "t." + ".".join(_SUBJECT_PATH)

#: SQL++ text versions of the same queries.  ``[*]`` is the wildcard path
#: step the engine's record views understand (the paper's consolidated
#: ``getValues`` shape); ``array_pairs`` is the workload-registered function
#: above.  tests/test_sqlpp_parity.py asserts result parity with ``QUERIES``.
SQLPP = {
    "Q1": "SELECT VALUE count(*) FROM Publications AS t",
    "Q2": f"""
        SELECT v, count(*) AS cnt
        FROM Publications AS t
        UNNEST {_SUBJECT_SQLPP} AS subject
        WHERE subject.ascatype = 'extended'
        GROUP BY subject.value AS v
        ORDER BY cnt DESC
        LIMIT 10
    """,
    "Q3": f"""
        SELECT country, count(*) AS cnt
        FROM Publications AS t
        LET countries = array_distinct({_ADDRESS_SQLPP}[*].address_spec.country)
        UNNEST countries AS country
        WHERE is_array({_ADDRESS_SQLPP})
          AND array_count(countries) > 1
          AND array_contains(countries, 'USA')
          AND country != 'USA'
        GROUP BY country
        ORDER BY cnt DESC
        LIMIT 10
    """,
    "Q4": f"""
        SELECT pair, count(*) AS cnt
        FROM Publications AS t
        LET countries = array_distinct({_ADDRESS_SQLPP}[*].address_spec.country),
            pairs = array_pairs(countries)
        UNNEST pairs AS pair
        WHERE is_array({_ADDRESS_SQLPP})
          AND array_count(countries) > 1
        GROUP BY pair
        ORDER BY cnt DESC
        LIMIT 10
    """,
}
