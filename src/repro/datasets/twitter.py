"""Synthetic Twitter-like dataset and its four evaluation queries.

The paper's Twitter dataset is 200 GB of real tweets collected through the
Twitter API and replicated tenfold (Table 1: ~2.7 KB/record, strings
dominant, max nesting depth 8, 53–208 scalar values per record).  The API
data is not redistributable, so this generator produces records with the
same *structural* characteristics — a user object, entity arrays with
hashtag objects, nested place/coordinates objects, and a long text field —
at a configurable scale.  Roughly one record in ``sparse_every`` carries a
few extra rarely-seen fields so the inferred schema keeps growing slowly,
as it does for real tweets.

``QUERIES`` holds the four queries of Appendix A.1:

* Q1 — ``COUNT(*)``
* Q2 — top-10 users by average tweet length (GROUP BY / ORDER BY)
* Q3 — top-10 users with most tweets containing the hashtag ``jobs``
  (EXISTS / GROUP BY / ORDER BY)
* Q4 — full scan ordered by the tweet timestamp (SELECT * / ORDER BY)
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, Optional

from ..query import Comparison, Exists, Func, QuerySpec, field, lit, scan

#: Default number of records used by the benchmark harness (scaled from the
#: paper's 77.6 M tweets down to something a laptop reproduces in seconds).
DEFAULT_SCALE = 4000

_HASHTAGS = ["jobs", "hiring", "career", "news", "sports", "music", "python",
             "data", "travel", "food", "vldb", "asterixdb"]
_CITIES = ["Irvine", "Riyadh", "Seattle", "Boston", "Austin", "Denver"]
_SOURCES = ["web", "android", "iphone", "ipad", "bot"]
_WORDS = ("lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor "
          "incididunt ut labore et dolore magna aliqua").split()


def generate(count: int = DEFAULT_SCALE, seed: int = 7, start_id: int = 0,
             timestamp_base: int = 1_556_496_000_000) -> Iterator[Dict[str, Any]]:
    """Yield ``count`` tweet-like records with deterministic content."""
    rng = random.Random(seed)
    for offset in range(count):
        tweet_id = start_id + offset
        user_id = rng.randrange(0, max(10, count // 20))
        n_hashtags = rng.choice([0, 1, 1, 2, 3])
        hashtags = [
            {"text": rng.choice(_HASHTAGS), "indices": [rng.randrange(0, 80), rng.randrange(80, 140)]}
            for _ in range(n_hashtags)
        ]
        text_words = rng.randrange(8, 25)
        record = {
            "id": tweet_id,
            "timestamp_ms": timestamp_base + tweet_id,
            "text": " ".join(rng.choice(_WORDS) for _ in range(text_words)),
            "lang": rng.choice(["en", "en", "en", "es", "ar", "fr"]),
            "source": rng.choice(_SOURCES),
            "retweet_count": rng.randrange(0, 1000),
            "favorite_count": rng.randrange(0, 5000),
            "truncated": rng.random() < 0.1,
            "created_at": f"2019-04-2{rng.randrange(0, 10)}T0{rng.randrange(0, 10)}:00:00Z",
            "in_reply_to_screen_name": f"u{rng.randrange(0, 1000):05d}" if rng.random() < 0.2 else None,
            "user": {
                "id": user_id,
                "name": f"user_{user_id}",
                "screen_name": f"u{user_id:05d}",
                "description": " ".join(rng.choice(_WORDS) for _ in range(rng.randrange(3, 10))),
                "created_at": f"20{rng.randrange(10, 19)}-01-01T00:00:00Z",
                "profile_image_url": f"https://pbs.twimg.com/profile/{user_id}.jpg",
                "time_zone": rng.choice(["PST", "EST", "GMT", "AST", None]),
                "followers_count": rng.randrange(0, 100000),
                "friends_count": rng.randrange(0, 5000),
                "statuses_count": rng.randrange(1, 200000),
                "verified": rng.random() < 0.05,
                "location": {"city": rng.choice(_CITIES), "country_code": "US"},
            },
            "entities": {
                "hashtags": hashtags,
                "urls": [{"url": f"https://t.co/{tweet_id:x}", "expanded": rng.random() < 0.5}]
                if rng.random() < 0.3 else [],
                "user_mentions": [
                    {"screen_name": f"u{rng.randrange(0, 1000):05d}", "indices": [0, 8]}
                    for _ in range(rng.choice([0, 0, 1, 2]))
                ],
            },
            "coordinates": {
                "type": "Point",
                "coordinates": [round(rng.uniform(-180, 180), 5), round(rng.uniform(-90, 90), 5)],
            } if rng.random() < 0.2 else None,
        }
        if rng.random() < 0.05:
            # Occasional extra fields: the schema keeps evolving slowly.
            record["withheld_in_countries"] = ["XX"]
            record["possibly_sensitive"] = rng.random() < 0.5
        if rng.random() < 0.1:
            record["place"] = {
                "full_name": f"{rng.choice(_CITIES)}, USA",
                "place_type": "city",
                "bounding_box": {"type": "Polygon",
                                 "coords": [round(rng.uniform(-120, -70), 3) for _ in range(4)]},
            }
        yield record


def generate_update(record: Dict[str, Any], rng: random.Random,
                    allow_retype: bool = True) -> Dict[str, Any]:
    """Produce an updated version of a tweet (for the 50 %-update feed).

    Updates add fields, remove fields, or change a value's type — the three
    kinds of structural change the paper's update experiment exercises.
    ``allow_retype=False`` restricts updates to add/remove, which is what a
    dataset with a fully *declared* (closed) schema can legally accept.
    """
    updated = dict(record)
    actions = ["add", "remove", "retype"] if allow_retype else ["add", "remove"]
    action = rng.choice(actions)
    if action == "add":
        updated["edit_history"] = {"edits": rng.randrange(1, 5), "editable": True}
    elif action == "remove":
        for candidate in ("coordinates", "source", "truncated"):
            if candidate in updated:
                updated.pop(candidate)
                break
    else:
        updated["retweet_count"] = str(updated.get("retweet_count", 0))
    return updated


# ---------------------------------------------------------------------------
# Appendix A.1 queries
# ---------------------------------------------------------------------------

def q1_count() -> QuerySpec:
    """SELECT VALUE count(*) FROM Tweets."""
    return scan("t").count_star().build()


def q2_top_users_by_avg_length() -> QuerySpec:
    """Top-10 users whose tweets' average length is largest."""
    return (scan("t")
            .group_by(("uname", field("t", "user", "name")))
            .aggregate("a", "avg", Func("length", field("t", "text")))
            .order_by("a", descending=True)
            .limit(10)
            .build())


def q3_top_users_with_hashtag(hashtag: str = "jobs") -> QuerySpec:
    """Top-10 users with the most tweets containing a popular hashtag."""
    predicate = Comparison("=", Func("lowercase", field("ht", "text")), lit(hashtag))
    return (scan("t")
            .where(Exists(field("t", "entities", "hashtags"), "ht", predicate))
            .group_by(("uname", field("t", "user", "name")))
            .aggregate("c", "count", None)
            .order_by("c", descending=True)
            .limit(10)
            .build())


def q4_order_by_timestamp() -> QuerySpec:
    """SELECT * FROM Tweets ORDER BY timestamp_ms."""
    return (scan("t")
            .select_record()
            .order_by(field("t", "timestamp_ms"))
            .build())


QUERIES = {
    "Q1": q1_count,
    "Q2": q2_top_users_by_avg_length,
    "Q3": q3_top_users_with_hashtag,
    "Q4": q4_order_by_timestamp,
}

#: The same four queries as SQL++ text (Appendix A.1 verbatim, modulo the
#: dataset name).  ``repro.sqlpp`` compiles each to a plan equivalent to its
#: ``QUERIES`` twin — tests/test_sqlpp_parity.py asserts result parity.
SQLPP = {
    "Q1": "SELECT VALUE count(*) FROM Tweets AS t",
    "Q2": """
        SELECT uname, avg(length(t.text)) AS a
        FROM Tweets AS t
        GROUP BY t.user.name AS uname
        ORDER BY a DESC
        LIMIT 10
    """,
    "Q3": """
        SELECT uname, count(*) AS c
        FROM Tweets AS t
        WHERE SOME ht IN t.entities.hashtags SATISFIES lowercase(ht.text) = 'jobs'
        GROUP BY t.user.name AS uname
        ORDER BY c DESC
        LIMIT 10
    """,
    "Q4": "SELECT * FROM Tweets AS t ORDER BY t.timestamp_ms",
}
