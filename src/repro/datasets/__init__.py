"""Synthetic workload generators mirroring the paper's three datasets."""

from . import sensors, twitter, wos
from .stats import DatasetStatistics, dataset_statistics

__all__ = ["twitter", "wos", "sensors", "DatasetStatistics", "dataset_statistics"]
