"""Engine-specific AST lint framework.

Generic linters cannot know that this engine's locks form a hierarchy, that
its ``REPRO_*`` knobs must be documented, or that the row and batch query
pipelines dispatch over the same expression nodes — so this module is a
small visitor framework for *project rules*: each rule inspects parsed
modules (and, for cross-file invariants, the whole project at once) and
emits :class:`Finding` objects with a stable rule id, a severity, and an
exact ``file:line`` anchor.

Vocabulary:

* a **Module** is one parsed source file (path, source text, AST, lines);
* a **Project** is every scanned module plus repo-level context the rules
  need (the README text for the knob-table check);
* a **Rule** implements ``check_module`` (per-file findings) and/or
  ``finalize`` (whole-project findings, run after every file was seen);
* a finding is **suppressed** by a ``# repro-lint: disable=RULE`` comment on
  the flagged line or the line directly above it (several ids may be
  comma-separated); suppression is deliberate and visible in review.

Severities: ``error`` findings make :func:`run_analysis` (and the
``python -m repro.analysis`` CLI) exit non-zero; ``warning`` findings are
reported but only fail under ``--strict``.  The shipped tree must stay free
of both — CI runs the linter as its own job.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source line."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.severity}: {self.message}"


class Module:
    """One parsed source file."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: Path relative to the scan root, using "/" separators (stable rule
        #: anchors like ``query/expressions.py`` match against this).
        self.rel = rel
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def line_text(self, line_no: int) -> str:
        if 1 <= line_no <= len(self.lines):
            return self.lines[line_no - 1]
        return ""

    def suppressed_rules(self, line_no: int) -> Iterator[str]:
        """Rule ids disabled for ``line_no`` (same line or the line above)."""
        for candidate in (line_no, line_no - 1):
            match = _SUPPRESS_RE.search(self.line_text(candidate))
            if match:
                for rule_id in match.group(1).split(","):
                    rule_id = rule_id.strip()
                    if rule_id:
                        yield rule_id


@dataclass
class Project:
    """Everything the rules may look at: the modules plus repo context."""

    root: Path
    modules: List[Module] = field(default_factory=list)
    #: README text for documentation-drift rules; empty when no README was
    #: found near the scan root (the rule then only checks accessor usage).
    readme_text: str = ""

    def module_by_suffix(self, suffix: str) -> Optional[Module]:
        """The unique module whose relative path ends with ``suffix``."""
        for module in self.modules:
            if module.rel.endswith(suffix):
                return module
        return None


class Rule:
    """Base class for one lint rule."""

    rule_id: str = "RULE000"
    severity: str = SEVERITY_ERROR
    description: str = ""

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        """Per-file findings (default: none)."""
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Whole-project findings, after every module was checked."""
        return ()

    def finding(self, module_or_rel, line: int, message: str,
                severity: Optional[str] = None) -> Finding:
        rel = module_or_rel.rel if isinstance(module_or_rel, Module) else str(module_or_rel)
        return Finding(rule_id=self.rule_id, severity=severity or self.severity,
                       path=rel, line=line, message=message)


# ---------------------------------------------------------------------------
# scanning
# ---------------------------------------------------------------------------

def collect_modules(paths: Sequence[Path], root: Optional[Path] = None) -> Tuple[List[Module], List[Finding]]:
    """Parse every ``.py`` file under ``paths`` (files or directories).

    Unparsable files become findings (rule ``PARSE``) instead of crashing
    the run — a syntax error must fail the lint job, not hide it.
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules: List[Module] = []
    errors: List[Finding] = []
    base = root if root is not None else _common_root(files)
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(Finding("PARSE", SEVERITY_ERROR, _relative(file_path, base),
                                  line, f"cannot parse: {exc}"))
            continue
        modules.append(Module(file_path, _relative(file_path, base), source, tree))
    return modules, errors


def _common_root(files: Sequence[Path]) -> Path:
    if not files:
        return Path(".")
    parents = [file_path.resolve().parent for file_path in files]
    common = parents[0]
    for parent in parents[1:]:
        while common not in (parent, *parent.parents):
            if common.parent == common:
                break
            common = common.parent
    return common


def _relative(file_path: Path, base: Path) -> str:
    try:
        rel = file_path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = file_path
    return str(rel).replace("\\", "/")


def find_readme(start: Path) -> str:
    """README text for the knob-table rule: walk up from the scan root."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        readme = candidate / "README.md"
        if readme.is_file():
            return readme.read_text(encoding="utf-8")
    return ""


def run_analysis(paths: Sequence[Path], rules: Sequence[Rule],
                 readme_text: Optional[str] = None,
                 root: Optional[Path] = None) -> List[Finding]:
    """Run ``rules`` over every module under ``paths``; return live findings.

    Suppressed findings are dropped here (centrally), so individual rules
    never need to know about the ``# repro-lint: disable=`` syntax.
    """
    modules, parse_errors = collect_modules(paths, root=root)
    scan_root = root if root is not None else (paths[0] if paths else Path("."))
    project = Project(root=Path(scan_root),
                      modules=modules,
                      readme_text=readme_text if readme_text is not None
                      else find_readme(Path(scan_root)))
    findings: List[Finding] = list(parse_errors)
    by_rel: Dict[str, Module] = {module.rel: module for module in modules}
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module, project))
        findings.extend(rule.finalize(project))
    live = []
    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and finding.rule_id in set(module.suppressed_rules(finding.line)):
            continue
        live.append(finding)
    live.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return live


def render_report(findings: Sequence[Finding], rules: Sequence[Rule],
                  scanned: Optional[int] = None) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    scope = f" ({scanned} files scanned, {len(rules)} rules)" if scanned is not None else ""
    if findings:
        lines.append(f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s){scope}")
    else:
        lines.append(f"clean: no findings{scope}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared AST helpers used by several rules
# ---------------------------------------------------------------------------

def self_attribute(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains (empty string otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
