"""Central lock hierarchy for the engine.

Every ``threading.Lock``/``threading.RLock`` created in ``src/repro`` must be
declared here with a **level**; LOCK002 fails the lint run for any lock
attribute missing from this table (and for stale declarations whose class or
attribute no longer exists).  The discipline is classic lock leveling:

    a thread holding a lock at level *L* may only acquire locks at levels
    strictly below *L*.

If every acquisition path descends the table, no cycle can form in the
lock-order graph and the engine is deadlock-free by construction.  The
dynamic tracker (:mod:`repro.analysis.locktrack`) checks the same invariant
at runtime against the acquisition orders tier-1 tests actually perform.

Levels follow the engine's real call topology, top (outermost) to bottom:
LSM maintenance orchestrates everything, so it sits highest; it nests the
rotation condition, submits to the scheduler, and calls into WAL / buffer
cache / device; those in turn publish metrics, which bottom out in
per-instrument locks.  The tracker's own bookkeeping lock is the floor.

``allows_blocking=True`` exempts a lock from LOCK001 (no blocking calls
while held).  Only two locks carry it: ``_maintenance_lock`` *deliberately*
holds across flush/merge device I/O (that is its job — serializing
maintenance passes per index), and the tracer's ``_export_lock`` exists
precisely to serialize export-file writes without holding the span-state
lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class LockDecl:
    """One declared lock: where it lives, its level, and its blocking policy."""

    #: Class owning the lock attribute.
    owner: str
    #: Attribute name (``self.<attr>``).
    attr: str
    #: Hierarchy level — acquisitions must strictly descend.
    level: int
    #: "lock", "rlock", or "condition" (a Condition wraps a Lock: acquiring
    #: the condition acquires that lock, so it holds a level like any other).
    kind: str
    #: Module (relative to ``src/repro``) where the lock is created.
    module: str
    #: Whether blocking calls (sleep, device/file I/O, future.result) are
    #: permitted while this lock is held.  Keep this list short.
    allows_blocking: bool = False
    #: One-line justification shown in reports.
    doc: str = ""

    @property
    def key(self) -> str:
        return f"{self.owner}.{self.attr}"


_DECLS: Tuple[LockDecl, ...] = (
    LockDecl("LSMBTree", "_maintenance_lock", 100, "lock", "lsm/lsm_index.py",
             allows_blocking=True,
             doc="serializes flush/merge passes per index; held across device I/O by design"),
    LockDecl("LSMBTree", "_rotation_cond", 90, "condition", "lsm/lsm_index.py",
             doc="guards memtable rotation state; writers wait on it for backpressure"),
    LockDecl("LSMIOScheduler", "_lock", 80, "lock", "lsm/scheduler.py",
             doc="guards the background task queue (the _idle condition shares it)"),
    LockDecl("LSMBTree", "_read_lock", 70, "lock", "lsm/lsm_index.py",
             doc="guards the active-reader count and deferred component drops"),
    LockDecl("WriteAheadLog", "_lock", 60, "lock", "storage/wal.py",
             doc="serializes record append / LSN assignment / truncation"),
    LockDecl("BufferCache", "_lock", 50, "rlock", "storage/buffer_cache.py",
             doc="guards the frame table; miss fetches run outside it"),
    LockDecl("SimulatedStorageDevice", "_lock", 40, "lock", "storage/device.py",
             doc="guards byte/op counters; simulated latency sleeps run outside it"),
    LockDecl("FaultInjector", "_lock", 35, "lock", "faults/injector.py",
             doc="guards fault-rule state (hit counters, RNG streams); the "
                 "injected raise happens after release"),
    LockDecl("LimitCancellation", "_lock", 30, "lock", "query/executor.py",
             doc="guards the cross-partition row-budget counter for LIMIT pushdown"),
    LockDecl("PlanCache", "_lock", 26, "lock", "cache/plan_cache.py",
             doc="guards the physical-plan LRU map; plan compilation and "
                 "metric updates run outside it"),
    LockDecl("ColumnSliceCache", "_lock", 25, "lock", "cache/column_cache.py",
             doc="guards the slice-chunk LRU map and byte accounting; "
                 "decode work and metric updates run outside it"),
    LockDecl("Tracer", "_lock", 20, "lock", "obs/tracing.py",
             doc="guards span buffers and tracer enable state"),
    LockDecl("Tracer", "_export_lock", 15, "lock", "obs/tracing.py",
             allows_blocking=True,
             doc="serializes export-file writes so _lock never covers file I/O"),
    LockDecl("MetricsRegistry", "_lock", 12, "lock", "obs/metrics.py",
             doc="guards the instrument table (create/lookup)"),
    LockDecl("Counter", "_lock", 10, "lock", "obs/metrics.py",
             doc="guards one counter's per-label cells"),
    LockDecl("Gauge", "_lock", 10, "lock", "obs/metrics.py",
             doc="guards one gauge's per-label cells"),
    LockDecl("Histogram", "_lock", 10, "lock", "obs/metrics.py",
             doc="guards one histogram's buckets"),
    LockDecl("LockTracker", "_lock", 5, "lock", "analysis/locktrack.py",
             doc="the tracker's own bookkeeping; floor of the hierarchy"),
)

#: ``"Owner.attr" -> LockDecl`` — the table LOCK002 and locktrack consult.
LOCK_HIERARCHY: Dict[str, LockDecl] = {decl.key: decl for decl in _DECLS}

# Instrument locks share level 10 on purpose: Counter/Gauge/Histogram locks
# are leaves (no code acquires one instrument's lock while holding
# another's), and giving the three classes one level keeps the table honest
# about their equivalence.  Same-level *acquisition* is still a violation —
# descent must be strict — so the tracker would catch instrument-lock
# nesting if it ever appeared.


def level_of(key: str) -> int:
    """Hierarchy level for ``"Owner.attr"``; raises KeyError when undeclared."""
    return LOCK_HIERARCHY[key].level


def is_declared(key: str) -> bool:
    return key in LOCK_HIERARCHY
