"""OBS001: metric naming convention and cross-module uniqueness.

Metric identity in this engine is ``name{label=...}``: snake_case name,
labels given as keyword arguments at the publish site
(``registry.counter("lsm_flushes")``,
``get_registry().counter("events_total", event=name)``).  The registry
already raises at runtime when one name is reused with a different
instrument type or label set — but only if both call sites actually
execute in the same process.  This rule proves the invariant statically
across the whole tree:

* names must match ``[a-z][a-z0-9_]*`` (no dots, dashes, or CamelCase);
* one name must map to exactly one instrument kind (counter/gauge/
  histogram) and one label set, across every module.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from ..lint import Finding, Module, Project, Rule

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_INSTRUMENT_KINDS = ("counter", "gauge", "histogram")


class MetricNameRule(Rule):
    """OBS001: metric names are well-formed and globally unique."""

    rule_id = "OBS001"
    description = ("metric names match [a-z][a-z0-9_]* and each name keeps "
                   "one instrument kind and one label set project-wide")

    def __init__(self) -> None:
        #: name -> (kind, labels, module rel, line) of the first publish site.
        self._seen: Dict[str, Tuple[str, Tuple[str, ...], str, int]] = {}

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        if module.rel.endswith("obs/metrics.py"):
            # The registry module defines the instruments; its internal
            # helpers are not publish sites.
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INSTRUMENT_KINDS):
                continue
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            kind = node.func.attr
            name = node.args[0].value
            labels = tuple(sorted(keyword.arg for keyword in node.keywords
                                  if keyword.arg is not None))
            if not _METRIC_NAME_RE.match(name):
                findings.append(self.finding(
                    module, node.lineno,
                    f"metric name {name!r} violates the [a-z][a-z0-9_]* "
                    f"convention"))
                continue
            prior = self._seen.get(name)
            if prior is None:
                self._seen[name] = (kind, labels, module.rel, node.lineno)
                continue
            prior_kind, prior_labels, prior_rel, prior_line = prior
            if kind != prior_kind:
                findings.append(self.finding(
                    module, node.lineno,
                    f"metric {name!r} published as {kind} here but as "
                    f"{prior_kind} at {prior_rel}:{prior_line}"))
            elif labels != prior_labels:
                findings.append(self.finding(
                    module, node.lineno,
                    f"metric {name!r} published with labels {list(labels)} "
                    f"here but {list(prior_labels)} at {prior_rel}:{prior_line}"))
        return findings
