"""Lock-discipline rules: LOCK001, LOCK002, LOCK003.

* **LOCK001** — no blocking calls while holding a lock.  A ``with
  self._lock:`` body must not sleep, touch files or the simulated device,
  or wait on futures/threads; locks declared ``allows_blocking=True`` in
  the hierarchy are exempt (and that exemption is itself reviewed, because
  it lives in one table).
* **LOCK002** — every lock attribute is declared in
  :mod:`repro.analysis.lock_hierarchy` and statically visible nested
  acquisitions descend the hierarchy.  Also enforces that locks are
  created as ``threading.Lock()`` (not a bare ``Lock()`` from a
  ``from threading import Lock``) so creations are recognizable, and that
  ``threading.Condition()`` is never called without an explicit lock —
  the no-arg form manufactures an internal RLock the dynamic tracker
  cannot see.
* **LOCK003** — fields annotated ``# guarded-by: <lock>`` in ``__init__``
  must only be *written* inside methods that take that lock (or that are
  marked ``# requires-lock: <lock>``, meaning every caller must hold it).
  Reads are deliberately exempt: snapshot-read-outside-the-lock is an
  established idiom in this engine.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..lint import (
    Finding,
    Module,
    Project,
    Rule,
    SEVERITY_WARNING,
    dotted_name,
    iter_classes,
    iter_methods,
    self_attribute,
)
from ..lock_hierarchy import LOCK_HIERARCHY, LockDecl

#: Attribute-name shapes treated as locks even when (erroneously) undeclared,
#: so LOCK001 still applies while LOCK002 reports the missing declaration.
_LOCKISH_ATTR = re.compile(r".*(_lock|_cond|_mutex)$")

#: Calls that block: sleeping, file I/O, simulated-device I/O, futures.
_BLOCKING_DOTTED = {"time.sleep"}
_BLOCKING_METHODS = {"result", "read", "write", "flush", "readline", "readlines",
                     "read_page", "write_page", "delete_file"}

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
_REQUIRES_LOCK_RE = re.compile(r"#?\s*requires-lock:\s*(\w+)")

#: Method names whose call on a guarded field counts as a mutation.
_MUTATORS = {"append", "appendleft", "add", "remove", "discard", "pop",
             "popleft", "popitem", "clear", "update", "extend", "insert",
             "setdefault", "sort", "reverse"}


def _function_bodies_excluded(node: ast.AST) -> Iterable[ast.AST]:
    """Walk ``node`` without descending into nested function/lambda bodies.

    A blocking call inside a nested def only runs when the closure is later
    invoked — usually after the lock is released — so it is not a violation
    at this site.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _with_lock_attrs(node: ast.With, owner: str = "",
                     hierarchy: Optional[Dict[str, LockDecl]] = None) -> List[Tuple[str, ast.expr]]:
    """Lock ``self.<attr>`` context managers of one ``with`` statement.

    An attribute counts as a lock when its name looks lockish
    (``*_lock``/``*_cond``/``*_mutex``) or when ``Owner.attr`` is declared
    in the hierarchy (covering declared locks with unconventional names).
    """
    attrs = []
    for item in node.items:
        attr = self_attribute(item.context_expr)
        if attr is None:
            continue
        declared = hierarchy is not None and f"{owner}.{attr}" in hierarchy
        if declared or _LOCKISH_ATTR.match(attr):
            attrs.append((attr, item.context_expr))
    return attrs


def _is_blocking_call(node: ast.Call) -> Optional[str]:
    """Describe why ``node`` blocks, or ``None`` when it does not."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    dotted = dotted_name(func)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}()"
    if isinstance(func, ast.Attribute):
        if func.attr == "join" and not node.args and not node.keywords:
            # str.join always takes an iterable argument; a zero-argument
            # .join() is a thread/process join and blocks.
            return ".join()"
        if func.attr in _BLOCKING_METHODS:
            return f".{func.attr}()"
    return None


class BlockingUnderLockRule(Rule):
    """LOCK001: no blocking calls inside a ``with self._lock:`` body."""

    rule_id = "LOCK001"
    description = ("no blocking calls (sleep, file/device I/O, .result(), "
                   ".join()) while holding a lock")

    def __init__(self, hierarchy: Optional[Dict[str, LockDecl]] = None) -> None:
        self._hierarchy = LOCK_HIERARCHY if hierarchy is None else hierarchy

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node in iter_classes(module.tree):
            for node in ast.walk(class_node):
                if not isinstance(node, ast.With):
                    continue
                for attr, _ in _with_lock_attrs(node, class_node.name, self._hierarchy):
                    decl = self._hierarchy.get(f"{class_node.name}.{attr}")
                    if decl is not None and decl.allows_blocking:
                        continue
                    findings.extend(self._scan_body(module, class_node.name, attr, node))
        return findings

    def _scan_body(self, module: Module, owner: str, attr: str,
                   with_node: ast.With) -> Iterable[Finding]:
        for body_stmt in with_node.body:
            for node in _function_bodies_excluded(body_stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason = _is_blocking_call(node)
                if reason is not None:
                    yield self.finding(
                        module, node.lineno,
                        f"blocking call {reason} while holding {owner}.{attr} "
                        f"(declare allows_blocking in the lock hierarchy only "
                        f"if holding across I/O is the lock's documented job)")


class LockHierarchyRule(Rule):
    """LOCK002: locks are declared, created visibly, and acquired in order."""

    rule_id = "LOCK002"
    description = ("every threading.Lock/RLock/Condition attribute declares a "
                   "level in analysis/lock_hierarchy.py; nested acquisitions "
                   "descend the hierarchy")

    def __init__(self, hierarchy: Optional[Dict[str, LockDecl]] = None,
                 check_stale: bool = True) -> None:
        self._hierarchy = LOCK_HIERARCHY if hierarchy is None else hierarchy
        self._check_stale = check_stale
        self._creations: Set[str] = set()
        self._scanned_modules: Set[str] = set()

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        self._scanned_modules.add(module.rel)
        findings: List[Finding] = []
        findings.extend(self._check_bare_imports(module))
        for class_node in iter_classes(module.tree):
            findings.extend(self._check_creations(module, class_node))
            for method in iter_methods(class_node):
                findings.extend(self._check_ordering(module, class_node.name, method))
        return findings

    # -- creation checks ---------------------------------------------------

    def _check_bare_imports(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.ImportFrom) and node.module == "threading"):
                bare = [alias.name for alias in node.names
                        if alias.name in ("Lock", "RLock", "Condition")]
                if bare:
                    yield self.finding(
                        module, node.lineno,
                        f"bare `from threading import {', '.join(bare)}` — use "
                        f"`import threading` and `threading.{bare[0]}()` so lock "
                        f"creations are statically recognizable")

    def _check_creations(self, module: Module, class_node: ast.ClassDef) -> Iterable[Finding]:
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            kind = self._lock_kind(call)
            if kind is None:
                continue
            for target in node.targets:
                attr = self_attribute(target)
                if attr is None:
                    continue
                key = f"{class_node.name}.{attr}"
                if kind == "condition":
                    issue = self._check_condition_arg(call, class_node.name)
                    if issue is not None:
                        yield self.finding(module, node.lineno, issue)
                        continue
                    if issue is None and self._condition_aliases_declared_lock(call, class_node.name):
                        # Condition(self.X) over an already-declared lock is
                        # an alias, not a new lock: X's level covers it.
                        continue
                self._creations.add(key)
                if key not in self._hierarchy:
                    yield self.finding(
                        module, node.lineno,
                        f"lock {key} ({kind}) is not declared in "
                        f"analysis/lock_hierarchy.py — assign it a level")

    @staticmethod
    def _lock_kind(call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted == "threading.Lock":
            return "lock"
        if dotted == "threading.RLock":
            return "rlock"
        if dotted == "threading.Condition":
            return "condition"
        return None

    @staticmethod
    def _check_condition_arg(call: ast.Call, owner: str) -> Optional[str]:
        if not call.args:
            return ("threading.Condition() without an explicit lock creates an "
                    "internal RLock the dynamic tracker cannot see — pass "
                    "threading.Lock() (or a declared lock attribute)")
        return None

    def _condition_aliases_declared_lock(self, call: ast.Call, owner: str) -> bool:
        if not call.args:
            return False
        attr = self_attribute(call.args[0])
        return attr is not None and f"{owner}.{attr}" in self._hierarchy

    # -- ordering checks ---------------------------------------------------

    def _check_ordering(self, module: Module, owner: str,
                        method: ast.FunctionDef) -> Iterable[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, held: Tuple[Tuple[str, int], ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if isinstance(node, ast.With):
                acquired = list(held)
                for attr, context in _with_lock_attrs(node, owner, self._hierarchy):
                    key = f"{owner}.{attr}"
                    decl = self._hierarchy.get(key)
                    if decl is None:
                        continue
                    if acquired and decl.level >= acquired[-1][1]:
                        held_key, held_level = acquired[-1]
                        findings.append(self.finding(
                            module, node.lineno,
                            f"acquires {key} (level {decl.level}) while holding "
                            f"{held_key} (level {held_level}) — lock levels must "
                            f"strictly descend"))
                    acquired.append((key, decl.level))
                for child in node.body:
                    visit(child, tuple(acquired))
                return
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for statement in method.body:
            visit(statement, ())
        return findings

    # -- stale declarations ------------------------------------------------

    def finalize(self, project: Project) -> Iterable[Finding]:
        if not self._check_stale:
            return
        for decl in self._hierarchy.values():
            in_scan = any(rel == decl.module or rel.endswith("/" + decl.module)
                          for rel in self._scanned_modules)
            if in_scan and decl.key not in self._creations:
                yield self.finding(
                    decl.module, 1,
                    f"stale hierarchy entry: no `self.{decl.attr} = threading.*` "
                    f"creation found for {decl.key} in {decl.module}")


class GuardedByRule(Rule):
    """LOCK003: ``# guarded-by:`` fields only mutated under their lock."""

    rule_id = "LOCK003"
    severity = SEVERITY_WARNING
    description = ("fields annotated `# guarded-by: <lock>` must only be "
                   "written by methods taking that lock (or marked "
                   "`# requires-lock: <lock>`)")

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node in iter_classes(module.tree):
            guarded = self._guarded_fields(module, class_node)
            if not guarded:
                continue
            for method in iter_methods(class_node):
                if method.name == "__init__":
                    continue
                taken = self._locks_taken(method)
                required = self._locks_required(module, method)
                for node in ast.walk(method):
                    field = self._mutated_field(node)
                    if field is None or field not in guarded:
                        continue
                    lock_attr = guarded[field]
                    if lock_attr in taken or lock_attr in required:
                        continue
                    findings.append(self.finding(
                        module, node.lineno,
                        f"{class_node.name}.{field} is guarded-by {lock_attr} "
                        f"but {method.name}() mutates it without taking the "
                        f"lock (add `with self.{lock_attr}:` or mark the "
                        f"method `# requires-lock: {lock_attr}`)"))
        return findings

    @staticmethod
    def _guarded_fields(module: Module, class_node: ast.ClassDef) -> Dict[str, str]:
        guarded: Dict[str, str] = {}
        init = next((method for method in iter_methods(class_node)
                     if method.name == "__init__"), None)
        if init is None:
            return guarded
        for node in ast.walk(init):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                match = (_GUARDED_BY_RE.search(module.line_text(node.lineno))
                         or _GUARDED_BY_RE.search(module.line_text(node.lineno - 1)))
                if match is None:
                    continue
                for target in targets:
                    attr = self_attribute(target)
                    if attr is not None:
                        guarded[attr] = match.group(1)
        return guarded

    @staticmethod
    def _locks_taken(method: ast.FunctionDef) -> Set[str]:
        taken: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.With):
                for attr, _ in _with_lock_attrs(node):
                    taken.add(attr)
        return taken

    @staticmethod
    def _locks_required(module: Module, method: ast.FunctionDef) -> Set[str]:
        required: Set[str] = set()
        for line_no in (method.lineno, method.lineno - 1):
            match = _REQUIRES_LOCK_RE.search(module.line_text(line_no))
            if match:
                required.add(match.group(1))
        docstring = ast.get_docstring(method) or ""
        for match in _REQUIRES_LOCK_RE.finditer(docstring):
            required.add(match.group(1))
        return required

    @staticmethod
    def _mutated_field(node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = self_attribute(target)
                if attr is not None:
                    return attr
                if isinstance(target, ast.Subscript):
                    attr = self_attribute(target.value)
                    if attr is not None:
                        return attr
        if isinstance(node, ast.Delete):
            for target in node.targets:
                attr = self_attribute(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = self_attribute(target.value)
                if attr is not None:
                    return attr
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = self_attribute(node.func.value)
                if attr is not None:
                    return attr
        return None
