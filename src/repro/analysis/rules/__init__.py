"""Pluggable lint rules for ``python -m repro.analysis``.

Each rule lives in a themed module and is registered here;
:func:`default_rules` builds the fresh instances one analysis run uses
(rules are stateful across ``check_module`` calls, so instances are never
shared between runs).
"""

from __future__ import annotations

from typing import List

from ..lint import Rule
from .fault_rules import FaultPointRule
from .knob_rules import KnobAccessorRule
from .lock_rules import BlockingUnderLockRule, GuardedByRule, LockHierarchyRule
from .obs_rules import MetricNameRule
from .parity_rules import RowBatchParityRule

__all__ = [
    "BlockingUnderLockRule",
    "LockHierarchyRule",
    "GuardedByRule",
    "KnobAccessorRule",
    "FaultPointRule",
    "MetricNameRule",
    "RowBatchParityRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """The shipped rule set, in report order."""
    return [
        BlockingUnderLockRule(),
        LockHierarchyRule(),
        GuardedByRule(),
        KnobAccessorRule(),
        FaultPointRule(),
        MetricNameRule(),
        RowBatchParityRule(),
    ]
