"""FAULT001: fault-injection points stay registered and documented.

The fault injector looks points up by name at runtime, so a typo in a
``fire_fault("...")`` call site would create a point that can never be
configured (the injector rejects unregistered names — but only when a rule
targets it, which a typo'd name never does, so the call silently becomes a
no-op fault hook).  The chaos suite and operators both discover points from
the central registry, so every point must live there and in the README's
fault-point table:

* every name passed to ``fire_fault``/``corrupt_payload`` is declared in
  ``repro.faults.points.FAULT_POINTS`` (extracted statically from the
  literal ``FaultPoint("...")`` entries);
* every registered point is documented in the README fault-point table as
  `` `point.name` `` (the KNOB001 pattern);
* a registered point that no production code fires is reported as a
  warning — it is dead surface area the chaos suite believes it can pull.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..lint import SEVERITY_WARNING, Finding, Module, Project, Rule

#: The injector entry points whose first argument names a fault point.
_FIRE_FUNCTIONS = ("fire_fault", "corrupt_payload")

#: Module holding the central registry.
_POINTS_SUFFIX = "faults/points.py"


class FaultPointRule(Rule):
    """FAULT001: central registry + README documentation for fault points."""

    rule_id = "FAULT001"
    description = ("fault points fired via fire_fault/corrupt_payload are "
                   "declared in faults.points.FAULT_POINTS and documented "
                   "in the README fault-point table")

    def __init__(self) -> None:
        #: point name -> first (module rel, line) that fires it.
        self._fired: Dict[str, Tuple[str, int]] = {}

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        if module.rel.endswith(_POINTS_SUFFIX) or "faults/injector" in module.rel:
            # The registry itself and the injector (which fires points by
            # rule lookup, not literal name) are exempt.
            return []
        assigned = _string_assignments(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name not in _FIRE_FUNCTIONS or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self._fired.setdefault(first.value, (module.rel, node.lineno))
            elif isinstance(first, ast.Name):
                # fire_fault(point) where point was assigned string literals
                # (possibly via a conditional expression): every candidate
                # value counts as fired.
                for value in assigned.get(first.id, ()):
                    self._fired.setdefault(value, (module.rel, node.lineno))
        return []

    def finalize(self, project: Project) -> Iterable[Finding]:
        points_module = project.module_by_suffix(_POINTS_SUFFIX)
        registered = (_registered_points(points_module.tree)
                      if points_module is not None else {})
        for point, (rel, line) in sorted(self._fired.items()):
            if points_module is not None and point not in registered:
                yield self.finding(
                    rel, line,
                    f"fault point {point!r} is fired here but not declared "
                    f"in FAULT_POINTS ({_POINTS_SUFFIX}) — a rule targeting "
                    f"it would be rejected as unregistered")
        if points_module is None:
            return
        for point, line in sorted(registered.items(), key=lambda item: item[1]):
            if project.readme_text and f"`{point}`" not in project.readme_text:
                yield self.finding(
                    points_module.rel, line,
                    f"fault point {point} is registered but missing from "
                    f"the README fault-point table — document where it "
                    f"fires and what it aborts")
            if point not in self._fired:
                yield self.finding(
                    points_module.rel, line,
                    f"fault point {point} is registered but never fired by "
                    f"production code — remove it or wire it in",
                    severity=SEVERITY_WARNING)


def _string_assignments(tree: ast.Module) -> Dict[str, List[str]]:
    """Every string a simple name is assigned anywhere in the module.

    Covers ``point = "a.b"`` and ``point = "a.b" if cond else "c.d"`` —
    enough to resolve the scheduler's branch-dependent fire site.
    """
    values: Dict[str, List[str]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        candidates: List[ast.expr] = []
        if isinstance(node.value, ast.IfExp):
            candidates = [node.value.body, node.value.orelse]
        else:
            candidates = [node.value]
        for candidate in candidates:
            if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
                values.setdefault(node.targets[0].id, []).append(candidate.value)
    return values


def _registered_points(tree: ast.Module) -> Dict[str, int]:
    """Names of the literal ``FaultPoint("...")`` entries in FAULT_POINTS."""
    points: Dict[str, int] = {}
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "FaultPoint" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            points.setdefault(node.args[0].value, node.lineno)
    return points


__all__ = ["FaultPointRule"]
