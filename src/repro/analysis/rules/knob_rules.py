"""KNOB001: environment knobs go through one accessor and stay documented.

Two failure modes this rule exists for, both observed in real engines:

* a module reads ``os.environ`` directly, so the knob never shows up in any
  central inventory and silently diverges from the documented behaviour
  (different default, different truthy values);
* a knob is wired through the accessor but never added to the README table,
  so users cannot discover it.

The rule therefore enforces: (1) no ``os.environ``/``os.getenv`` outside the
config accessor module; (2) every knob name passed to
``env_str``/``env_flag``/``env_int`` — resolved through module-level string
constants like ``TRACE_ENV_VAR = "REPRO_TRACE"`` — appears in the README
knob table as `` `REPRO_X` ``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..lint import Finding, Module, Project, Rule, dotted_name

_KNOB_NAME_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: The accessor functions exported by ``repro.config``.
_ACCESSORS = ("env_str", "env_flag", "env_int", "env_float")


class KnobAccessorRule(Rule):
    """KNOB001: central accessor + README documentation for every knob."""

    rule_id = "KNOB001"
    description = ("REPRO_* knobs are read via repro.config env accessors "
                   "and documented in the README knob table")

    def __init__(self, accessor_suffix: str = "config.py") -> None:
        self._accessor_suffix = accessor_suffix
        #: knob name -> first (module rel, line) that reads it.
        self._knobs: Dict[str, Tuple[str, int]] = {}

    def check_module(self, module: Module, project: Project) -> Iterable[Finding]:
        is_accessor_module = (module.rel.endswith(self._accessor_suffix)
                              and "analysis/" not in module.rel)
        constants = _module_string_constants(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not is_accessor_module:
                findings.extend(self._check_direct_read(module, node))
            if isinstance(node, ast.Call):
                self._record_accessor_call(module, node, constants)
        # Knob names defined as module constants count as reads too: a
        # constant like TRACE_ENV_VAR documents intent even if the actual
        # accessor call resolves it indirectly.
        for name, (value, line) in constants.items():
            if name.endswith("_ENV_VAR") and _KNOB_NAME_RE.match(value):
                self._knobs.setdefault(value, (module.rel, line))
        return findings

    def _check_direct_read(self, module: Module, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute) and dotted_name(node) == "os.environ":
            yield self.finding(
                module, node.lineno,
                "direct os.environ access — read knobs through the "
                "repro.config env accessors (env_str/env_flag/env_int)")
        elif isinstance(node, ast.Call) and dotted_name(node.func) == "os.getenv":
            yield self.finding(
                module, node.lineno,
                "os.getenv() — read knobs through the repro.config env "
                "accessors (env_str/env_flag/env_int)")

    def _record_accessor_call(self, module: Module, node: ast.Call,
                              constants: Dict[str, Tuple[str, int]]) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name not in _ACCESSORS or not node.args:
            return
        knob = _resolve_string(node.args[0], constants)
        if knob is not None and _KNOB_NAME_RE.match(knob):
            self._knobs.setdefault(knob, (module.rel, node.lineno))

    def finalize(self, project: Project) -> Iterable[Finding]:
        if not project.readme_text:
            return
        for knob, (rel, line) in sorted(self._knobs.items()):
            if f"`{knob}`" not in project.readme_text:
                yield self.finding(
                    rel, line,
                    f"knob {knob} is read here but missing from the README "
                    f"knob table — document it (default + effect)")


def _module_string_constants(tree: ast.Module) -> Dict[str, Tuple[str, int]]:
    """Top-level ``NAME = "literal"`` assignments of a module."""
    constants: Dict[str, Tuple[str, int]] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            constants[node.targets[0].id] = (node.value.value, node.lineno)
    return constants


def _resolve_string(node: ast.expr,
                    constants: Dict[str, Tuple[str, int]]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name) and node.id in constants:
        return constants[node.id][0]
    if isinstance(node, ast.Attribute) and node.attr in constants:
        # config.SOME_ENV_VAR style reference to another module's constant:
        # only resolvable when the constant also exists locally; skip here.
        return None
    return None
