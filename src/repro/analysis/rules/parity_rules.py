"""PAR001: row evaluator vs batch compiler operator parity.

The row pipeline evaluates every :class:`Expr` subclass via its ``eval``
method; the batch pipeline only executes expression types that
``batch_compile.compile_expr`` explicitly dispatches on (``isinstance``
branches).  An Expr subclass added to ``query/expressions.py`` without a
matching branch would silently fall back to row mode for *every* query
using it — legal, but it must be a recorded decision, not an accident.

The contract this rule enforces:

* every concrete Expr subclass is either handled by an ``isinstance``
  branch in ``batch_compile.py`` or listed in its
  ``ROW_ONLY_EXPRESSIONS = {"ClassName": "reason"}`` registry with a
  human-readable fallback reason;
* ``ROW_ONLY_EXPRESSIONS`` carries no stale entries (class gone, or class
  now handled);
* the batch compiler *shares* the row evaluator's operator tables — it
  must import ``_FUNCTIONS`` from ``expressions`` and reach operators via
  ``._OPS`` attribute access, never by copying the tables (a copy is the
  classic way the two pipelines drift).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..lint import Finding, Module, Project, Rule


class RowBatchParityRule(Rule):
    """PAR001: expression dispatch parity between row and batch pipelines."""

    rule_id = "PAR001"
    description = ("every Expr subclass is batch-compiled or registered in "
                   "ROW_ONLY_EXPRESSIONS with a reason; operator tables are "
                   "shared, not copied")

    def __init__(self, expr_suffix: str = "query/expressions.py",
                 batch_suffix: str = "query/batch_compile.py") -> None:
        self._expr_suffix = expr_suffix
        self._batch_suffix = batch_suffix

    def finalize(self, project: Project) -> Iterable[Finding]:
        expr_module = project.module_by_suffix(self._expr_suffix)
        batch_module = project.module_by_suffix(self._batch_suffix)
        if expr_module is None or batch_module is None:
            # Scanning a subtree without the query layer: nothing to check.
            return ()
        findings: List[Finding] = []
        subclasses = _expr_subclasses(expr_module.tree)
        handled = _isinstance_targets(batch_module.tree)
        row_only, registry_line = _row_only_registry(batch_module.tree)

        for name, line in sorted(subclasses.items()):
            if name in handled or name in row_only:
                continue
            findings.append(self.finding(
                expr_module, line,
                f"Expr subclass {name} is row-evaluable but batch_compile "
                f"has no isinstance branch for it — add one, or register it "
                f"in ROW_ONLY_EXPRESSIONS with the fallback reason"))
        for name, reason in sorted(row_only.items()):
            if name not in subclasses:
                findings.append(self.finding(
                    batch_module, registry_line,
                    f"stale ROW_ONLY_EXPRESSIONS entry {name!r}: no such "
                    f"Expr subclass in {self._expr_suffix}"))
            elif name in handled:
                findings.append(self.finding(
                    batch_module, registry_line,
                    f"stale ROW_ONLY_EXPRESSIONS entry {name!r}: "
                    f"batch_compile now handles it — drop the entry"))
            elif not reason.strip():
                findings.append(self.finding(
                    batch_module, registry_line,
                    f"ROW_ONLY_EXPRESSIONS entry {name!r} has an empty "
                    f"fallback reason"))

        findings.extend(self._check_shared_tables(expr_module, batch_module))
        return findings

    def _check_shared_tables(self, expr_module: Module,
                             batch_module: Module) -> Iterable[Finding]:
        ops_classes = _classes_with_table(expr_module.tree, "_OPS")
        has_functions_table = any(
            isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "_FUNCTIONS"
                for target in node.targets)
            for node in expr_module.tree.body)

        imports_functions = any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "_FUNCTIONS" for alias in node.names)
            for node in ast.walk(batch_module.tree))
        reads_ops = any(
            isinstance(node, ast.Attribute) and node.attr == "_OPS"
            for node in ast.walk(batch_module.tree))
        redefines = [
            (name, node.lineno)
            for node in batch_module.tree.body
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
            and target.id in ("_OPS", "_FUNCTIONS")
            for name in (target.id,)
        ]

        for name, line in redefines:
            yield self.finding(
                batch_module, line,
                f"batch_compile defines its own {name} table — share the row "
                f"evaluator's table instead (copies drift)")
        if has_functions_table and not imports_functions:
            yield self.finding(
                batch_module, 1,
                "batch_compile does not import _FUNCTIONS from expressions — "
                "registered row functions would be invisible to batch mode")
        if ops_classes and not reads_ops:
            yield self.finding(
                batch_module, 1,
                f"batch_compile never reads ._OPS although "
                f"{sorted(ops_classes)} dispatch through operator tables — "
                f"operators added to the row tables would not reach batch mode")


def _expr_subclasses(tree: ast.Module) -> Dict[str, int]:
    """Transitive subclasses of ``Expr`` defined at module top level."""
    bases_by_class: Dict[str, Tuple[Set[str], int]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            base_names = {base.id for base in node.bases if isinstance(base, ast.Name)}
            bases_by_class[node.name] = (base_names, node.lineno)
    subclasses: Dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        for name, (bases, line) in bases_by_class.items():
            if name in subclasses:
                continue
            if "Expr" in bases or bases & set(subclasses):
                subclasses[name] = line
                changed = True
    return subclasses


def _isinstance_targets(tree: ast.Module) -> Set[str]:
    """Class names checked via ``isinstance(expr, ...)`` anywhere."""
    targets: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance" and len(node.args) == 2):
            class_arg = node.args[1]
            elements = class_arg.elts if isinstance(class_arg, ast.Tuple) else [class_arg]
            for element in elements:
                if isinstance(element, ast.Name):
                    targets.add(element.id)
    return targets


def _row_only_registry(tree: ast.Module) -> Tuple[Dict[str, str], int]:
    """The ``ROW_ONLY_EXPRESSIONS`` dict literal, if present."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(target, ast.Name) and target.id == "ROW_ONLY_EXPRESSIONS"
                   for target in targets):
            continue
        registry: Dict[str, str] = {}
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                        and isinstance(val, ast.Constant) and isinstance(val.value, str)):
                    registry[key.value] = val.value
        return registry, node.lineno
    return {}, 1


def _classes_with_table(tree: ast.Module, table_name: str) -> Set[str]:
    classes: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            if any(isinstance(target, ast.Name) and target.id == table_name
                   for target in targets):
                classes.add(node.name)
    return classes
