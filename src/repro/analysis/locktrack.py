"""Dynamic lock-order tracker (opt-in via ``REPRO_LOCKTRACK=1``).

The static rules prove what the AST shows; this module watches what the
engine actually *does*.  When installed, ``threading.Lock`` and
``threading.RLock`` are replaced by factories that wrap every lock created
from engine code (``src/repro``, excluding this package) in a tracked
proxy.  Each proxy:

* keys itself as ``"Owner.attr"`` by reading the creation site
  (``self._read_lock = threading.Lock()`` inside ``LSMBTree.__init__``
  keys as ``LSMBTree._read_lock``) — the same keys the static hierarchy
  in :mod:`repro.analysis.lock_hierarchy` uses, so both halves speak one
  vocabulary;
* maintains a per-thread stack of held locks and records a directed edge
  *held → acquired* (with a witness stack, captured once per edge) every
  time a thread acquires a lock while holding another;
* checks each such acquisition against the declared hierarchy — a
  non-descending pair is reported even when no cycle ever materializes.

After the run, :meth:`LockTracker.problems` reports (a) cycles in the
accumulated acquisition graph — each one a potential deadlock, with the
witness stacks of its edges — and (b) hierarchy violations.  The tier-1
conftest wires this into pytest: ``REPRO_LOCKTRACK=1 pytest`` fails the
session if either list is non-empty.

``threading.Condition`` needs no patching: a condition binds the lock it
is given, so conditions built over tracked locks are tracked for free.
(The no-argument ``Condition()`` form would manufacture an *invisible*
internal RLock — LOCK002 bans it statically.)  Locks created by the
stdlib (thread pools, queues, condition waiters) come from non-engine
frames and stay raw.
"""

from __future__ import annotations

import linecache
import os
import re
import sys
import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from ..config import env_flag
from .lock_hierarchy import LOCK_HIERARCHY

#: Knob enabling the tracker under pytest (see tests/conftest.py).
LOCKTRACK_ENV_VAR = "REPRO_LOCKTRACK"

_ATTR_ASSIGN_RE = re.compile(r"self\.(\w+)\s*(?::[^=]+)?=")

_REPRO_FRAGMENT = f"{os.sep}repro{os.sep}"
_ANALYSIS_FRAGMENT = f"{os.sep}repro{os.sep}analysis{os.sep}"


def locktrack_enabled() -> bool:
    """Whether ``REPRO_LOCKTRACK`` asks for the tracker."""
    return env_flag(LOCKTRACK_ENV_VAR)


def _witness() -> str:
    """Compact engine-frames-only stack for edge reports."""
    frames = traceback.extract_stack()[:-3]
    relevant = [frame for frame in frames
                if _REPRO_FRAGMENT in frame.filename
                and _ANALYSIS_FRAGMENT not in frame.filename]
    shown = relevant if relevant else frames[-4:]
    return " <- ".join(
        f"{os.path.basename(frame.filename)}:{frame.lineno}({frame.name})"
        for frame in reversed(shown[-6:]))


class LockTracker:
    """Acquisition-graph recorder shared by every tracked lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._held = threading.local()
        #: (held_key, acquired_key) -> witness stack of the first occurrence.
        self._edges: Dict[Tuple[str, str], str] = {}
        #: Hierarchy violations: (held_key, acquired_key, detail, witness).
        self._violations: List[Tuple[str, str, str, str]] = []
        self._keys_seen: Set[str] = set()

    # -- wrapper callbacks -------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquire(self, key: str) -> None:
        stack = self._stack()
        if stack:
            self._record_edge(stack[-1], key)
        stack.append(key)
        with self._lock:
            self._keys_seen.add(key)

    def note_release(self, key: str) -> None:
        stack = self._stack()
        if stack and stack[-1] == key:
            stack.pop()
        elif key in stack:
            # Out-of-order release (legal, e.g. hand-over-hand): drop the
            # innermost matching entry.
            stack.reverse()
            stack.remove(key)
            stack.reverse()

    def _record_edge(self, held: str, acquired: str) -> None:
        witness: Optional[str] = None
        with self._lock:
            if (held, acquired) not in self._edges:
                witness = _witness()
                self._edges[(held, acquired)] = witness
        held_decl = LOCK_HIERARCHY.get(held)
        acquired_decl = LOCK_HIERARCHY.get(acquired)
        if held_decl is not None and acquired_decl is not None:
            if acquired_decl.level >= held_decl.level:
                detail = (f"level {acquired_decl.level} acquired while holding "
                          f"level {held_decl.level} — levels must strictly descend")
                with self._lock:
                    if witness is None:
                        witness = self._edges[(held, acquired)]
                    self._violations.append((held, acquired, detail, witness))

    # -- reporting ---------------------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], str]:
        with self._lock:
            return dict(self._edges)

    def cycles(self) -> List[List[str]]:
        """Strongly connected components of size > 1 (plus self-loops)."""
        graph: Dict[str, List[str]] = {}
        for (src, dst) in self.edges():
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        index_counter = [0]
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: the engine graph is tiny, but recursion
            # depth must not depend on it.
            work = [(node, 0)]
            while work:
                current, child_index = work.pop()
                if child_index == 0:
                    indices[current] = lowlinks[current] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                children = graph[current]
                for offset in range(child_index, len(children)):
                    child = children[offset]
                    if child not in indices:
                        work.append((current, offset + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlinks[current] = min(lowlinks[current], indices[child])
                if recurse:
                    continue
                if lowlinks[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    sccs.append(component)
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[current])

        for node in graph:
            if node not in indices:
                strongconnect(node)
        edges = self.edges()
        return [sorted(component) for component in sccs
                if len(component) > 1
                or (component[0], component[0]) in edges]

    def violations(self) -> List[Tuple[str, str, str, str]]:
        with self._lock:
            return list(self._violations)

    def problems(self) -> List[str]:
        """Human-readable failures; empty means the run was clean."""
        lines: List[str] = []
        edges = self.edges()
        for component in self.cycles():
            lines.append(f"lock-order cycle: {' -> '.join(component)}")
            for (src, dst), witness in sorted(edges.items()):
                if src in component and dst in component:
                    lines.append(f"  edge {src} -> {dst} at {witness}")
        for held, acquired, detail, witness in self.violations():
            lines.append(f"hierarchy violation: {held} -> {acquired}: {detail}")
            lines.append(f"  at {witness}")
        return lines

    def report(self) -> str:
        edges = self.edges()
        lines = [f"locktrack: {len(self._keys_seen)} lock keys, "
                 f"{len(edges)} acquisition-order edges"]
        for (src, dst), witness in sorted(edges.items()):
            lines.append(f"  {src} -> {dst}  ({witness})")
        lines.extend(self.problems())
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()
            self._violations.clear()
            self._keys_seen.clear()


class TrackedLock:
    """Proxy around a real ``threading.Lock`` reporting to a tracker."""

    def __init__(self, inner: Any, key: str, tracker: LockTracker) -> None:
        self._inner = inner
        self._key = key
        self._tracker = tracker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._tracker.note_acquire(self._key)
        return got

    def release(self) -> None:
        self._tracker.note_release(self._key)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {self._key} {self._inner!r}>"


class TrackedRLock:
    """Proxy around a real ``threading.RLock``.

    Re-entrant acquisitions are counted here (safe: the counter is only
    touched while the inner lock is owned) so the tracker sees one logical
    acquire/release pair per outermost hold.  ``_release_save`` /
    ``_acquire_restore`` / ``_is_owned`` are implemented explicitly —
    ``threading.Condition`` lifts them off the lock object, and delegating
    to the inner RLock's versions would let ``Condition.wait`` bypass
    tracking entirely.
    """

    def __init__(self, inner: Any, key: str, tracker: LockTracker) -> None:
        self._inner = inner
        self._key = key
        self._tracker = tracker
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            if self._count == 0:
                self._tracker.note_acquire(self._key)
            self._count += 1
        return got

    def release(self) -> None:
        if self._count == 1:
            self._tracker.note_release(self._key)
        self._count -= 1
        self._inner.release()

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self) -> Tuple[int, Any]:
        count = self._count
        self._count = 0
        self._tracker.note_release(self._key)
        return (count, self._inner._release_save())

    def _acquire_restore(self, saved: Tuple[int, Any]) -> None:
        count, inner_state = saved
        self._inner._acquire_restore(inner_state)
        self._tracker.note_acquire(self._key)
        self._count = count

    def __repr__(self) -> str:
        return f"<TrackedRLock {self._key} {self._inner!r}>"


# ---------------------------------------------------------------------------
# installation
# ---------------------------------------------------------------------------

_tracker: Optional[LockTracker] = None
_originals: Dict[str, Any] = {}


def get_tracker() -> Optional[LockTracker]:
    """The installed tracker, or ``None`` when tracking is off."""
    return _tracker


def _should_track(filename: str) -> bool:
    return _REPRO_FRAGMENT in filename and _ANALYSIS_FRAGMENT not in filename


def _key_from_frame(frame: Any) -> str:
    self_obj = frame.f_locals.get("self")
    line = linecache.getline(frame.f_code.co_filename, frame.f_lineno)
    match = _ATTR_ASSIGN_RE.search(line)
    if self_obj is not None and match is not None:
        return f"{type(self_obj).__name__}.{match.group(1)}"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


def install() -> LockTracker:
    """Patch ``threading.Lock``/``threading.RLock`` to track engine locks."""
    global _tracker
    if _tracker is not None:
        return _tracker
    tracker = LockTracker()
    _originals["Lock"] = threading.Lock
    _originals["RLock"] = threading.RLock

    def make_factory(original: Any, wrapper: type) -> Any:
        def factory() -> Any:
            inner = original()
            frame = sys._getframe(1)
            if frame is None or not _should_track(frame.f_code.co_filename):
                return inner
            return wrapper(inner, _key_from_frame(frame), tracker)
        return factory

    threading.Lock = make_factory(_originals["Lock"], TrackedLock)
    threading.RLock = make_factory(_originals["RLock"], TrackedRLock)
    _tracker = tracker
    return tracker


def uninstall() -> None:
    """Restore the real lock factories (existing wrappers keep working)."""
    global _tracker
    if _tracker is None:
        return
    threading.Lock = _originals.pop("Lock")
    threading.RLock = _originals.pop("RLock")
    _tracker = None
