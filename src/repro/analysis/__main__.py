"""CLI for the engine's static analysis: ``python -m repro.analysis [paths]``.

Exit status: 0 when no findings (or only warnings without ``--strict``),
1 when any error-severity finding survives suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .lint import SEVERITY_ERROR, collect_modules, render_report, run_analysis
from .rules import default_rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="engine-specific static analysis (lock discipline, knob "
                    "documentation, metric naming, row/batch parity)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan (default: src/ "
                             "if present, else the current directory)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors for the exit status")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    options = parser.parse_args(argv)

    rules = default_rules()
    if options.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.severity:7s}  {rule.description}")
        return 0

    if options.paths:
        paths = [Path(path) for path in options.paths]
    else:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path: {', '.join(str(path) for path in missing)}",
              file=sys.stderr)
        return 2

    modules, _ = collect_modules(paths)
    findings = run_analysis(paths, rules)
    print(render_report(findings, rules, scanned=len(modules)))
    if any(finding.severity == SEVERITY_ERROR for finding in findings):
        return 1
    if options.strict and findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
