"""Engine-specific static analysis and concurrency-correctness toolkit.

Two halves:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — an AST lint
  framework with project rules (lock discipline LOCK001–003, knob
  documentation KNOB001, metric naming OBS001, row/batch parity PAR001),
  runnable as ``python -m repro.analysis src/``;
* :mod:`repro.analysis.locktrack` — an opt-in (``REPRO_LOCKTRACK=1``)
  dynamic lock-order tracker that records the per-thread acquisition graph
  while tier-1 tests run and fails the session on lock-order cycles.

The lock hierarchy both halves check against lives in
:mod:`repro.analysis.lock_hierarchy`.
"""

from .lint import Finding, Module, Project, Rule, run_analysis
from .lock_hierarchy import LOCK_HIERARCHY, LockDecl

__all__ = [
    "Finding",
    "Module",
    "Project",
    "Rule",
    "run_analysis",
    "LOCK_HIERARCHY",
    "LockDecl",
]
