"""Byte-bounded LRU cache of decoded column slices, LSM-lifecycle aware.

The paper's columnar layout makes repeated analytical scans decode-bound:
the pages may already sit in the buffer cache, but every scan still walks
each record's vectors and re-decodes the requested columns.  This cache
memoizes the *decoded* slices instead.  Entries are chunks of an on-disk
component's scan stream — for one path set, chunk ``i`` holds rows
``i*chunk_rows .. (i+1)*chunk_rows - 1`` of the component in key order,
each row as ``(key, is_antimatter, values)`` with ``values`` aligned to the
extractor's request paths (``None`` for anti-matter rows, which must keep
shadowing older components during the merge-scan).  A warm scan serves
whole chunks without touching the B+-tree, the buffer cache, or the
simulated device: device bytes read drop to zero.

Lifecycle safety comes from two facts.  Components are immutable and their
file names are never reused (sequence numbers only grow, across recovery
too), so an entry can never describe different data than it was built
from.  And the LSM index evicts eagerly anyway — component drops (the
merge/`read_guard` deferred-deletion path) and quarantine events both call
:meth:`ColumnSliceCache.invalidate_component` — so a merged-away or corrupt
component's slices leave the cache as soon as the component leaves the
tree, and memory is not held hostage by dead files.

The byte budget comes from ``REPRO_COLUMN_CACHE_BYTES`` (default 32 MiB;
``0`` disables the cache).  Sizes are estimates (Python object overheads
approximated per value), which is fine for an eviction budget.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import env_int
from ..errors import CorruptPageError, PermanentIOError, TransientIOError
from ..faults import fire_fault
from ..obs import MetricsRegistry, get_registry

#: Environment variable bounding the decoded column-slice cache, in bytes
#: (shared by all datasets of one storage environment).  ``0`` disables the
#: cache; unset/empty means the default budget.
COLUMN_CACHE_BYTES_ENV_VAR = "REPRO_COLUMN_CACHE_BYTES"

#: Cache budget when the knob is unset: 32 MiB.
DEFAULT_COLUMN_CACHE_BYTES = 32 * 1024 * 1024

#: Component-scan rows per cached chunk (the "batch range" of the key).
CHUNK_ROWS = 1024


def column_cache_budget() -> int:
    """Resolved slice-cache budget (``REPRO_COLUMN_CACHE_BYTES``, floor 0)."""
    value = env_int(COLUMN_CACHE_BYTES_ENV_VAR)
    if value is None:
        return DEFAULT_COLUMN_CACHE_BYTES
    return max(0, value)


class SliceScanStats:
    """Per-scan hit/miss row counts (threaded into EXPLAIN ANALYZE).

    Both counters measure the same population — every component-scan row,
    anti-matter included — so warm and cold scans of the same data report
    the same ``hits + misses`` total and hit rates are comparable.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0


class _Chunk:
    """One cached slice: a run of component-scan rows plus its byte size."""

    __slots__ = ("rows", "last", "nbytes")

    def __init__(self, rows: Tuple[Tuple[Any, bool, Optional[Tuple[Any, ...]]], ...],
                 last: bool) -> None:
        self.rows = rows
        self.last = last
        self.nbytes = 96 + sum(_row_bytes(row) for row in rows)


def _row_bytes(row: Tuple[Any, bool, Optional[Tuple[Any, ...]]]) -> int:
    total = 80 + _value_bytes(row[0])
    values = row[2]
    if values is not None:
        total += 56
        for value in values:
            total += _value_bytes(value)
    return total


def _value_bytes(value: Any, depth: int = 0) -> int:
    """Rough resident size of one decoded value (eviction accounting only)."""
    if value is None or isinstance(value, bool):
        return 8
    if isinstance(value, (int, float)):
        return 28
    if isinstance(value, (str, bytes, bytearray)):
        return 49 + len(value)
    if depth >= 4:
        return 64
    if isinstance(value, dict):
        return 64 + sum(_value_bytes(key, depth + 1) + _value_bytes(item, depth + 1)
                        for key, item in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(_value_bytes(item, depth + 1) for item in value)
    return 64


class ColumnSliceCache:
    """Thread-safe byte-accounted LRU over decoded component-scan chunks."""

    def __init__(self, capacity_bytes: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 chunk_rows: int = CHUNK_ROWS) -> None:
        self.capacity_bytes = (column_cache_budget() if capacity_bytes is None
                               else max(0, capacity_bytes))
        self.chunk_rows = max(1, chunk_rows)
        self._lock = threading.Lock()
        #: (component file, paths key, chunk index) -> _Chunk, LRU order.
        self._entries: "OrderedDict[Tuple[str, Tuple, int], _Chunk]" = OrderedDict()  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        metrics = metrics if metrics is not None else get_registry()
        self._hits = metrics.counter("column_cache_hits")
        self._misses = metrics.counter("column_cache_misses")
        self._evictions = metrics.counter("column_cache_evictions")
        self._stores = metrics.counter("column_cache_stores")
        self._bytes_gauge = metrics.gauge("column_cache_bytes")

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def entry_count(self, file_name: Optional[str] = None) -> int:
        """Cached chunk count, optionally restricted to one component file."""
        with self._lock:
            if file_name is None:
                return len(self._entries)
            return sum(1 for key in self._entries if key[0] == file_name)

    # ------------------------------------------------------------------ chunk API

    def get_chunk(self, file_name: str, paths_key: Tuple,
                  chunk_index: int) -> Optional[_Chunk]:
        if not self.enabled:
            return None
        try:
            fire_fault("cache.lookup")
        except (TransientIOError, PermanentIOError, CorruptPageError):
            # Degrade to a miss: the scan falls back to pages + decode, so
            # an injected lookup fault never changes query results.
            self._misses.inc()
            return None
        with self._lock:
            chunk = self._entries.get((file_name, paths_key, chunk_index))
            if chunk is not None:
                self._entries.move_to_end((file_name, paths_key, chunk_index))
        if chunk is None:
            self._misses.inc()
        else:
            self._hits.inc()
        return chunk

    def store_chunk(self, file_name: str, paths_key: Tuple, chunk_index: int,
                    rows: Sequence[Tuple[Any, bool, Optional[Tuple[Any, ...]]]],
                    last: bool) -> None:
        if not self.enabled:
            return
        try:
            fire_fault("cache.store")
        except (TransientIOError, PermanentIOError, CorruptPageError):
            return  # skipped store: the next scan decodes (and retries) again
        chunk = _Chunk(tuple(rows), last)
        if chunk.nbytes > self.capacity_bytes:
            return  # one oversized chunk must not wipe the whole cache
        evicted = 0
        with self._lock:
            key = (file_name, paths_key, chunk_index)
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = chunk
            self._bytes += chunk.nbytes
            while self._bytes > self.capacity_bytes and self._entries:
                _, dropped = self._entries.popitem(last=False)
                self._bytes -= dropped.nbytes
                evicted += 1
            size = self._bytes
        self._stores.inc()
        if evicted:
            self._evictions.inc(evicted)
        self._bytes_gauge.set(size)

    # ------------------------------------------------------------------ lifecycle

    def invalidate_component(self, file_name: str) -> None:
        """Drop every chunk of one component (drop/merge/quarantine hook)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == file_name]
            for key in stale:
                self._bytes -= self._entries.pop(key).nbytes
            size = self._bytes
        if stale:
            self._evictions.inc(len(stale))
            self._bytes_gauge.set(size)

    def clear(self) -> None:
        """Drop everything (the ``cold_cache`` / ``drop_caches`` path)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
        if count:
            self._evictions.inc(count)
        self._bytes_gauge.set(0)


def paths_cache_key(paths: Sequence[Sequence[Any]]) -> Tuple:
    """Hashable identity of a scan's requested path set."""
    return tuple(tuple(path) for path in paths)


#: Decoded value types a caller could mutate in place.
_MUTABLE_CONTAINERS = (dict, list, set, bytearray)


def _shield(values: Optional[Tuple[Any, ...]]) -> Optional[Tuple[Any, ...]]:
    """Caller-safe copy of a cached value tuple (the cache stays pristine).

    Decoded values can contain mutable containers (dicts/lists from subtree
    capture); yielding those by reference would let a caller that mutates a
    result row silently corrupt the shared cache and poison later queries.
    Scalar-only rows — the common case — are returned as-is.
    """
    if values is None:
        return None
    if any(isinstance(value, _MUTABLE_CONTAINERS) for value in values):
        return tuple(copy.deepcopy(value)
                     if isinstance(value, _MUTABLE_CONTAINERS) else value
                     for value in values)
    return values


def cached_component_scan(cache: ColumnSliceCache, component: Any, decode,
                          extractor, paths_key: Tuple,
                          stats: Optional[SliceScanStats] = None) -> Iterator[Tuple]:
    """Scan one on-disk component through the slice cache.

    Yields the LSM merge-scan's source items extended with decoded values:
    ``(key, is_antimatter, payload, record, schema, values)``.  Cached
    chunks are served without any page access (``payload`` is empty — the
    values already carry everything the batch pipeline asked for); on the
    first missing chunk the scan falls back to ``component.scan()``, skips
    the rows already served, decodes the remainder through ``decode`` +
    ``extractor``, and repopulates chunks as it goes.  Anti-matter rows are
    cached with ``values=None`` so key shadowing survives a warm scan.

    A ``CorruptPageError`` from the fallback propagates to the caller (the
    LSM index quarantines the component, which evicts its chunks); chunks
    stored before the corruption was hit are evicted with the rest.
    """
    file_name = component.file_name
    schema = component.schema
    served = 0
    chunk_index = 0
    while True:
        chunk = cache.get_chunk(file_name, paths_key, chunk_index)
        if chunk is None:
            break
        for key, is_antimatter, values in chunk.rows:
            yield key, is_antimatter, b"", None, schema, _shield(values)
        served += len(chunk.rows)
        if stats is not None:
            stats.hits += len(chunk.rows)
        if chunk.last:
            return
        chunk_index += 1

    buffer: List[Tuple[Any, bool, Optional[Tuple[Any, ...]]]] = []
    position = 0
    for entry in component.scan():
        position += 1
        if position <= served:
            continue  # replay past the rows the cached prefix already served
        if entry.is_antimatter:
            values: Optional[Tuple[Any, ...]] = None
        else:
            values = tuple(extractor.extract(decode(entry.value)))
        if stats is not None:
            stats.misses += 1
        buffer.append((entry.key, entry.is_antimatter, values))
        yield entry.key, entry.is_antimatter, entry.value, None, schema, _shield(values)
        if len(buffer) >= cache.chunk_rows:
            cache.store_chunk(file_name, paths_key, chunk_index, buffer, last=False)
            chunk_index += 1
            buffer = []
    cache.store_chunk(file_name, paths_key, chunk_index, buffer, last=True)
