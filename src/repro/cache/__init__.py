"""Query-level reuse caches: physical plans and decoded column slices.

Two bounded LRU layers sit above the page-level
:class:`~repro.storage.BufferCache` (ROADMAP item 1's prepared-statement
front door, and the decode-side reuse the paper's columnar layout makes
profitable):

* :class:`PlanCache` — per-dataset physical-plan cache keyed by normalized
  SQL++ text plus the dataset's reuse epoch, so ``Dataset.prepare`` /
  repeated ``Dataset.query(text)`` skip parse → bind → optimize entirely.
  Any ``CREATE INDEX``, component lifecycle event (flush/merge/quarantine,
  which is also when per-component ``FieldStatistics`` change), or explicit
  ``invalidate_plans()`` bumps the epoch and strands stale entries.
* :class:`ColumnSliceCache` — per-environment cache of decoded column
  slices keyed ``(component file, path set, chunk index)`` with
  byte-accounted LRU eviction, invalidated through the LSM lifecycle
  (component drops and quarantine events evict eagerly; immutable
  components plus never-reused file names make stale reads structurally
  impossible).

Both publish hit/miss/eviction metrics into the shared registry, fire the
``cache.lookup`` / ``cache.store`` fault points (degrading to a miss /
skipped store under injected faults, so chaos runs keep row parity), and
hold locks declared in :mod:`repro.analysis.lock_hierarchy`.
"""

from .column_cache import (COLUMN_CACHE_BYTES_ENV_VAR, ColumnSliceCache,
                           SliceScanStats, cached_component_scan,
                           column_cache_budget)
from .plan_cache import (PLAN_CACHE_ENV_VAR, PhysicalPlan, PlanCache,
                         normalize_statement, plan_cache_capacity)

__all__ = [
    "COLUMN_CACHE_BYTES_ENV_VAR",
    "ColumnSliceCache",
    "PLAN_CACHE_ENV_VAR",
    "PhysicalPlan",
    "PlanCache",
    "SliceScanStats",
    "cached_component_scan",
    "column_cache_budget",
    "normalize_statement",
    "plan_cache_capacity",
]
