"""Bounded LRU cache of compiled physical plans (prepared statements).

``Dataset.query(text)`` historically re-lexed, re-parsed, re-bound, and
re-optimized the SQL++ text on every call.  This cache memoizes the result
of that whole front half — the effective :class:`~repro.query.plan.QuerySpec`
after rewrites, the optimizer's access plan, the cost-based access-path
choice, and the compiled batch plan — as one :class:`PhysicalPlan` keyed by

* the *normalized* statement text (whitespace and comments outside string
  literals collapsed; quoted literals are preserved verbatim, so two
  queries that differ only inside a string never share a plan),
* the dataset's **reuse epoch** (schema/index epoch plus every partition's
  LSM structure version — flush, merge, ``CREATE INDEX``, bulk load, and
  quarantine all bump it, and component swaps are exactly when per-component
  ``FieldStatistics`` change, so a stats refresh re-optimizes too), and
* the executor's plan-relevant knobs (optimizer flags, access-path policy,
  execution mode, batch sizing), so differently-configured executors never
  share entries.

Entries are never invalidated in place: a bumped epoch simply stops
matching, and the stale entries age out of the LRU.  Capacity comes from
the ``REPRO_PLAN_CACHE`` knob (default 64 entries; ``0`` disables caching
entirely).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Tuple

from ..config import env_int
from ..errors import CorruptPageError, PermanentIOError, TransientIOError
from ..faults import fire_fault
from ..obs import MetricsRegistry, get_registry

#: Environment variable bounding the plan cache (entries per dataset).
#: ``0`` disables plan caching; unset/empty means the default capacity.
PLAN_CACHE_ENV_VAR = "REPRO_PLAN_CACHE"

#: Entries per dataset when the knob is unset.
DEFAULT_PLAN_CACHE_CAPACITY = 64


def plan_cache_capacity() -> int:
    """Resolved plan-cache capacity (``REPRO_PLAN_CACHE``, floor 0)."""
    value = env_int(PLAN_CACHE_ENV_VAR)
    if value is None:
        return DEFAULT_PLAN_CACHE_CAPACITY
    return max(0, value)


def normalize_statement(text: str) -> str:
    """Canonical cache-key form of a SQL++ statement.

    Collapses runs of whitespace and comments *outside* string literals to
    a single space, so reformatted copies of one query share a plan.  The
    pass mirrors the lexer's trivia and string rules (both quote kinds,
    backslash escapes, ``--`` line and ``/* */`` block comments) without
    importing it: quoted literals are copied verbatim, so queries that
    differ only in the spacing *inside* a string literal never unify — the
    bound constant differs, and sharing a plan would return wrong results.
    Malformed text (an unterminated string) is preserved from the anomaly
    onward; the compiler reports the error with positions intact.
    """
    out: List[str] = []
    i = 0
    n = len(text)
    pending_space = False
    while i < n:
        char = text[i]
        if char in " \t\r\n":
            pending_space = bool(out)
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            pending_space = bool(out)
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                break  # unterminated comment: nothing lexable remains
            i = end + 2
            pending_space = bool(out)
            continue
        if pending_space:
            out.append(" ")
            pending_space = False
        if char in "'\"":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2  # escape pair: \' or \" must not close the string
                    continue
                if text[j] == char:
                    j += 1
                    break
                j += 1
            j = min(j, n)
            out.append(text[i:j])
            i = j
            continue
        out.append(char)
        i += 1
    return "".join(out)


@dataclass
class PhysicalPlan:
    """Everything the executor needs downstream of parse → bind → optimize.

    Fields are deliberately loosely typed: this module sits below
    :mod:`repro.query` in the import graph, and the executor is the only
    producer/consumer of the payload.
    """

    #: Effective :class:`~repro.query.plan.QuerySpec` (rewrites applied).
    spec: Any
    #: The optimizer's :class:`~repro.query.optimizer.AccessPlan`.
    access_plan: Any
    #: Cost-based :class:`~repro.query.optimizer.AccessPathChoice`.
    choice: Any
    #: Compiled :class:`~repro.query.batch_compile.BatchQueryPlan`, or None.
    batch_plan: Any
    #: Why batch compilation fell back to the row pipeline (None = batch ran).
    fallback_reason: Optional[str] = None


class PlanCache:
    """Thread-safe LRU of :class:`PhysicalPlan` entries for one dataset."""

    def __init__(self, capacity: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.capacity = plan_cache_capacity() if capacity is None else max(0, capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, PhysicalPlan]" = OrderedDict()  # guarded-by: _lock
        metrics = metrics if metrics is not None else get_registry()
        self._hits = metrics.counter("plan_cache_hits")
        self._misses = metrics.counter("plan_cache_misses")
        self._evictions = metrics.counter("plan_cache_evictions")
        self._entries_gauge = metrics.gauge("plan_cache_entries")

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[PhysicalPlan]:
        """The cached plan for ``key``, or None (disabled / miss / fault)."""
        if not self.enabled:
            return None
        try:
            fire_fault("cache.lookup")
        except (TransientIOError, PermanentIOError, CorruptPageError):
            # Degrade to a miss: the caller re-plans from scratch, so an
            # injected lookup fault costs latency, never correctness.
            self._misses.inc()
            return None
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
        if plan is None:
            self._misses.inc()
        else:
            self._hits.inc()
        return plan

    def put(self, key: Hashable, plan: PhysicalPlan) -> None:
        """Insert/refresh ``key``, evicting least-recently-used overflow."""
        if not self.enabled:
            return
        try:
            fire_fault("cache.store")
        except (TransientIOError, PermanentIOError, CorruptPageError):
            return  # skipped store: the next execution re-plans and retries
        evicted = 0
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            size = len(self._entries)
        if evicted:
            self._evictions.inc(evicted)
        self._entries_gauge.set(size)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        self._entries_gauge.set(0)
