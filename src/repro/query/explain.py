"""Compact plan renderer: which access path won, and why.

``explain(dataset, query)`` compiles (or accepts) a query, runs the same
optimizer passes the executor would — field-access consolidation and
cost-based access-path selection — and renders the resulting plan as
indented text without executing anything.  Benchmarks and tests assert on
the rendered access-path line ("IndexProbe(...)" vs "FullScan"); humans get
the cost estimates and the residual filter alongside.
"""

from __future__ import annotations

from typing import Union

from .expressions import (
    And,
    Arithmetic,
    Comparison,
    Exists,
    Expr,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    Not,
    Or,
    Var,
)
from .optimizer import AccessPathChoice, Optimizer, choose_access_path
from .plan import QuerySpec


def render_expr(expr: Expr) -> str:
    """Render an executable expression tree back to readable SQL++-ish text."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, FieldAccess):
        steps = "".join(f"[{step}]" if not isinstance(step, str) or step == "*"
                        else f".{step}" for step in expr.path)
        return f"{expr.source}{steps}"
    if isinstance(expr, Comparison):
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    if isinstance(expr, Arithmetic):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, And):
        return " AND ".join(f"({render_expr(operand)})" for operand in expr.operands)
    if isinstance(expr, Or):
        return " OR ".join(f"({render_expr(operand)})" for operand in expr.operands)
    if isinstance(expr, Not):
        return f"NOT ({render_expr(expr.operand)})"
    if isinstance(expr, IsTest):
        negation = "NOT " if expr.negated else ""
        return f"{render_expr(expr.operand)} IS {negation}{expr.kind.upper()}"
    if isinstance(expr, Func):
        return f"{expr.name}({', '.join(render_expr(argument) for argument in expr.args)})"
    if isinstance(expr, Exists):
        return (f"SOME {expr.item_var} IN {render_expr(expr.collection)} "
                f"SATISFIES {render_expr(expr.predicate)}")
    return repr(expr)


def _spec_of(query: Union[str, QuerySpec]) -> QuerySpec:
    if isinstance(query, QuerySpec):
        return query
    from ..sqlpp import CompiledCreateIndex
    from ..sqlpp import compile as compile_sqlpp

    compiled = compile_sqlpp(query)
    if isinstance(compiled, CompiledCreateIndex):
        raise ValueError("explain() renders query plans; CREATE INDEX has none")
    return compiled.spec


def _access_path_lines(choice: AccessPathChoice) -> list:
    lines = [f"access path: {choice.path.describe()}"]
    if choice.forced:
        lines.append("  (access path forced, not cost-based)")
    if choice.estimated_selectivity is not None:
        lines.append(f"  estimated selectivity: {choice.estimated_selectivity:.3%}"
                     f" (~{choice.estimated_rows:.1f} rows)")
    if choice.probe_cost_seconds is not None:
        lines.append(f"  cost model: probe {choice.probe_cost_seconds * 1e6:.1f}us"
                     f" vs scan {choice.scan_cost_seconds * 1e6:.1f}us")
    else:
        lines.append(f"  cost model: scan {choice.scan_cost_seconds * 1e6:.1f}us")
    if choice.uses_index and choice.path.residual is not None:
        lines.append(f"  residual filter: {render_expr(choice.path.residual)}")
    return lines


def explain(dataset, query: Union[str, QuerySpec], access_path: str = "auto",
            consolidate_field_access: bool = True,
            pushdown_through_unnest: bool = True,
            analyze: bool = False, **executor_options) -> str:
    """Render the plan for ``query`` over ``dataset``.

    Without ``analyze`` nothing is executed.  With ``analyze=True`` the query
    runs through an instrumented executor and an ``ANALYZE`` section renders
    per-operator actual rows / inclusive wall time / bytes read next to the
    plan, plus buffer-cache activity and the estimated-vs-actual cardinality
    error; ``executor_options`` (e.g. ``parallelism=1``) configure that
    executor."""
    spec = _spec_of(query)
    original_spec = spec
    optimizer = Optimizer(consolidate_field_access, pushdown_through_unnest)
    access_plan = optimizer.plan(spec, dataset.config.storage_format.uses_vector_format)
    spec = access_plan.effective_spec(spec)
    choice = choose_access_path(spec, dataset, force=access_path)

    lines = [f"QUERY PLAN over dataset {dataset.config.name!r} "
             f"(format={dataset.config.storage_format.value}, "
             f"partitions={dataset.partition_count}, "
             f"~{dataset.approximate_record_count()} records)"]
    lines.extend("  " + line for line in _access_path_lines(choice))

    lines.append("  pipeline (per partition):")
    lines.append(f"    {choice.path.describe()}")
    for clause in spec.lets:
        lines.append(f"    -> LET {clause.name} = {render_expr(clause.expr)}")
    for plan in access_plan.unnest_plans:
        suffix = " [pushdown]" if plan.pushed_down else ""
        lines.append(f"    -> UNNEST {render_expr(plan.clause.collection)} "
                     f"AS {plan.clause.item_var}{suffix}")
    if spec.where is not None:
        lines.append(f"    -> SELECT {render_expr(spec.where)}")
    if spec.is_aggregation:
        keys = ", ".join(name for name, _ in spec.group_keys) or "<global>"
        aggregates = ", ".join(f"{agg.function}->{agg.output}" for agg in spec.aggregates)
        lines.append(f"    -> GROUP BY [{keys}] AGGREGATE [{aggregates}]")
    elif spec.projections:
        outputs = ", ".join(name for name, _ in spec.projections)
        lines.append(f"    -> PROJECT [{outputs}]")

    coordinator = []
    if spec.is_aggregation:
        coordinator.append("merge partial aggregates")
    if spec.order_by:
        rendered_keys = []
        for key in spec.order_by:
            text = (key.expr_or_column if isinstance(key.expr_or_column, str)
                    else render_expr(key.expr_or_column))
            rendered_keys.append(text + (" DESC" if key.descending else ""))
        coordinator.append("ORDER BY " + ", ".join(rendered_keys))
    if spec.limit is not None:
        coordinator.append(f"LIMIT {spec.limit}")
    lines.append(f"  exchange: {dataset.partition_count} partition stream(s) "
                 "merged in partition order (worker pool, default one worker per partition)")
    lines.append("  coordinator: " + ("; ".join(coordinator) if coordinator else "concatenate"))

    if access_plan.consolidate and access_plan.scan_paths:
        rendered = ", ".join(".".join(map(str, path)) for path in access_plan.scan_paths)
        lines.append(f"  consolidated field access: get_values({rendered})")

    from .executor import ExecutionMode, QueryExecutor

    executor = QueryExecutor(consolidate_field_access=consolidate_field_access,
                             pushdown_through_unnest=pushdown_through_unnest,
                             access_path=access_path, analyze=True,
                             **executor_options)
    mode = executor._resolve_execution_mode()
    batch_size = executor._resolve_batch_size()
    if mode is ExecutionMode.BATCH and batch_size > 0:
        batch_plan, reason = optimizer.plan_batch(spec, access_plan)
        if batch_plan is not None:
            lines.append(f"  execution mode: batch (size={batch_size})")
        else:
            lines.append(f"  execution mode: row (batch fallback: {reason})")
    else:
        lines.append("  execution mode: row")

    if not analyze:
        return "\n".join(lines)

    if isinstance(query, str):
        # Route through Dataset.query so the plan cache is probed exactly as
        # a production call would — ANALYZE then reports "plan: cached" vs
        # "plan: compiled" truthfully.
        result = dataset.query(query, executor=executor)
    else:
        result = executor.execute(dataset, original_spec)
    lines.extend(_analyze_lines(result.stats))
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.3f}ms"


def _analyze_lines(stats) -> list:
    """Render the ANALYZE section from instrumented ExecutionStats."""
    lines = ["  ANALYZE (query executed):"]
    totals = stats.operator_totals()
    if totals:
        show_batches = any(op.batches for op in totals)
        width = max(max(len(op.operator) for op in totals), len("operator"))
        header = (f"    {'operator':<{width}}  {'actual rows':>12}  "
                  f"{'time':>10}  {'bytes read':>12}")
        if show_batches:
            header += f"  {'batches':>8}"
        lines.append(header)
        for op in totals:
            line = (f"    {op.operator:<{width}}  {op.rows_out:>12}  "
                    f"{_format_seconds(op.seconds):>10}  {op.bytes_read:>12,}")
            if show_batches:
                line += f"  {op.batches:>8}"
            lines.append(line)
        lines.append("    (time is inclusive wall time, summed across partitions)")
    if stats.plan_source is not None:
        lines.append("    plan: cached" if stats.plan_source == "cache"
                     else "    plan: compiled")
    cache_total = stats.cache_hits + stats.cache_misses
    if cache_total:
        lines.append(f"    buffer cache: {stats.cache_hits} hit(s) / "
                     f"{stats.cache_misses} miss(es) "
                     f"({stats.cache_hit_ratio:.1%} hit rate)")
    else:
        lines.append("    buffer cache: no page accesses")
    slice_total = stats.slice_cache_hits + stats.slice_cache_misses
    if slice_total:
        lines.append(f"    column-slice cache (scan): {stats.slice_cache_hits} hit(s) / "
                     f"{stats.slice_cache_misses} miss(es) "
                     f"({stats.slice_cache_hits / slice_total:.1%} hit rate)")
    if stats.estimated_rows is not None and stats.actual_matched_rows is not None:
        lines.append(f"    cardinality: estimated {stats.estimated_rows:.1f} row(s), "
                     f"actual {stats.actual_matched_rows} row(s) matched "
                     f"(error factor {stats.cardinality_error:.1f}x)")
    elif stats.actual_matched_rows is not None:
        lines.append(f"    cardinality: actual {stats.actual_matched_rows} row(s) "
                     "matched (optimizer made no estimate)")
    if stats.execution_mode == "batch":
        mode = (f"mode=batch (size={stats.batch_size}, "
                f"{stats.batches_processed} batch(es))")
    else:
        mode = "mode=row"
    lines.append(f"    execution: wall {_format_seconds(stats.wall_seconds)} "
                 f"(coordinator {_format_seconds(stats.coordinator_seconds)}), "
                 f"{stats.rows_returned} row(s) returned, "
                 f"simulated I/O {_format_seconds(stats.simulated_io_seconds)}, "
                 f"parallelism {stats.parallelism}, {mode}")
    if stats.fallback_reason is not None:
        lines.append(f"    batch fallback: {stats.fallback_reason}")
    return lines
