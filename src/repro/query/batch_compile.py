"""Batch (columnar) compilation of query expressions.

The row pipeline interprets an expression tree once per environment.  Batch
execution compiles the same tree once per query into *column evaluators* —
closures mapping a :class:`~repro.vector.batch.ColumnBatch` to a list of
per-row values — so the per-record interpreter dispatch, environment dicts,
and EXTRACTED lookups disappear from the hot loop.

Two invariants keep batch results row-identical:

* every evaluator reuses the row operators' building blocks
  (``Comparison._OPS``, ``_FUNCTIONS``, ``access_path``, the MISSING/NULL
  propagation rules), so a value computed from a column is the value the
  row evaluator would have computed from the environment;
* anything the compiler cannot express raises :class:`BatchUnsupported`,
  which :func:`plan_batch` turns into a fallback reason — the executor then
  runs the unchanged row pipeline.

``AND``/``OR`` are the one deliberate divergence in *evaluation order*: the
row evaluator short-circuits, the batch evaluator computes every operand
column.  All expression functions here are pure (arithmetic returns None on
division by zero instead of raising), so the results are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..types import MISSING, Missing
from ..vector.batch import BatchExtractor, ColumnBatch
from .expressions import (
    _FUNCTIONS,
    _collection_items,
    And,
    Arithmetic,
    Comparison,
    Exists,
    Expr,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    Not,
    Or,
    Var,
    access_path,
    is_absent,
)
from .optimizer import AccessPlan, Path
from .plan import QuerySpec

#: A compiled expression: batch in, one value per row out.
ColumnEval = Callable[[ColumnBatch], List[Any]]

#: Expr subclasses deliberately left to the row pipeline, with the reason.
#: PAR001 (``python -m repro.analysis``) requires every Expr subclass to be
#: either dispatched by :func:`compile_expr` or registered here — an entry
#: makes the row-only fallback a recorded decision instead of a silent one.
ROW_ONLY_EXPRESSIONS: Dict[str, str] = {}


class BatchUnsupported(Exception):
    """An expression or plan shape the batch compiler cannot handle."""


class _Context:
    """Which columns an evaluator may address, by variable."""

    __slots__ = ("record_var", "record_paths", "let_names", "item_var", "item_paths",
                 "uses_views")

    def __init__(self, record_var: str, record_paths: Set[Path],
                 item_var: Optional[str] = None,
                 item_paths: frozenset = frozenset()) -> None:
        self.record_var = record_var
        #: Mutable: compiling a field access on the scan variable registers
        #: its path here, so the batch scan extracts every addressed column
        #: (including paths the optimizer dropped from its own scan list,
        #: e.g. a projected collection whose UNNEST was pushed down).
        self.record_paths = record_paths
        self.let_names: Set[str] = set()
        self.item_var = item_var
        self.item_paths = item_paths
        #: Set when an evaluator addresses the whole record variable
        #: (``SELECT t``): such plans need ``batch.views``, so the scan must
        #: materialize record views and cannot run purely from cached column
        #: slices.
        self.uses_views = False


def _mentions(expr: Expr, name: str) -> bool:
    return any((isinstance(node, Var) and node.name == name)
               or (isinstance(node, FieldAccess) and node.source == name)
               for node in expr.walk())


def compile_expr(expr: Expr, ctx: _Context) -> ColumnEval:
    """Compile one expression into a column evaluator (or raise)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch: [value] * batch.length

    if isinstance(expr, Var):
        name = expr.name
        if name == ctx.record_var:
            ctx.uses_views = True
            return lambda batch: batch.views
        if name in ctx.let_names:
            key = (name, ())
            return lambda batch: batch.columns[key]
        raise BatchUnsupported(f"variable ${name} has no batch column")

    if isinstance(expr, FieldAccess):
        source, path = expr.source, expr.path
        if source == ctx.record_var:
            ctx.record_paths.add(path)
            key = (source, path)
            return lambda batch: batch.columns[key]
        if source == ctx.item_var and path in ctx.item_paths:
            key = (source, path)
            return lambda batch: batch.columns[key]
        if source in ctx.let_names:
            key = (source, ())
            return lambda batch: [access_path(value, path)
                                  for value in batch.columns[key]]
        raise BatchUnsupported(f"field access on ${source} has no batch column")

    if isinstance(expr, (Comparison, Arithmetic)):
        left = compile_expr(expr.left, ctx)
        right = compile_expr(expr.right, ctx)
        op = type(expr)._OPS[expr.op]

        def binary(batch: ColumnBatch) -> List[Any]:
            out = []
            for lhs, rhs in zip(left(batch), right(batch)):
                if is_absent(lhs) or is_absent(rhs):
                    out.append(MISSING)
                    continue
                try:
                    out.append(op(lhs, rhs))
                except TypeError:
                    out.append(MISSING)
            return out

        return binary

    if isinstance(expr, And):
        operands = [compile_expr(operand, ctx) for operand in expr.operands]

        def conjunction(batch: ColumnBatch) -> List[Any]:
            columns = [operand(batch) for operand in operands]
            out = []
            for row in range(batch.length):
                result = True
                for column in columns:
                    value = column[row]
                    if is_absent(value) or not value:
                        result = False
                        break
                out.append(result)
            return out

        return conjunction

    if isinstance(expr, Or):
        operands = [compile_expr(operand, ctx) for operand in expr.operands]

        def disjunction(batch: ColumnBatch) -> List[Any]:
            columns = [operand(batch) for operand in operands]
            out = []
            for row in range(batch.length):
                out.append(any(not is_absent(column[row]) and bool(column[row])
                               for column in columns))
            return out

        return disjunction

    if isinstance(expr, Not):
        operand = compile_expr(expr.operand, ctx)

        def negation(batch: ColumnBatch) -> List[Any]:
            return [MISSING if is_absent(value) else not value
                    for value in operand(batch)]

        return negation

    if isinstance(expr, IsTest):
        operand = compile_expr(expr.operand, ctx)
        test = _is_test(expr)

        def membership(batch: ColumnBatch) -> List[Any]:
            return [test(value) for value in operand(batch)]

        return membership

    if isinstance(expr, Func):
        name = expr.name
        arguments = [compile_expr(argument, ctx) for argument in expr.args]

        def function(batch: ColumnBatch) -> List[Any]:
            columns = [argument(batch) for argument in arguments]
            implementation = _FUNCTIONS[name]
            out = []
            for row in range(batch.length):
                values = [column[row] for column in columns]
                if values and is_absent(values[0]):
                    out.append(MISSING)
                else:
                    out.append(implementation(*values))
            return out

        return function

    if isinstance(expr, Exists):
        for node in expr.predicate.walk():
            if isinstance(node, Exists) and node.item_var == expr.item_var:
                raise BatchUnsupported("nested EXISTS re-binds the quantifier variable")
        collection = compile_expr(expr.collection, ctx)
        predicate = _compile_item_predicate(expr.predicate, expr.item_var, ctx)

        def exists(batch: ColumnBatch) -> List[Any]:
            values = collection(batch)
            test = predicate(batch)
            out = []
            for row, value in enumerate(values):
                items = _collection_items(value)
                if items is None:
                    out.append(False)
                    continue
                result = False
                for item in items:
                    verdict = test(row, item)
                    if not is_absent(verdict) and verdict:
                        result = True
                        break
                out.append(result)
            return out

        return exists

    raise BatchUnsupported(f"expression {type(expr).__name__} is not batch-compilable")


def _is_test(expr: IsTest) -> Callable[[Any], bool]:
    kind, negated = expr.kind, expr.negated

    def test(value: Any) -> bool:
        if kind == "null":
            result = value is None
        elif kind == "missing":
            result = isinstance(value, Missing)
        else:
            result = is_absent(value)
        return not result if negated else result

    return test


# ---------------------------------------------------------------------------
# EXISTS item predicates: per-(row, item) scalar evaluators
# ---------------------------------------------------------------------------

#: factory(batch) -> fn(row, item) -> value.  Subexpressions that do not
#: mention the quantifier variable are hoisted: compiled as ordinary column
#: evaluators, computed once per batch, and indexed by row.
_ItemEval = Callable[[ColumnBatch], Callable[[int, Any], Any]]


def _compile_item_predicate(expr: Expr, item_var: str, ctx: _Context) -> _ItemEval:
    if not _mentions(expr, item_var):
        column = compile_expr(expr, ctx)

        def hoisted(batch: ColumnBatch):
            values = column(batch)
            return lambda row, item: values[row]

        return hoisted

    if isinstance(expr, Var) and expr.name == item_var:
        return lambda batch: lambda row, item: item

    if isinstance(expr, FieldAccess) and expr.source == item_var:
        path = expr.path
        return lambda batch: lambda row, item: access_path(item, path)

    if isinstance(expr, (Comparison, Arithmetic)):
        left = _compile_item_predicate(expr.left, item_var, ctx)
        right = _compile_item_predicate(expr.right, item_var, ctx)
        op = type(expr)._OPS[expr.op]

        def binary(batch: ColumnBatch):
            lhs, rhs = left(batch), right(batch)

            def evaluate(row: int, item: Any) -> Any:
                left_value = lhs(row, item)
                right_value = rhs(row, item)
                if is_absent(left_value) or is_absent(right_value):
                    return MISSING
                try:
                    return op(left_value, right_value)
                except TypeError:
                    return MISSING

            return evaluate

        return binary

    if isinstance(expr, And):
        operands = [_compile_item_predicate(operand, item_var, ctx)
                    for operand in expr.operands]

        def conjunction(batch: ColumnBatch):
            tests = [operand(batch) for operand in operands]

            def evaluate(row: int, item: Any) -> Any:
                for test in tests:
                    value = test(row, item)
                    if is_absent(value) or not value:
                        return False
                return True

            return evaluate

        return conjunction

    if isinstance(expr, Or):
        operands = [_compile_item_predicate(operand, item_var, ctx)
                    for operand in expr.operands]

        def disjunction(batch: ColumnBatch):
            tests = [operand(batch) for operand in operands]

            def evaluate(row: int, item: Any) -> Any:
                return any(not is_absent(value) and bool(value)
                           for value in (test(row, item) for test in tests))

            return evaluate

        return disjunction

    if isinstance(expr, Not):
        operand = _compile_item_predicate(expr.operand, item_var, ctx)

        def negation(batch: ColumnBatch):
            test = operand(batch)

            def evaluate(row: int, item: Any) -> Any:
                value = test(row, item)
                if is_absent(value):
                    return MISSING
                return not value

            return evaluate

        return negation

    if isinstance(expr, IsTest):
        operand = _compile_item_predicate(expr.operand, item_var, ctx)
        test = _is_test(expr)

        def membership(batch: ColumnBatch):
            source = operand(batch)
            return lambda row, item: test(source(row, item))

        return membership

    if isinstance(expr, Func):
        name = expr.name
        arguments = [_compile_item_predicate(argument, item_var, ctx)
                     for argument in expr.args]

        def function(batch: ColumnBatch):
            sources = [argument(batch) for argument in arguments]
            implementation = _FUNCTIONS[name]

            def evaluate(row: int, item: Any) -> Any:
                values = [source(row, item) for source in sources]
                if values and is_absent(values[0]):
                    return MISSING
                return implementation(*values)

            return evaluate

        return function

    raise BatchUnsupported(
        f"EXISTS predicate over {type(expr).__name__} is not batch-compilable")


# ---------------------------------------------------------------------------
# whole-query planning
# ---------------------------------------------------------------------------

@dataclass
class BatchUnnestPlan:
    """Pushed-down UNNEST: flatten per-row aligned item columns."""

    item_var: str
    #: item-var path -> full wildcard path on the scan variable.
    pushdown_paths: Dict[Path, Path]


@dataclass
class BatchQueryPlan:
    """Everything the batch pipeline needs, compiled once per query.

    The plan is immutable and shared across partition workers: the
    extractor's request trie is read-only after construction, and every
    evaluator closure only reads the batch it is given.
    """

    record_var: str
    #: Columns the batch scan extracts per record (superset of the access
    #: plan's scan paths: every path an evaluator addresses).
    scan_paths: List[Path]
    extractor: BatchExtractor
    lets: List[Tuple[str, ColumnEval]] = field(default_factory=list)
    unnest: Optional[BatchUnnestPlan] = None
    where: Optional[ColumnEval] = None
    group_keys: List[Tuple[str, ColumnEval]] = field(default_factory=list)
    #: One entry per aggregate spec; None marks COUNT(*).
    aggregate_args: List[Optional[ColumnEval]] = field(default_factory=list)
    projections: List[Tuple[str, ColumnEval]] = field(default_factory=list)
    #: Sort-key evaluators for non-grouped ORDER BY, in key order.
    order_keys: List[ColumnEval] = field(default_factory=list)
    #: Whether any evaluator reads ``batch.views`` (whole-record projection).
    #: When False the scan may serve purely from the column-slice cache and
    #: build view-less batches.
    needs_views: bool = True


def plan_batch(spec: QuerySpec, access_plan: AccessPlan):
    """Compile ``spec`` for batch execution.

    Returns ``(plan, None)`` on success or ``(None, reason)`` when the query
    must run on the row pipeline.  ``spec`` is the access plan's *effective*
    spec (EXISTS rewrites applied).
    """
    if not access_plan.consolidate:
        return None, "no consolidated vector access (ADM format or consolidation disabled)"
    if len(spec.unnests) > 1:
        return None, "multiple UNNEST clauses"
    unnest: Optional[BatchUnnestPlan] = None
    if spec.unnests:
        unnest_plan = access_plan.unnest_plans[0]
        if not unnest_plan.pushed_down:
            return None, "UNNEST without access pushdown"
        unnest = BatchUnnestPlan(unnest_plan.clause.item_var,
                                 dict(unnest_plan.pushdown_paths))

    ctx = _Context(spec.record_var, set(access_plan.scan_paths),
                   item_var=unnest.item_var if unnest is not None else None,
                   item_paths=frozenset(unnest.pushdown_paths) if unnest is not None
                   else frozenset())
    try:
        lets: List[Tuple[str, ColumnEval]] = []
        for clause in spec.lets:
            lets.append((clause.name, compile_expr(clause.expr, ctx)))
            ctx.let_names.add(clause.name)
        where = compile_expr(spec.where, ctx) if spec.where is not None else None
        group_keys = [(name, compile_expr(expr, ctx)) for name, expr in spec.group_keys]
        aggregate_args = [compile_expr(aggregate.argument, ctx)
                          if aggregate.argument is not None else None
                          for aggregate in spec.aggregates]
        projections: List[Tuple[str, ColumnEval]] = []
        order_keys: List[ColumnEval] = []
        if not spec.is_aggregation:
            projections = [(name, compile_expr(expr, ctx))
                           for name, expr in spec.projections]
            for key in spec.order_by:
                if not isinstance(key.expr_or_column, Expr):
                    # The row pipeline raises QueryError for this shape; fall
                    # back so the error surfaces from the same place.
                    raise BatchUnsupported("ORDER BY column name in a non-grouped query")
                order_keys.append(compile_expr(key.expr_or_column, ctx))
    except BatchUnsupported as exc:
        return None, str(exc)

    scan_paths = sorted(ctx.record_paths,
                        key=lambda path: (len(path), tuple(map(str, path))))
    return BatchQueryPlan(
        record_var=spec.record_var,
        scan_paths=scan_paths,
        extractor=BatchExtractor(scan_paths),
        lets=lets,
        unnest=unnest,
        where=where,
        group_keys=group_keys,
        aggregate_args=aggregate_args,
        projections=projections,
        order_keys=order_keys,
        needs_views=ctx.uses_views,
    ), None
