"""Aggregate functions with partial (per-partition) aggregation support.

Queries in the paper repartition data for parallel aggregation (paper
Figure 5: per-partition sort/group operators feeding a hash exchange).  The
executor therefore computes *partial* aggregates per partition and merges
them at the coordinator, which is why every aggregate here exposes the
``create / accumulate / merge / finalize`` quartet instead of a single
fold function.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import QueryError
from ..types import MISSING, Missing


def _present(value: Any) -> bool:
    return value is not None and not isinstance(value, Missing)


class Aggregate:
    """Base class of all aggregate functions."""

    name = "abstract"
    #: Whether the aggregate needs an input expression (COUNT(*) does not).
    needs_input = True

    def create(self) -> Any:
        raise NotImplementedError

    def accumulate(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, state: Any, other: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """``COUNT(*)`` / ``COUNT(expr)`` (rows where the expression is present)."""

    name = "count"
    needs_input = False

    def create(self) -> int:
        return 0

    def accumulate(self, state: int, value: Any = True) -> int:
        return state + (1 if _present(value) else 0)

    def merge(self, state: int, other: int) -> int:
        return state + other

    def finalize(self, state: int) -> int:
        return state


class SumAggregate(Aggregate):
    name = "sum"

    def create(self):
        return None

    def accumulate(self, state, value):
        if not _present(value):
            return state
        return value if state is None else state + value

    def merge(self, state, other):
        if other is None:
            return state
        return other if state is None else state + other

    def finalize(self, state):
        return state


class MinAggregate(Aggregate):
    name = "min"

    def create(self):
        return None

    def accumulate(self, state, value):
        if not _present(value):
            return state
        return value if state is None else min(state, value)

    def merge(self, state, other):
        return self.accumulate(state, other)

    def finalize(self, state):
        return state


class MaxAggregate(Aggregate):
    name = "max"

    def create(self):
        return None

    def accumulate(self, state, value):
        if not _present(value):
            return state
        return value if state is None else max(state, value)

    def merge(self, state, other):
        return self.accumulate(state, other)

    def finalize(self, state):
        return state


class AvgAggregate(Aggregate):
    """AVG as a mergeable (sum, count) pair."""

    name = "avg"

    def create(self):
        return (0.0, 0)

    def accumulate(self, state, value):
        if not _present(value):
            return state
        total, count = state
        return (total + value, count + 1)

    def merge(self, state, other):
        return (state[0] + other[0], state[1] + other[1])

    def finalize(self, state):
        total, count = state
        if count == 0:
            return None
        return total / count


class ListifyAggregate(Aggregate):
    """``GROUP AS`` / ``listify``: collect the group's values into a list."""

    name = "listify"

    def create(self) -> List[Any]:
        return []

    def accumulate(self, state: List[Any], value: Any) -> List[Any]:
        if _present(value):
            state.append(value)
        return state

    def merge(self, state: List[Any], other: List[Any]) -> List[Any]:
        state.extend(other)
        return state

    def finalize(self, state: List[Any]) -> List[Any]:
        return state


_REGISTRY: Dict[str, Aggregate] = {
    aggregate.name: aggregate for aggregate in (
        CountAggregate(), SumAggregate(), MinAggregate(), MaxAggregate(),
        AvgAggregate(), ListifyAggregate(),
    )
}


def get_aggregate(name: str) -> Aggregate:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise QueryError(f"unknown aggregate function {name!r}") from exc
