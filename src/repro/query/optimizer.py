"""Optimizer rewrites for querying vector-based (compacted) records.

Field access in the vector-based format is a linear scan over a record's
vectors (paper §3.3.1), so a query with several field accesses would scan
every record several times.  The paper adds one rewrite rule to Algebricks
(§3.4.2): consolidate a query's field-access expressions into a single
``getValues()`` call evaluated once per record, and push that call through
UNNEST and EXISTS so that only the requested nested scalars — not whole
nested objects — flow through the rest of the plan.

:class:`Optimizer` implements both rewrites and produces an
:class:`AccessPlan` the scan/unnest operators consult at runtime:

* ``scan_paths`` — every path rooted at the scan variable, extracted once
  per record with one ``get_values()`` call;
* ``unnest_plans`` — for each UNNEST whose downstream uses are all scalar
  paths on the item variable, the wildcard paths to extract instead of the
  item objects (paper: "extract only the hashtag text instead of the
  hashtag objects");
* rewritten EXISTS predicates that iterate extracted scalars.

Both rewrites can be disabled (``consolidate=False``) to reproduce the
paper's *Inferred (un-op)* ablation (Figure 23); the ADM-format datasets are
never rewritten because their field accesses are offset-guided and already
position-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..config import DEVICE_PROFILES
from ..errors import QueryError
from .expressions import (
    And,
    Arithmetic,
    Comparison,
    Exists,
    Expr,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    Not,
    Or,
    Var,
    is_absent,
)
from .plan import FullScan, IndexProbe, QuerySpec, UnnestClause

Path = Tuple[Any, ...]


@dataclass
class UnnestAccessPlan:
    """How one UNNEST clause is executed."""

    clause: UnnestClause
    #: Path (on the scan variable) of the unnested collection, when direct.
    collection_path: Optional[Path] = None
    #: Pushed-down item paths: item-var path -> full wildcard path on the scan var.
    pushdown_paths: Dict[Path, Path] = field(default_factory=dict)

    @property
    def pushed_down(self) -> bool:
        return bool(self.pushdown_paths)


@dataclass
class AccessPlan:
    """Everything the runtime needs to know about field-access strategy."""

    consolidate: bool
    scan_paths: List[Path] = field(default_factory=list)
    unnest_plans: List[UnnestAccessPlan] = field(default_factory=list)
    rewritten_spec: Optional[QuerySpec] = None

    def effective_spec(self, original: QuerySpec) -> QuerySpec:
        return self.rewritten_spec if self.rewritten_spec is not None else original


class Optimizer:
    """Builds an :class:`AccessPlan` for a query over one dataset."""

    def __init__(self, consolidate_field_access: bool = True,
                 pushdown_through_unnest: bool = True) -> None:
        self.consolidate_field_access = consolidate_field_access
        self.pushdown_through_unnest = pushdown_through_unnest

    def plan(self, spec: QuerySpec, uses_vector_format: bool) -> AccessPlan:
        """Produce the access plan; non-vector formats use plain access."""
        if not uses_vector_format or not self.consolidate_field_access:
            return AccessPlan(consolidate=False,
                              unnest_plans=[UnnestAccessPlan(clause) for clause in spec.unnests])

        record_var = spec.record_var
        rewritten = spec
        if self.pushdown_through_unnest:
            rewritten = self._rewrite_exists(spec, record_var)

        scan_paths: Set[Path] = set()
        for expr in self._expressions(rewritten):
            for node in expr.walk():
                if isinstance(node, FieldAccess) and node.source == record_var:
                    scan_paths.add(node.path)

        unnest_plans: List[UnnestAccessPlan] = []
        for clause in rewritten.unnests:
            plan = UnnestAccessPlan(clause)
            collection = clause.collection
            if isinstance(collection, FieldAccess) and collection.source == record_var:
                plan.collection_path = collection.path
            if (self.pushdown_through_unnest and plan.collection_path is not None
                    and self._can_push_down(rewritten, clause)):
                item_paths = self._item_paths(rewritten, clause.item_var)
                for item_path in item_paths:
                    full = plan.collection_path + ("*",) + item_path
                    plan.pushdown_paths[item_path] = full
                    scan_paths.add(full)
                # The collection objects themselves no longer need extracting.
                scan_paths.discard(plan.collection_path)
            unnest_plans.append(plan)

        return AccessPlan(
            consolidate=True,
            scan_paths=sorted(scan_paths, key=lambda path: (len(path), tuple(map(str, path)))),
            unnest_plans=unnest_plans,
            rewritten_spec=rewritten if rewritten is not spec else None,
        )

    def plan_batch(self, spec: QuerySpec, access_plan: AccessPlan):
        """Compile the query for batch (columnar) execution when possible.

        Returns ``(BatchQueryPlan, None)`` or ``(None, fallback_reason)``;
        ``spec`` must be the access plan's effective spec.
        """
        from .batch_compile import plan_batch

        return plan_batch(spec, access_plan)

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _expressions(spec: QuerySpec) -> List[Expr]:
        expressions: List[Expr] = []
        expressions.extend(clause.expr for clause in spec.lets)
        expressions.extend(clause.collection for clause in spec.unnests)
        if spec.where is not None:
            expressions.append(spec.where)
        expressions.extend(expr for _, expr in spec.group_keys)
        expressions.extend(agg.argument for agg in spec.aggregates if agg.argument is not None)
        expressions.extend(expr for _, expr in spec.projections)
        expressions.extend(key.expr_or_column for key in spec.order_by
                           if isinstance(key.expr_or_column, Expr))
        return expressions

    def _can_push_down(self, spec: QuerySpec, clause: UnnestClause) -> bool:
        """Pushdown is legal when every use of the item var is a scalar path."""
        item_var = clause.item_var
        for expr in self._expressions(spec):
            for node in expr.walk():
                if isinstance(node, Var) and node.name == item_var:
                    return False
                if isinstance(node, FieldAccess) and node.source == item_var and not node.path:
                    return False
                if isinstance(node, Exists):
                    # an Exists iterating the same item var re-binds it; skip pushdown
                    if node.item_var == item_var:
                        return False
                if isinstance(node, IsTest) and any(
                        isinstance(sub, FieldAccess) and sub.source == item_var
                        for sub in node.walk()):
                    # IS MISSING/NULL observes *absence*, but wildcard
                    # extraction only emits present values — pushing the
                    # access down would silently invert the test.
                    return False
        return self._item_paths(spec, item_var) != set()

    def _item_paths(self, spec: QuerySpec, item_var: str) -> Set[Path]:
        paths: Set[Path] = set()
        for expr in self._expressions(spec):
            for node in expr.walk():
                if isinstance(node, FieldAccess) and node.source == item_var and node.path:
                    paths.add(node.path)
        return paths

    # ------------------------------------------------------------------ EXISTS rewrite

    def _rewrite_exists(self, spec: QuerySpec, record_var: str) -> QuerySpec:
        """Push consolidated access through EXISTS quantifiers (Twitter Q3).

        ``SOME ht IN t.entities.hashtags SATISFIES f(ht.text)`` becomes
        ``SOME ht IN t.entities.hashtags[*].text SATISFIES f(ht)`` so the
        consolidated scan extracts only the hashtag texts.
        """
        if spec.where is None:
            return spec
        new_where = _rewrite_expr(spec.where, record_var)
        if new_where is spec.where:
            return spec
        from dataclasses import replace

        return replace(spec, where=new_where)


def _rewrite_expr(expr: Expr, record_var: str) -> Expr:
    """Recursively rewrite EXISTS nodes that qualify for pushdown."""
    if isinstance(expr, Exists):
        collection, item_var, predicate = expr.collection, expr.item_var, expr.predicate
        if isinstance(collection, FieldAccess) and collection.source == record_var:
            item_paths = {
                node.path for node in predicate.walk()
                if isinstance(node, FieldAccess) and node.source == item_var
            }
            direct_uses = any(isinstance(node, Var) and node.name == item_var
                              for node in predicate.walk())
            # IS tests observe absence; extraction drops absent entries, so a
            # rewritten predicate would see a different collection (see
            # _can_push_down).  Leave such EXISTS un-rewritten.
            has_is_test = any(isinstance(node, IsTest) for node in predicate.walk())
            if len(item_paths) == 1 and not direct_uses and not has_is_test:
                (item_path,) = item_paths
                new_collection = FieldAccess(record_var, collection.path + ("*",) + item_path)
                new_predicate = _substitute_access(predicate, item_var, item_path)
                return Exists(new_collection, item_var, new_predicate)
        return expr
    if isinstance(expr, And):
        return And(*[_rewrite_expr(operand, record_var) for operand in expr.operands])
    if isinstance(expr, Or):
        return Or(*[_rewrite_expr(operand, record_var) for operand in expr.operands])
    if isinstance(expr, Not):
        return Not(_rewrite_expr(expr.operand, record_var))
    return expr


# ---------------------------------------------------------------------------
# access-path selection (full scan vs. secondary-index probe)
# ---------------------------------------------------------------------------

#: B+-tree descent pages charged to an index probe before any row is fetched.
PROBE_DESCENT_PAGES = 2


@dataclass
class IndexCandidate:
    """One secondary index the optimizer considered, with its cost estimate."""

    probe: IndexProbe
    selectivity: float
    estimated_rows: float
    cost_seconds: float


@dataclass
class AccessPathChoice:
    """Outcome of access-path selection, with the numbers behind it.

    ``path`` is what the executor runs; the costs and candidates are kept so
    EXPLAIN can show *why* the optimizer picked it.
    """

    path: Any  # FullScan | IndexProbe
    scan_cost_seconds: float = 0.0
    probe_cost_seconds: Optional[float] = None
    estimated_selectivity: Optional[float] = None
    estimated_rows: Optional[float] = None
    candidates: List[IndexCandidate] = field(default_factory=list)
    forced: bool = False

    @property
    def uses_index(self) -> bool:
        return isinstance(self.path, IndexProbe)


def _conjuncts(predicate: Optional[Expr]) -> List[Expr]:
    """Flatten a WHERE tree's top-level AND into a conjunct list."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        flattened: List[Expr] = []
        for operand in predicate.operands:
            flattened.extend(_conjuncts(operand))
        return flattened
    return [predicate]


def _comparison_bound(conjunct: Expr, record_var: str, field_path: Path):
    """``(op, literal)`` with the field on the left, or None if not usable.

    Usable conjuncts are comparisons between exactly the indexed field path
    (on the scan variable) and a literal, in either operand order.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op == "!=":
        return None
    left, right = conjunct.left, conjunct.right
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if (isinstance(left, FieldAccess) and left.source == record_var
            and left.path == field_path and isinstance(right, Literal)):
        op, literal = conjunct.op, right.value
    elif (isinstance(right, FieldAccess) and right.source == record_var
          and right.path == field_path and isinstance(left, Literal)):
        op, literal = flipped[conjunct.op], left.value
    else:
        return None
    if is_absent(literal) or isinstance(literal, (dict, list, tuple)):
        return None
    return op, literal


def extract_key_range(predicate: Optional[Expr], record_var: str, field_path: Path):
    """Combine every usable conjunct over ``field_path`` into one key range.

    Returns ``(low, low_inclusive, high, high_inclusive, used_conjuncts)`` or
    None when no conjunct constrains the field (or the bounds cannot be
    combined, e.g. mixed-type literals).
    """
    low: Any = None
    high: Any = None
    low_inclusive = True
    high_inclusive = True
    used: List[Expr] = []
    try:
        for conjunct in _conjuncts(predicate):
            bound = _comparison_bound(conjunct, record_var, field_path)
            if bound is None:
                continue
            op, literal = bound
            if op == "=":
                if low is None or literal > low or (literal == low and not low_inclusive):
                    low, low_inclusive = literal, True
                if high is None or literal < high or (literal == high and not high_inclusive):
                    high, high_inclusive = literal, True
            elif op in (">", ">="):
                inclusive = op == ">="
                if low is None or literal > low or (literal == low and not inclusive):
                    low, low_inclusive = literal, inclusive
            else:  # "<" or "<="
                inclusive = op == "<="
                if high is None or literal < high or (literal == high and not inclusive):
                    high, high_inclusive = literal, inclusive
            used.append(conjunct)
    except TypeError:
        return None
    if not used:
        return None
    return low, low_inclusive, high, high_inclusive, used


def choose_access_path(spec: QuerySpec, dataset, force: str = "auto") -> AccessPathChoice:
    """Pick a full scan or a secondary-index probe for one query over ``dataset``.

    The cost model is deliberately small (this is the paper's Figure 24
    regime, not a Selinger reconstruction): a full scan pays one seek plus a
    sequential read of the dataset's on-disk bytes; an index probe pays a
    B+-tree descent plus, per estimated matching row, a seek and one page
    read.  Selectivities come from the index's field statistics
    (:class:`~repro.datasets.stats.FieldStatistics`, uniform assumption);
    bandwidth and seek latency come from the dataset's device profile in
    :mod:`repro.config`.  ``force`` overrides the decision: "scan" or
    "index" instead of "auto" (benchmarks and parity tests use both).
    """
    if force not in ("auto", "scan", "index"):
        raise QueryError(f"unknown access-path mode {force!r}; use auto, scan, or index")

    profile = DEVICE_PROFILES[dataset.config.storage.device_kind]
    read_bandwidth = profile["read_bandwidth"]
    seek = profile["seek_latency"]
    page_size = dataset.config.storage.page_size
    scan_cost = seek + dataset.storage_size() / read_bandwidth

    if force == "scan":
        return AccessPathChoice(FullScan("forced"), scan_cost_seconds=scan_cost, forced=True)

    indexes = dataset.list_secondary_indexes()
    if not indexes:
        return AccessPathChoice(FullScan("no secondary indexes"), scan_cost_seconds=scan_cost,
                                forced=force == "index")
    if spec.where is None:
        return AccessPathChoice(FullScan("no WHERE clause"), scan_cost_seconds=scan_cost,
                                forced=force == "index")

    record_count = dataset.approximate_record_count()
    candidates: List[IndexCandidate] = []
    for index_name, field_path in indexes:
        if not field_path:
            continue
        key_range = extract_key_range(spec.where, spec.record_var, tuple(field_path))
        if key_range is None:
            continue
        low, low_inclusive, high, high_inclusive, used = key_range
        probe = IndexProbe(index_name=index_name, field_path=tuple(field_path),
                           low=low, high=high, low_inclusive=low_inclusive,
                           high_inclusive=high_inclusive, residual=spec.where,
                           range_conjuncts=tuple(used))
        statistics = dataset.index_statistics(index_name)
        if probe.is_empty_range:
            selectivity = 0.0
        elif statistics is not None:
            selectivity = statistics.estimate_range_selectivity(low, high)
        else:
            selectivity = 1.0
        estimated_rows = selectivity * record_count
        probe_cost = (seek + PROBE_DESCENT_PAGES * page_size / read_bandwidth
                      + estimated_rows * (seek + page_size / read_bandwidth))
        candidates.append(IndexCandidate(probe, selectivity, estimated_rows, probe_cost))

    if not candidates:
        return AccessPathChoice(FullScan("no indexed predicate in the WHERE clause"),
                                scan_cost_seconds=scan_cost, forced=force == "index")

    best = min(candidates, key=lambda candidate: candidate.cost_seconds)
    if force == "index" or best.cost_seconds < scan_cost:
        return AccessPathChoice(best.probe, scan_cost_seconds=scan_cost,
                                probe_cost_seconds=best.cost_seconds,
                                estimated_selectivity=best.selectivity,
                                estimated_rows=best.estimated_rows,
                                candidates=candidates, forced=force == "index")
    reason = (f"estimated selectivity {best.selectivity:.2%} makes the sequential "
              "scan cheaper")
    return AccessPathChoice(FullScan(reason), scan_cost_seconds=scan_cost,
                            probe_cost_seconds=best.cost_seconds,
                            estimated_selectivity=best.selectivity,
                            estimated_rows=best.estimated_rows,
                            candidates=candidates)


def _substitute_access(expr: Expr, item_var: str, item_path: Path) -> Expr:
    """Replace ``FieldAccess(item_var, item_path)`` with ``Var(item_var)``."""
    if isinstance(expr, FieldAccess) and expr.source == item_var and expr.path == item_path:
        return Var(item_var)
    if isinstance(expr, Comparison):
        return Comparison(expr.op, _substitute_access(expr.left, item_var, item_path),
                          _substitute_access(expr.right, item_var, item_path))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, _substitute_access(expr.left, item_var, item_path),
                          _substitute_access(expr.right, item_var, item_path))
    if isinstance(expr, And):
        return And(*[_substitute_access(operand, item_var, item_path) for operand in expr.operands])
    if isinstance(expr, Or):
        return Or(*[_substitute_access(operand, item_var, item_path) for operand in expr.operands])
    if isinstance(expr, Not):
        return Not(_substitute_access(expr.operand, item_var, item_path))
    if isinstance(expr, Func):
        return Func(expr.name, *[_substitute_access(argument, item_var, item_path)
                                 for argument in expr.args])
    return expr
