"""Physical operators: iterator-based, one pipeline per partition.

A compiled job (paper Figure 5) is a chain of operators per partition —
scan, assign/let, unnest, select, project, pre-aggregation — connected to a
coordinator stage through an exchange.  Each operator here is a Python
iterator of *environments* (dicts mapping variable names to values/views),
which keeps the pipeline lazy: a LIMIT without ORDER BY, for example, stops
scanning as soon as it is satisfied.

The scan operator is where the paper's field-access consolidation happens:
when the access plan says so, it calls ``get_values()`` once per record and
publishes the extracted values in the environment for the expression
evaluator to pick up (see :mod:`repro.query.expressions`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..types import AMultiset, MISSING, Missing
from .aggregates import get_aggregate
from .expressions import EXTRACTED, Expr, is_absent
from .optimizer import AccessPlan, UnnestAccessPlan
from .plan import AggregateSpec, IndexProbe, LetClause, QuerySpec

Environment = Dict[str, Any]


class ScanOperator:
    """Data-source scan over one partition, yielding one environment per record."""

    def __init__(self, partition, record_var: str, access_plan: AccessPlan) -> None:
        self.partition = partition
        self.record_var = record_var
        self.access_plan = access_plan
        self.records_scanned = 0

    def __iter__(self) -> Iterator[Environment]:
        consolidate = self.access_plan.consolidate and self.access_plan.scan_paths
        paths = self.access_plan.scan_paths
        for view in self.partition.scan_views():
            self.records_scanned += 1
            env: Environment = {self.record_var: view}
            if consolidate:
                values = view.get_values(*paths)
                env[EXTRACTED] = {(self.record_var, path): value
                                  for path, value in zip(paths, values)}
            yield env


class IndexProbeOperator:
    """Secondary-index probe source: candidate record views instead of a scan.

    Drop-in replacement for :class:`ScanOperator` at the head of a partition
    pipeline.  The candidates are a superset of the answer (stale index
    entries, unindexed memtable records — see ``Partition.probe_views``), so
    the probe's residual predicate (the query's full WHERE clause) is always
    re-applied downstream by the usual :class:`SelectOperator`.
    ``records_scanned`` counts candidates examined, mirroring the scan
    operator's accounting.
    """

    def __init__(self, partition, record_var: str, access_plan: AccessPlan,
                 probe: IndexProbe) -> None:
        self.partition = partition
        self.record_var = record_var
        self.access_plan = access_plan
        self.probe = probe
        self.records_scanned = 0

    def __iter__(self) -> Iterator[Environment]:
        consolidate = self.access_plan.consolidate and self.access_plan.scan_paths
        paths = self.access_plan.scan_paths
        probe = self.probe
        views = self.partition.probe_views(probe.index_name, probe.low, probe.high,
                                           probe.low_inclusive, probe.high_inclusive)
        for view in views:
            self.records_scanned += 1
            env: Environment = {self.record_var: view}
            if consolidate:
                values = view.get_values(*paths)
                env[EXTRACTED] = {(self.record_var, path): value
                                  for path, value in zip(paths, values)}
            yield env


class LetOperator:
    """Evaluates LET clauses, adding computed bindings to each environment."""

    def __init__(self, child: Iterator[Environment], lets: Sequence[LetClause]) -> None:
        self.child = child
        self.lets = lets

    def __iter__(self) -> Iterator[Environment]:
        for env in self.child:
            for clause in self.lets:
                env[clause.name] = clause.expr.evaluate(env)
            yield env


class UnnestOperator:
    """UNNEST a collection, producing one environment per item.

    With access pushdown (paper §3.4.2) the operator iterates the extracted
    scalar lists instead of materializing the item objects; the item variable
    is still bound (to MISSING) so that stray uses fail loudly rather than
    silently reading stale data.
    """

    def __init__(self, child: Iterator[Environment], plan: UnnestAccessPlan,
                 record_var: str) -> None:
        self.child = child
        self.plan = plan
        self.record_var = record_var

    def __iter__(self) -> Iterator[Environment]:
        clause = self.plan.clause
        for env in self.child:
            if self.plan.pushed_down:
                yield from self._iterate_pushed_down(env)
                continue
            collection = clause.collection.evaluate(env)
            items = self._items(collection)
            for item in items:
                item_env = dict(env)
                item_env[clause.item_var] = item
                yield item_env

    def _iterate_pushed_down(self, env: Environment) -> Iterator[Environment]:
        clause = self.plan.clause
        extracted = env.get(EXTRACTED, {})
        columns: Dict[Tuple[Any, ...], List[Any]] = {}
        length = 0
        for item_path, full_path in self.plan.pushdown_paths.items():
            values = extracted.get((self.record_var, full_path), [])
            if not isinstance(values, list):
                values = []
            columns[item_path] = values
            length = max(length, len(values))
        for index in range(length):
            item_env = dict(env)
            item_extracted = dict(extracted)
            for item_path, values in columns.items():
                value = values[index] if index < len(values) else MISSING
                item_extracted[(clause.item_var, item_path)] = value
            item_env[EXTRACTED] = item_extracted
            item_env[clause.item_var] = MISSING
            yield item_env

    @staticmethod
    def _items(collection: Any) -> List[Any]:
        if isinstance(collection, AMultiset):
            return list(collection.items)
        if isinstance(collection, (list, tuple)):
            return list(collection)
        if is_absent(collection):
            return []
        return [collection]


class SelectOperator:
    """WHERE filter."""

    def __init__(self, child: Iterator[Environment], predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[Environment]:
        for env in self.child:
            value = self.predicate.evaluate(env)
            if not is_absent(value) and value:
                yield env


class ProjectOperator:
    """SELECT projections (non-grouped queries)."""

    def __init__(self, child: Iterator[Environment], projections: Sequence[Tuple[str, Expr]]) -> None:
        self.child = child
        self.projections = projections

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for env in self.child:
            row = {}
            for name, expr in self.projections:
                value = expr.evaluate(env)
                if hasattr(value, "materialize"):
                    value = value.materialize()
                row[name] = value
            yield row


class PartialGroupByOperator:
    """Per-partition hash aggregation producing mergeable partial states.

    This is the local half of the parallel aggregation in paper Figure 5;
    the coordinator merges partials that arrive over the (conceptual)
    hash-partition exchange.
    """

    def __init__(self, child: Iterator[Environment], group_keys: Sequence[Tuple[str, Expr]],
                 aggregates: Sequence[AggregateSpec]) -> None:
        self.child = child
        self.group_keys = group_keys
        self.aggregates = aggregates

    def run(self) -> Dict[Tuple[Any, ...], List[Any]]:
        functions = [get_aggregate(spec.function) for spec in self.aggregates]
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        for env in self.child:
            key = tuple(expr.evaluate(env) for _, expr in self.group_keys)
            if any(isinstance(part, Missing) for part in key):
                continue
            key = tuple(_hashable(part) for part in key)
            states = groups.get(key)
            if states is None:
                states = [function.create() for function in functions]
                groups[key] = states
            for index, (function, spec) in enumerate(zip(functions, self.aggregates)):
                value = spec.argument.evaluate(env) if spec.argument is not None else True
                states[index] = function.accumulate(states[index], value)
        return groups


def merge_partials(partials: Sequence[Dict[Tuple[Any, ...], List[Any]]],
                   aggregates: Sequence[AggregateSpec]) -> Dict[Tuple[Any, ...], List[Any]]:
    """Coordinator-side merge of per-partition partial aggregation states."""
    functions = [get_aggregate(spec.function) for spec in aggregates]
    merged: Dict[Tuple[Any, ...], List[Any]] = {}
    for partial in partials:
        for key, states in partial.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(states)
            else:
                merged[key] = [function.merge(current, incoming)
                               for function, current, incoming in zip(functions, existing, states)]
    return merged


def finalize_groups(groups: Dict[Tuple[Any, ...], List[Any]], spec: QuerySpec) -> List[Dict[str, Any]]:
    """Turn merged group states into output rows."""
    functions = [get_aggregate(aggregate.function) for aggregate in spec.aggregates]
    rows = []
    for key, states in groups.items():
        row: Dict[str, Any] = {}
        for (name, _), part in zip(spec.group_keys, key):
            row[name] = part
        for aggregate, function, state in zip(spec.aggregates, functions, states):
            row[aggregate.output] = function.finalize(state)
        rows.append(row)
    return rows


def order_and_limit(rows: List[Dict[str, Any]], spec: QuerySpec) -> List[Dict[str, Any]]:
    """Apply ORDER BY (on output columns or expressions over rows) and LIMIT."""
    ordered = rows
    for key in reversed(spec.order_by):
        if isinstance(key.expr_or_column, str):
            column = key.expr_or_column

            def sort_key(row, column=column):
                value = row.get(column)
                return (is_absent(value), _orderable(value))
        else:
            expr = key.expr_or_column

            def sort_key(row, expr=expr):
                value = expr.evaluate(row)
                return (is_absent(value), _orderable(value))
        ordered = sorted(ordered, key=sort_key, reverse=key.descending)
    if spec.limit is not None:
        ordered = ordered[:spec.limit]
    return ordered


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    if isinstance(value, AMultiset):
        return tuple(sorted((repr(item) for item in value.items)))
    return value


def _orderable(value: Any) -> Any:
    if is_absent(value):
        return 0
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return str(value)
