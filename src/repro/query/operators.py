"""Physical operators: iterator-based, one pipeline per partition.

A compiled job (paper Figure 5) is a chain of operators per partition —
scan, assign/let, unnest, select, project, pre-aggregation — connected to a
coordinator stage through an exchange.  Each operator here is a Python
iterator of *environments* (dicts mapping variable names to values/views),
which keeps the pipeline lazy: a LIMIT without ORDER BY, for example, stops
scanning as soon as it is satisfied.

The scan operator is where the paper's field-access consolidation happens:
when the access plan says so, it calls ``get_values()`` once per record and
publishes the extracted values in the environment for the expression
evaluator to pick up (see :mod:`repro.query.expressions`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..cache import SliceScanStats
from ..types import AMultiset, MISSING, Missing
from ..vector.batch import ColumnBatch
from .aggregates import get_aggregate
from .expressions import EXTRACTED, Expr, access_path, is_absent
from .optimizer import AccessPlan, UnnestAccessPlan
from .plan import AggregateSpec, IndexProbe, LetClause, QuerySpec

Environment = Dict[str, Any]


class ScanOperator:
    """Data-source scan over one partition, yielding one environment per record."""

    def __init__(self, partition, record_var: str, access_plan: AccessPlan) -> None:
        self.partition = partition
        self.record_var = record_var
        self.access_plan = access_plan
        self.records_scanned = 0

    def __iter__(self) -> Iterator[Environment]:
        consolidate = self.access_plan.consolidate and self.access_plan.scan_paths
        paths = self.access_plan.scan_paths
        for view in self.partition.scan_views():
            self.records_scanned += 1
            env: Environment = {self.record_var: view}
            if consolidate:
                values = view.get_values(*paths)
                env[EXTRACTED] = {(self.record_var, path): value
                                  for path, value in zip(paths, values)}
            yield env


class IndexProbeOperator:
    """Secondary-index probe source: candidate record views instead of a scan.

    Drop-in replacement for :class:`ScanOperator` at the head of a partition
    pipeline.  The candidates are a superset of the answer (stale index
    entries, unindexed memtable records — see ``Partition.probe_views``), so
    the probe's residual predicate (the query's full WHERE clause) is always
    re-applied downstream by the usual :class:`SelectOperator`.
    ``records_scanned`` counts candidates examined, mirroring the scan
    operator's accounting.
    """

    def __init__(self, partition, record_var: str, access_plan: AccessPlan,
                 probe: IndexProbe) -> None:
        self.partition = partition
        self.record_var = record_var
        self.access_plan = access_plan
        self.probe = probe
        self.records_scanned = 0

    def __iter__(self) -> Iterator[Environment]:
        consolidate = self.access_plan.consolidate and self.access_plan.scan_paths
        paths = self.access_plan.scan_paths
        probe = self.probe
        views = self.partition.probe_views(probe.index_name, probe.low, probe.high,
                                           probe.low_inclusive, probe.high_inclusive)
        for view in views:
            self.records_scanned += 1
            env: Environment = {self.record_var: view}
            if consolidate:
                values = view.get_values(*paths)
                env[EXTRACTED] = {(self.record_var, path): value
                                  for path, value in zip(paths, values)}
            yield env


class LetOperator:
    """Evaluates LET clauses, adding computed bindings to each environment."""

    def __init__(self, child: Iterator[Environment], lets: Sequence[LetClause]) -> None:
        self.child = child
        self.lets = lets

    def __iter__(self) -> Iterator[Environment]:
        for env in self.child:
            for clause in self.lets:
                env[clause.name] = clause.expr.evaluate(env)
            yield env


class UnnestOperator:
    """UNNEST a collection, producing one environment per item.

    With access pushdown (paper §3.4.2) the operator iterates the extracted
    scalar lists instead of materializing the item objects; the item variable
    is still bound (to MISSING) so that stray uses fail loudly rather than
    silently reading stale data.
    """

    def __init__(self, child: Iterator[Environment], plan: UnnestAccessPlan,
                 record_var: str) -> None:
        self.child = child
        self.plan = plan
        self.record_var = record_var

    def __iter__(self) -> Iterator[Environment]:
        clause = self.plan.clause
        for env in self.child:
            if self.plan.pushed_down:
                yield from self._iterate_pushed_down(env)
                continue
            collection = clause.collection.evaluate(env)
            items = self._items(collection)
            for item in items:
                item_env = dict(env)
                item_env[clause.item_var] = item
                yield item_env

    def _iterate_pushed_down(self, env: Environment) -> Iterator[Environment]:
        clause = self.plan.clause
        extracted = env.get(EXTRACTED, {})
        columns: Dict[Tuple[Any, ...], List[Any]] = {}
        length = 0
        collection_value: Any = None
        collection_is_scalar = False
        for item_path, full_path in self.plan.pushdown_paths.items():
            values = extracted.get((self.record_var, full_path), [])
            if not isinstance(values, list):
                # Extraction passes a non-collection value at the wildcard
                # prefix through unchanged; SQL++ unnests such a value as a
                # singleton collection, so emit the same one row the
                # non-pushdown path would instead of dropping the record.
                collection_is_scalar = True
                collection_value = values
                continue
            columns[item_path] = values
            length = max(length, len(values))
        if collection_is_scalar and length == 0:
            for item in self._items(collection_value):
                item_env = dict(env)
                item_extracted = dict(extracted)
                for item_path in self.plan.pushdown_paths:
                    item_extracted[(clause.item_var, item_path)] = access_path(item, item_path)
                item_env[EXTRACTED] = item_extracted
                item_env[clause.item_var] = MISSING
                yield item_env
            return
        for index in range(length):
            item_env = dict(env)
            item_extracted = dict(extracted)
            for item_path, values in columns.items():
                value = values[index] if index < len(values) else MISSING
                item_extracted[(clause.item_var, item_path)] = value
            item_env[EXTRACTED] = item_extracted
            item_env[clause.item_var] = MISSING
            yield item_env

    @staticmethod
    def _items(collection: Any) -> List[Any]:
        if isinstance(collection, AMultiset):
            return list(collection.items)
        if isinstance(collection, (list, tuple)):
            return list(collection)
        if is_absent(collection):
            return []
        return [collection]


class SelectOperator:
    """WHERE filter."""

    def __init__(self, child: Iterator[Environment], predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[Environment]:
        for env in self.child:
            value = self.predicate.evaluate(env)
            if not is_absent(value) and value:
                yield env


class ProjectOperator:
    """SELECT projections (non-grouped queries)."""

    def __init__(self, child: Iterator[Environment], projections: Sequence[Tuple[str, Expr]]) -> None:
        self.child = child
        self.projections = projections

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for env in self.child:
            row = {}
            for name, expr in self.projections:
                value = expr.evaluate(env)
                if hasattr(value, "materialize"):
                    value = value.materialize()
                row[name] = value
            yield row


class PartialGroupByOperator:
    """Per-partition hash aggregation producing mergeable partial states.

    This is the local half of the parallel aggregation in paper Figure 5;
    the coordinator merges partials that arrive over the (conceptual)
    hash-partition exchange.
    """

    def __init__(self, child: Iterator[Environment], group_keys: Sequence[Tuple[str, Expr]],
                 aggregates: Sequence[AggregateSpec]) -> None:
        self.child = child
        self.group_keys = group_keys
        self.aggregates = aggregates

    def run(self) -> Dict[Tuple[Any, ...], List[Any]]:
        functions = [get_aggregate(spec.function) for spec in self.aggregates]
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        for env in self.child:
            key = tuple(expr.evaluate(env) for _, expr in self.group_keys)
            if any(isinstance(part, Missing) for part in key):
                continue
            key = tuple(_hashable(part) for part in key)
            states = groups.get(key)
            if states is None:
                states = [function.create() for function in functions]
                groups[key] = states
            for index, (function, spec) in enumerate(zip(functions, self.aggregates)):
                value = spec.argument.evaluate(env) if spec.argument is not None else True
                states[index] = function.accumulate(states[index], value)
        return groups


def merge_partials(partials: Sequence[Dict[Tuple[Any, ...], List[Any]]],
                   aggregates: Sequence[AggregateSpec]) -> Dict[Tuple[Any, ...], List[Any]]:
    """Coordinator-side merge of per-partition partial aggregation states."""
    functions = [get_aggregate(spec.function) for spec in aggregates]
    merged: Dict[Tuple[Any, ...], List[Any]] = {}
    for partial in partials:
        for key, states in partial.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(states)
            else:
                merged[key] = [function.merge(current, incoming)
                               for function, current, incoming in zip(functions, existing, states)]
    return merged


def finalize_groups(groups: Dict[Tuple[Any, ...], List[Any]], spec: QuerySpec) -> List[Dict[str, Any]]:
    """Turn merged group states into output rows."""
    functions = [get_aggregate(aggregate.function) for aggregate in spec.aggregates]
    rows = []
    for key, states in groups.items():
        row: Dict[str, Any] = {}
        for (name, _), part in zip(spec.group_keys, key):
            row[name] = part.original if isinstance(part, _HashableKey) else part
        for aggregate, function, state in zip(spec.aggregates, functions, states):
            row[aggregate.output] = function.finalize(state)
        rows.append(row)
    return rows


def order_and_limit(rows: List[Dict[str, Any]], spec: QuerySpec) -> List[Dict[str, Any]]:
    """Apply ORDER BY (on output columns or expressions over rows) and LIMIT."""
    ordered = rows
    for key in reversed(spec.order_by):
        if isinstance(key.expr_or_column, str):
            column = key.expr_or_column

            def sort_key(row, column=column):
                value = row.get(column)
                return (is_absent(value), _orderable(value))
        else:
            expr = key.expr_or_column

            def sort_key(row, expr=expr):
                value = expr.evaluate(row)
                return (is_absent(value), _orderable(value))
        ordered = sorted(ordered, key=sort_key, reverse=key.descending)
    if spec.limit is not None:
        ordered = ordered[:spec.limit]
    return ordered


class _HashableKey:
    """Hashable stand-in for an unhashable (list/dict/multiset) group-key part.

    Hashing and equality use the converted tuple form so grouping still
    merges identical keys across partitions, while the first-seen original
    value is preserved for :func:`finalize_groups` — GROUP BY on a list- or
    object-valued key returns the original lists/dicts, not tuples.
    """

    __slots__ = ("original", "_converted")

    def __init__(self, original: Any, converted: Any) -> None:
        self.original = original
        self._converted = converted

    def __hash__(self) -> int:
        return hash(self._converted)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _HashableKey):
            return self._converted == other._converted
        return self._converted == other

    def __repr__(self) -> str:
        return f"_HashableKey({self.original!r})"


def _hashable(value: Any) -> Any:
    converted = _converted(value)
    if converted is value:
        return value
    return _HashableKey(value, converted)


def _converted(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_converted(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _converted(item)) for key, item in value.items()))
    if isinstance(value, AMultiset):
        return tuple(sorted((repr(item) for item in value.items)))
    return value


#: Type ranks for ORDER BY over mixed-type columns: absent values first,
#: then booleans, numbers, strings, everything else by textual form.
_RANK_ABSENT = -1
_RANK_BOOL = 0
_RANK_NUMBER = 1
_RANK_STRING = 2
_RANK_OTHER = 3


def _orderable(value: Any) -> Tuple[int, Any]:
    """Total-order sort key for one ORDER BY value.

    Open schemas make mixed-type columns routine (an int in one record, a
    string in another), and raw comparisons across types raise ``TypeError``.
    Ranking by type first, value within the type second, gives every pair of
    values a defined order.
    """
    if is_absent(value):
        return (_RANK_ABSENT, 0)
    if isinstance(value, bool):
        return (_RANK_BOOL, value)
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    return (_RANK_OTHER, str(value))


# ---------------------------------------------------------------------------
# batch (columnar) operators
# ---------------------------------------------------------------------------
#
# Batch counterparts of the row operators above: each pipeline stage is an
# iterator of ColumnBatch objects instead of an iterator of environments.
# The scan decodes all requested column slices for a whole batch of records
# in one extractor pass per record, and the downstream stages evaluate the
# query's *compiled* expressions (see batch_compile) over column lists —
# untouched fields are never materialized.


class BatchScanOperator:
    """Batched data source: chunks a partition's record views into ColumnBatches.

    Also serves as the batched index-probe source when ``probe`` is given
    (candidate views instead of a full scan — the residual predicate is
    re-applied by the batch SELECT downstream, exactly like the row path).
    """

    def __init__(self, partition, record_var: str, scan_paths: Sequence[Tuple[Any, ...]],
                 batch_size: int, extractor=None, probe: Optional[IndexProbe] = None,
                 use_slice_cache: bool = False) -> None:
        self.partition = partition
        self.record_var = record_var
        self.scan_paths = list(scan_paths)
        self.batch_size = max(1, batch_size)
        self.extractor = extractor
        self.probe = probe
        #: Serve full scans through the environment's decoded column-slice
        #: cache.  Only set for plans that never read ``batch.views`` (the
        #: executor checks ``BatchQueryPlan.needs_views``): cached batches
        #: are built column-first with ``views=None``.
        self.use_slice_cache = use_slice_cache
        self.records_scanned = 0
        self.batches_emitted = 0
        #: Column-slice cache row hits/misses of this scan (EXPLAIN ANALYZE).
        self.slice_stats = SliceScanStats()

    def _views(self):
        if self.probe is not None:
            probe = self.probe
            return self.partition.probe_views(probe.index_name, probe.low, probe.high,
                                              probe.low_inclusive, probe.high_inclusive)
        return self.partition.scan_views()

    def __iter__(self) -> Iterator[ColumnBatch]:
        if self.probe is None and self.use_slice_cache and self.extractor is not None:
            source = self.partition.slice_scan_views(self.scan_paths, self.extractor,
                                                     self.slice_stats)
            if source is not None:
                yield from self._iter_slices(source)
                return
        buffer: List[Any] = []
        for view in self._views():
            self.records_scanned += 1
            buffer.append(view)
            if len(buffer) >= self.batch_size:
                yield self._emit(buffer)
                buffer = []
        if buffer:
            yield self._emit(buffer)

    def _emit(self, views: List[Any]) -> ColumnBatch:
        self.batches_emitted += 1
        return ColumnBatch.from_views(views, self.record_var, self.scan_paths,
                                      self.extractor)

    def _iter_slices(self, source) -> Iterator[ColumnBatch]:
        """Chunk ``(values, view)`` pairs into view-less ColumnBatches."""
        pending: List[Tuple[Any, Any]] = []
        for pair in source:
            self.records_scanned += 1
            pending.append(pair)
            if len(pending) >= self.batch_size:
                yield self._emit_slices(pending)
                pending = []
        if pending:
            yield self._emit_slices(pending)

    def _emit_slices(self, pending: List[Tuple[Any, Any]]) -> ColumnBatch:
        self.batches_emitted += 1
        extractor = self.extractor
        columns: List[List[Any]] = [[] for _ in self.scan_paths]
        for values, view in pending:
            if values is None:
                values = extractor.extract(view)
            for column, value in zip(columns, values):
                column.append(value)
        keyed = {(self.record_var, tuple(path)): column
                 for path, column in zip(self.scan_paths, columns)}
        return ColumnBatch(None, keyed, len(pending))


class BatchLetOperator:
    """LET clauses as computed columns, keyed ``(name, ())`` like a whole var."""

    def __init__(self, child: Iterator[ColumnBatch],
                 lets: Sequence[Tuple[str, Any]]) -> None:
        self.child = child
        self.lets = lets

    def __iter__(self) -> Iterator[ColumnBatch]:
        for batch in self.child:
            for name, evaluate in self.lets:
                batch.columns[(name, ())] = evaluate(batch)
            yield batch


class BatchUnnestOperator:
    """Flatten a pushed-down UNNEST: replicate rows, add item columns.

    Mirrors ``UnnestOperator._iterate_pushed_down`` row by row: aligned list
    values fan out one output row per item (MISSING-padded when a column is
    short), and a non-list value at the wildcard prefix unnests as a SQL++
    singleton collection.
    """

    def __init__(self, child: Iterator[ColumnBatch], record_var: str, item_var: str,
                 pushdown_paths: Dict[Tuple[Any, ...], Tuple[Any, ...]]) -> None:
        self.child = child
        self.record_var = record_var
        self.item_var = item_var
        self.pushdown_paths = pushdown_paths

    def __iter__(self) -> Iterator[ColumnBatch]:
        for batch in self.child:
            flattened = self._flatten(batch)
            if flattened.length:
                yield flattened

    def _flatten(self, batch: ColumnBatch) -> ColumnBatch:
        full_columns = {item_path: batch.columns[(self.record_var, full_path)]
                        for item_path, full_path in self.pushdown_paths.items()}
        indices: List[int] = []
        item_columns: Dict[Tuple[Any, ...], List[Any]] = {
            item_path: [] for item_path in self.pushdown_paths}
        for row in range(batch.length):
            row_values = {item_path: column[row]
                          for item_path, column in full_columns.items()}
            length = 0
            scalar: Any = None
            has_scalar = False
            for value in row_values.values():
                if isinstance(value, list):
                    length = max(length, len(value))
                else:
                    has_scalar = True
                    scalar = value
            if has_scalar and length == 0:
                for item in UnnestOperator._items(scalar):
                    indices.append(row)
                    for item_path, column in item_columns.items():
                        column.append(access_path(item, item_path))
                continue
            for index in range(length):
                indices.append(row)
                for item_path, column in item_columns.items():
                    values = row_values[item_path]
                    column.append(values[index]
                                  if isinstance(values, list) and index < len(values)
                                  else MISSING)
        flattened = batch.take(indices)
        for item_path, column in item_columns.items():
            flattened.columns[(self.item_var, item_path)] = column
        return flattened


class BatchSelectOperator:
    """WHERE filter over a predicate column."""

    def __init__(self, child: Iterator[ColumnBatch], predicate) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[ColumnBatch]:
        for batch in self.child:
            column = self.predicate(batch)
            indices = [row for row, value in enumerate(column)
                       if not is_absent(value) and value]
            if len(indices) == batch.length:
                yield batch
            elif indices:
                yield batch.take(indices)


class BatchProjectOperator:
    """SELECT projections, one list of output rows per input batch."""

    def __init__(self, child: Iterator[ColumnBatch],
                 projections: Sequence[Tuple[str, Any]]) -> None:
        self.child = child
        self.projections = projections

    def __iter__(self) -> Iterator[List[Dict[str, Any]]]:
        for batch in self.child:
            columns = [(name, evaluate(batch)) for name, evaluate in self.projections]
            block = []
            for row in range(batch.length):
                out: Dict[str, Any] = {}
                for name, column in columns:
                    value = column[row]
                    if hasattr(value, "materialize"):
                        value = value.materialize()
                    out[name] = value
                block.append(out)
            yield block


class BatchGroupByOperator:
    """Per-partition hash aggregation over column batches.

    Produces the same mergeable ``{key tuple: [states]}`` structure as
    :class:`PartialGroupByOperator` — the coordinator's merge_partials /
    finalize_groups path is shared between execution modes.
    """

    def __init__(self, child: Iterator[ColumnBatch],
                 group_keys: Sequence[Tuple[str, Any]],
                 aggregates: Sequence[AggregateSpec],
                 argument_evals: Sequence[Optional[Any]]) -> None:
        self.child = child
        self.group_keys = group_keys
        self.aggregates = aggregates
        self.argument_evals = argument_evals

    def run(self) -> Dict[Tuple[Any, ...], List[Any]]:
        functions = [get_aggregate(spec.function) for spec in self.aggregates]
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        for batch in self.child:
            key_columns = [evaluate(batch) for _, evaluate in self.group_keys]
            argument_columns = [evaluate(batch) if evaluate is not None else None
                                for evaluate in self.argument_evals]
            if not key_columns:
                states = groups.get(())
                if states is None:
                    states = [function.create() for function in functions]
                    groups[()] = states
                for index, function in enumerate(functions):
                    column = argument_columns[index]
                    if column is None:
                        # COUNT(*): n accumulates of True fold to merge(state, n).
                        states[index] = function.merge(states[index], batch.length)
                        continue
                    state = states[index]
                    for value in column:
                        state = function.accumulate(state, value)
                    states[index] = state
                continue
            for row in range(batch.length):
                key = tuple(column[row] for column in key_columns)
                if any(isinstance(part, Missing) for part in key):
                    continue
                key = tuple(_hashable(part) for part in key)
                states = groups.get(key)
                if states is None:
                    states = [function.create() for function in functions]
                    groups[key] = states
                for index, function in enumerate(functions):
                    column = argument_columns[index]
                    value = column[row] if column is not None else True
                    states[index] = function.accumulate(states[index], value)
        return groups
