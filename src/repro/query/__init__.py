"""Partitioned query engine: expressions, operators, optimizer, executor."""

from .aggregates import get_aggregate
from .executor import ExecutionStats, QueryExecutor, QueryResult
from .expressions import (
    And,
    Arithmetic,
    Comparison,
    Exists,
    Expr,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    Not,
    Or,
    Var,
    field,
    lit,
    register_function,
)
from .optimizer import AccessPlan, Optimizer
from .plan import AggregateSpec, OrderKey, QueryBuilder, QuerySpec, UnnestClause, scan

__all__ = [
    "QueryExecutor",
    "QueryResult",
    "ExecutionStats",
    "Optimizer",
    "AccessPlan",
    "QueryBuilder",
    "QuerySpec",
    "UnnestClause",
    "AggregateSpec",
    "OrderKey",
    "scan",
    "Expr",
    "Var",
    "Literal",
    "FieldAccess",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Arithmetic",
    "IsTest",
    "Func",
    "Exists",
    "field",
    "lit",
    "register_function",
    "get_aggregate",
]
