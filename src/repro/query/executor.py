"""Query executor: per-partition pipelines + a coordinator stage.

Execution follows the paper's Hyracks job model (Figure 5): every partition
runs the same local pipeline (scan → let → unnest → select → partial
aggregation / projection); results then flow through a conceptual exchange
to a coordinator stage that merges partial aggregates, applies global
ordering and LIMIT, and returns the rows.

Two pieces of the paper's machinery are made explicit here:

* **Schema broadcast** (§3.4.1): when the plan repartitions data (group-by,
  global sort, aggregation) and the dataset stores compacted records, each
  partition's schema is serialized and "broadcast" to every other partition
  before execution.  The broadcast bytes are recorded in the execution
  stats; local-only plans skip it, exactly as the paper describes.
* **I/O accounting**: the executor snapshots each storage environment's
  simulated device before running and reports the delta, so benchmarks can
  present both measured wall-clock time and simulated SATA/NVMe I/O time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.dataset import Dataset
from ..errors import QueryError
from .expressions import is_absent
from .operators import (
    IndexProbeOperator,
    LetOperator,
    PartialGroupByOperator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    UnnestOperator,
    finalize_groups,
    merge_partials,
    order_and_limit,
)
from .optimizer import AccessPathChoice, AccessPlan, Optimizer, choose_access_path
from .plan import QuerySpec


@dataclass
class ExecutionStats:
    """Measured and simulated costs of one query execution."""

    wall_seconds: float = 0.0
    records_scanned: int = 0
    rows_returned: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_io_seconds: float = 0.0
    schema_broadcast_bytes: int = 0
    schema_broadcasts: int = 0
    per_partition_seconds: List[float] = field(default_factory=list)
    #: Access path the optimizer chose: "FullScan" or "IndexProbe".
    access_path: str = "FullScan"
    #: Secondary index probed, when ``access_path == "IndexProbe"``.
    index_name: Optional[str] = None

    @property
    def parallel_wall_seconds(self) -> float:
        """Wall time if partitions had run concurrently (max, not sum)."""
        if not self.per_partition_seconds:
            return self.wall_seconds
        coordinator = self.wall_seconds - sum(self.per_partition_seconds)
        return max(self.per_partition_seconds) + max(coordinator, 0.0)

    @property
    def total_seconds(self) -> float:
        """Wall time plus simulated device time (the benchmark headline number)."""
        return self.wall_seconds + self.simulated_io_seconds


@dataclass
class QueryResult:
    rows: List[Dict[str, Any]]
    stats: ExecutionStats
    #: The optimizer's access-path decision (costs, candidates) for EXPLAIN
    #: surfaces and benchmark assertions.
    access_path: Optional[AccessPathChoice] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Executes :class:`~repro.query.plan.QuerySpec` objects against datasets."""

    def __init__(self, consolidate_field_access: bool = True,
                 pushdown_through_unnest: bool = True,
                 cold_cache: bool = False,
                 access_path: str = "auto") -> None:
        self.optimizer = Optimizer(consolidate_field_access, pushdown_through_unnest)
        #: Drop buffer caches before running (used to make query benchmarks
        #: I/O-bound like the paper's cold runs).
        self.cold_cache = cold_cache
        #: Access-path policy: "auto" (cost-based), "scan" (force full scans),
        #: or "index" (probe whenever an indexed predicate exists).
        self.access_path = access_path

    # ------------------------------------------------------------------ public API

    def execute(self, dataset: Dataset, spec: QuerySpec) -> QueryResult:
        stats = ExecutionStats()
        access_plan = self.optimizer.plan(spec, dataset.config.storage_format.uses_vector_format)
        spec = access_plan.effective_spec(spec)
        choice = choose_access_path(spec, dataset, force=self.access_path)
        stats.access_path = choice.path.name
        if choice.uses_index:
            stats.index_name = choice.path.index_name

        environments = {id(environment): environment for environment in dataset.environments}
        if self.cold_cache:
            for environment in environments.values():
                environment.drop_caches()
        io_before = {key: environment.device.snapshot()
                     for key, environment in environments.items()}
        started = time.perf_counter()

        if spec.repartitions:
            self._broadcast_schemas(dataset, stats)

        partials: List[Dict[Tuple[Any, ...], List[Any]]] = []
        plain_rows: List[Dict[str, Any]] = []
        ordered_candidates: List[Tuple[Tuple[Any, ...], Dict[str, Any]]] = []

        for partition in dataset.partitions:
            partition_started = time.perf_counter()
            pipeline, scan = self._local_pipeline(partition, spec, access_plan, choice)
            if spec.is_aggregation:
                grouping = PartialGroupByOperator(pipeline, spec.group_keys, spec.aggregates)
                partials.append(grouping.run())
            elif spec.order_by:
                ordered_candidates.extend(self._collect_ordered(pipeline, spec))
            else:
                plain_rows.extend(self._collect_plain(pipeline, spec))
            stats.per_partition_seconds.append(time.perf_counter() - partition_started)
            stats.records_scanned += scan.records_scanned
            if (spec.limit is not None and not spec.is_aggregation and not spec.order_by
                    and len(plain_rows) >= spec.limit):
                break

        rows = self._coordinator_stage(spec, partials, plain_rows, ordered_candidates)
        stats.wall_seconds = time.perf_counter() - started
        stats.rows_returned = len(rows)
        for key, environment in environments.items():
            delta = environment.device.stats.diff(io_before[key])
            stats.bytes_read += delta.bytes_read
            stats.bytes_written += delta.bytes_written
            stats.simulated_io_seconds += environment.device.simulated_seconds(delta)
        return QueryResult(rows, stats, access_path=choice)

    # ------------------------------------------------------------------ local stage

    def _local_pipeline(self, partition, spec: QuerySpec, access_plan: AccessPlan,
                        choice: AccessPathChoice):
        if choice.uses_index:
            scan = IndexProbeOperator(partition, spec.record_var, access_plan, choice.path)
        else:
            scan = ScanOperator(partition, spec.record_var, access_plan)
        pipeline: Iterator = iter(scan)
        if spec.lets:
            pipeline = iter(LetOperator(pipeline, spec.lets))
        for unnest_plan in access_plan.unnest_plans:
            pipeline = iter(UnnestOperator(pipeline, unnest_plan, spec.record_var))
        if spec.where is not None:
            pipeline = iter(SelectOperator(pipeline, spec.where))
        return pipeline, scan

    def _collect_plain(self, pipeline: Iterator, spec: QuerySpec) -> List[Dict[str, Any]]:
        rows = []
        for row in ProjectOperator(pipeline, spec.projections):
            rows.append(row)
            if spec.limit is not None and len(rows) >= spec.limit:
                break
        return rows

    def _collect_ordered(self, pipeline: Iterator, spec: QuerySpec):
        """Project rows while remembering their sort keys (evaluated pre-projection)."""
        candidates = []
        order_exprs = []
        for key in spec.order_by:
            if isinstance(key.expr_or_column, str):
                raise QueryError("non-grouped queries must ORDER BY an expression")
            order_exprs.append(key)
        for env in pipeline:
            sort_key = []
            for key in order_exprs:
                value = key.expr_or_column.evaluate(env)
                value = (is_absent(value), _orderable(value))
                sort_key.append(value)
            row = {}
            for name, expr in spec.projections:
                value = expr.evaluate(env)
                if hasattr(value, "materialize"):
                    value = value.materialize()
                row[name] = value
            candidates.append((tuple(sort_key), row))
        return candidates

    # ------------------------------------------------------------------ coordinator stage

    def _coordinator_stage(self, spec: QuerySpec, partials, plain_rows, ordered_candidates):
        if spec.is_aggregation:
            merged = merge_partials(partials, spec.aggregates)
            rows = finalize_groups(merged, spec)
            return order_and_limit(rows, spec)
        if spec.order_by:
            descending = spec.order_by[0].descending
            ordered = sorted(ordered_candidates, key=lambda pair: pair[0], reverse=descending)
            rows = [row for _, row in ordered]
            if spec.limit is not None:
                rows = rows[:spec.limit]
            return rows
        if spec.limit is not None:
            return plain_rows[:spec.limit]
        return plain_rows

    # ------------------------------------------------------------------ schema broadcast

    def _broadcast_schemas(self, dataset: Dataset, stats: ExecutionStats) -> None:
        """Serialize each partition's schema to every other partition (§3.4.1)."""
        if not dataset.config.storage_format.uses_vector_format:
            return
        if dataset.partition_count <= 1:
            return
        schemas = dataset.schemas()
        payloads = {partition_id: schema.to_bytes()
                    for partition_id, schema in schemas.items() if schema is not None}
        if not payloads:
            return
        receivers = dataset.partition_count - 1
        stats.schema_broadcasts += 1
        stats.schema_broadcast_bytes += sum(len(payload) for payload in payloads.values()) * receivers


def _orderable(value: Any) -> Any:
    if is_absent(value):
        return 0
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return str(value)
