"""Query executor: parallel per-partition pipelines + a coordinator stage.

Execution follows the paper's Hyracks job model (Figure 5): every partition
runs the same local pipeline (scan → let → unnest → select → partial
aggregation / projection); results then flow through a conceptual exchange
to a coordinator stage that merges partial aggregates, applies global
ordering and LIMIT, and returns the rows.

Partitions genuinely fan out across a worker pool (§2.2: one LSM index per
partition, jobs run against all of them concurrently).  The ``parallelism``
knob controls the pool width — the default is one worker per partition, and
``parallelism=1`` runs the partitions inline in partition order, preserving
the historical sequential behaviour exactly.  Whatever the pool width,
per-partition outputs are merged in partition-id order, so the returned
rows are identical across parallelism settings by construction.

Pieces of the paper's machinery made explicit here:

* **Schema broadcast** (§3.4.1): when the plan repartitions data (group-by,
  global sort, aggregation) and the dataset stores compacted records, each
  partition's schema is serialized and "broadcast" to every other partition
  before execution.  The broadcast bytes are recorded in the execution
  stats; local-only plans skip it, exactly as the paper describes.
* **I/O accounting**: each partition worker opens a thread-local accounting
  scope on its environment's simulated device, so byte counts are exact and
  per-partition even while workers share one device — no snapshot/diff
  window over shared counters.
* **Early cancellation**: ``LIMIT`` without ``ORDER BY`` stops work through
  a thread-safe token.  A partition's output is only used when the
  partitions *before* it (in partition-id order) did not already satisfy
  the limit, so the token cancels exactly the partitions whose rows cannot
  appear in the answer — result parity with the sequential run is kept by
  construction.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..cache import PhysicalPlan
from ..config import env_float, env_int, env_str
from ..core.dataset import Dataset
from ..errors import QueryDeadlineError, QueryError
from ..obs import CARDINALITY_MISESTIMATE, NULL_SPAN, StatsDictMixin, emit_event
from ..obs import tracer as _tracer
from .batch_compile import BatchQueryPlan
from .expressions import is_absent
from .operators import (
    BatchGroupByOperator,
    BatchLetOperator,
    BatchProjectOperator,
    BatchScanOperator,
    BatchSelectOperator,
    BatchUnnestOperator,
    IndexProbeOperator,
    LetOperator,
    PartialGroupByOperator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    UnnestOperator,
    _orderable,
    finalize_groups,
    merge_partials,
    order_and_limit,
)
from .optimizer import AccessPathChoice, AccessPlan, Optimizer, choose_access_path
from .plan import QuerySpec

#: Environment variable overriding the *default* worker count (an explicit
#: ``parallelism=`` argument always wins).  CI runs the suite once with
#: ``REPRO_PARALLELISM=1`` to keep the sequential path covered.
PARALLELISM_ENV_VAR = "REPRO_PARALLELISM"

#: Environment variable overriding the default execution mode ("batch" or
#: "row"); an explicit ``execution_mode=`` argument always wins.
EXECUTION_MODE_ENV_VAR = "REPRO_EXECUTION_MODE"

#: Environment variable overriding the default batch size; ``0`` disables
#: batch execution entirely, ``1`` stress-tests the chunking logic.
BATCH_SIZE_ENV_VAR = "REPRO_BATCH_SIZE"

#: Environment variable setting a default per-query deadline in seconds; an
#: explicit ``deadline=`` argument always wins.  Unset means no deadline.
DEADLINE_ENV_VAR = "REPRO_QUERY_DEADLINE"

#: Records per ColumnBatch when nothing overrides it.
DEFAULT_BATCH_SIZE = 1024


class ExecutionMode(Enum):
    """How partition pipelines evaluate the query.

    ``BATCH`` (the default) runs the vectorized columnar pipeline whenever
    the plan compiles for it and falls back to the row pipeline otherwise —
    results are row-identical by construction, so the fallback is
    transparent (the chosen mode and any fallback reason are recorded in
    :class:`ExecutionStats`).  ``ROW`` forces the row-at-a-time pipeline.
    """

    ROW = "row"
    BATCH = "batch"


@dataclass
class OperatorStats(StatsDictMixin):
    """Measured cost of one operator within one partition's pipeline.

    ``seconds`` is *inclusive* time — the wall clock spent pulling rows out
    of this operator, which includes everything upstream of it (the same
    convention as PostgreSQL's ``EXPLAIN ANALYZE`` actual times).  Only
    populated when the executor instruments (``analyze=True`` or tracing
    enabled); the disabled fast path never builds probes.
    """

    operator: str
    rows_out: int = 0
    seconds: float = 0.0
    #: Device bytes attributed to this operator (only the source operator
    #: reads pages; downstream operators show 0).
    bytes_read: int = 0
    #: Column batches pulled through this stage (batch-mode runs only;
    #: ``rows_out`` still counts rows, summed across batches).
    batches: int = 0
    #: perf_counter stamps of the first/last pull (span synthesis).
    start: float = 0.0
    end: float = 0.0


class _OperatorProbe:
    """Iterator wrapper counting rows and inclusive wall time of one stage."""

    __slots__ = ("_source", "stats")

    def __init__(self, source: Iterator, name: str) -> None:
        self._source = iter(source)
        self.stats = OperatorStats(operator=name)

    def __iter__(self) -> "_OperatorProbe":
        return self

    def __next__(self):
        stats = self.stats
        started = time.perf_counter()
        if stats.start == 0.0:
            stats.start = started
        try:
            item = next(self._source)
        except StopIteration:
            stats.end = time.perf_counter()
            stats.seconds += stats.end - started
            raise
        now = time.perf_counter()
        stats.seconds += now - started
        stats.end = now
        stats.rows_out += 1
        return item


class _BatchOperatorProbe:
    """Probe for batch pipelines: items are row blocks, not single rows.

    ``rows_out`` counts rows (``len()`` of each ColumnBatch / projected
    block) so EXPLAIN ANALYZE actuals stay comparable across execution
    modes; ``batches`` counts the pulls."""

    __slots__ = ("_source", "stats")

    def __init__(self, source: Iterator, name: str) -> None:
        self._source = iter(source)
        self.stats = OperatorStats(operator=name)

    def __iter__(self) -> "_BatchOperatorProbe":
        return self

    def __next__(self):
        stats = self.stats
        started = time.perf_counter()
        if stats.start == 0.0:
            stats.start = started
        try:
            item = next(self._source)
        except StopIteration:
            stats.end = time.perf_counter()
            stats.seconds += stats.end - started
            raise
        now = time.perf_counter()
        stats.seconds += now - started
        stats.end = now
        stats.rows_out += len(item)
        stats.batches += 1
        return item


@dataclass
class PartitionStats(StatsDictMixin):
    """Measured cost of one partition's local pipeline."""

    partition_id: int
    seconds: float = 0.0
    records_scanned: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_io_seconds: float = 0.0
    #: True when the LIMIT cancellation token stopped (or skipped) this
    #: partition because earlier partitions already satisfied the limit.
    cancelled: bool = False
    #: Column batches the partition's scan emitted (batch-mode runs only).
    batches: int = 0
    #: Per-operator actuals, pipeline order (instrumented runs only).
    operators: List[OperatorStats] = field(default_factory=list)
    #: Buffer-cache activity of this partition's pipeline (instrumented
    #: runs only; shared caches mean cross-partition attribution is the
    #: environment's, summed at the execution level).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Column-slice cache rows served / decoded by this partition's batch
    #: scan (always collected — the scan counts them anyway).
    slice_hits: int = 0
    slice_misses: int = 0


@dataclass
class ExecutionStats(StatsDictMixin):
    """Measured and simulated costs of one query execution."""

    _DERIVED = ("parallel_wall_seconds", "sequential_equivalent_seconds",
                "measured_speedup", "total_seconds", "cache_hit_ratio",
                "cardinality_error")

    wall_seconds: float = 0.0
    #: Measured time of the coordinator stage (merge partials / global sort /
    #: LIMIT) — captured explicitly, not inferred from a subtraction.
    coordinator_seconds: float = 0.0
    #: Worker-pool width the execution actually used.
    parallelism: int = 1
    records_scanned: int = 0
    rows_returned: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_io_seconds: float = 0.0
    schema_broadcast_bytes: int = 0
    schema_broadcasts: int = 0
    #: Pipeline the partitions actually ran: "batch" or "row".
    execution_mode: str = "row"
    #: Records per ColumnBatch (batch mode only).
    batch_size: Optional[int] = None
    #: Why a batch-mode request fell back to the row pipeline (None when
    #: batch ran, or when row mode was requested explicitly).
    fallback_reason: Optional[str] = None
    #: Column batches scanned across all partitions (batch mode only).
    batches_processed: int = 0
    per_partition: List[PartitionStats] = field(default_factory=list)
    #: Access path the optimizer chose: "FullScan" or "IndexProbe".
    access_path: str = "FullScan"
    #: Secondary index probed, when ``access_path == "IndexProbe"``.
    index_name: Optional[str] = None
    #: Optimizer's cardinality estimate at the access path (rows expected to
    #: match the WHERE clause); ``None`` when the cost model had no estimate.
    estimated_rows: Optional[float] = None
    #: Measured rows surviving the filter stage (instrumented runs only).
    actual_matched_rows: Optional[int] = None
    #: Buffer-cache activity during the execution (instrumented runs only).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Column-slice cache rows served from / decoded into the cache across
    #: all partitions (batch-mode full scans; zero elsewhere).
    slice_cache_hits: int = 0
    slice_cache_misses: int = 0
    #: Where the physical plan came from: "cache" (plan-cache hit — parse,
    #: bind, and optimize were all skipped), "compiled" (cache miss or a
    #: cache-bypassing path), or None when the executor was driven with a
    #: prebuilt QuerySpec directly.
    plan_source: Optional[str] = None

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def cardinality_error(self) -> Optional[float]:
        """Estimated-vs-actual row-count divergence factor (>= 1.0).

        Computed with +1 smoothing so zero estimates/actuals stay finite:
        ``(max(est, act) + 1) / (min(est, act) + 1)``.  ``None`` until an
        instrumented run measured the actual cardinality.
        """
        if self.estimated_rows is None or self.actual_matched_rows is None:
            return None
        high = max(self.estimated_rows, float(self.actual_matched_rows))
        low = min(self.estimated_rows, float(self.actual_matched_rows))
        return (high + 1.0) / (low + 1.0)

    def operator_totals(self) -> List[OperatorStats]:
        """Per-operator actuals summed across partitions, pipeline order.

        ``seconds`` sums each partition's inclusive time, so with parallel
        workers it exceeds wall time — it reads as "total operator work",
        like PostgreSQL's actual-time-times-loops."""
        totals: Dict[str, OperatorStats] = {}
        order: List[str] = []
        for partition in self.per_partition:
            for op_stats in partition.operators:
                aggregate = totals.get(op_stats.operator)
                if aggregate is None:
                    totals[op_stats.operator] = OperatorStats(
                        operator=op_stats.operator, rows_out=op_stats.rows_out,
                        seconds=op_stats.seconds, bytes_read=op_stats.bytes_read,
                        batches=op_stats.batches)
                    order.append(op_stats.operator)
                else:
                    aggregate.rows_out += op_stats.rows_out
                    aggregate.seconds += op_stats.seconds
                    aggregate.bytes_read += op_stats.bytes_read
                    aggregate.batches += op_stats.batches
        return [totals[name] for name in order]

    @property
    def per_partition_seconds(self) -> List[float]:
        """Per-partition pipeline seconds, in partition order."""
        return [partition.seconds for partition in self.per_partition]

    @property
    def parallel_wall_seconds(self) -> float:
        """Measured critical path: the slowest partition plus the coordinator.

        .. deprecated:: PR 3
           This used to be *simulated* from a sequential run as
           ``max(per_partition) + (wall - sum(per_partition))`` with the
           coordinator share clamped at zero — meaningless once partitions
           really overlap.  It is now derived purely from measured data
           (``coordinator_seconds`` is captured explicitly); compare it with
           ``wall_seconds`` to see scheduling/GIL overhead of the real run.
        """
        if not self.per_partition:
            return self.wall_seconds
        return max(self.per_partition_seconds) + self.coordinator_seconds

    @property
    def sequential_equivalent_seconds(self) -> float:
        """What a one-worker run of the same partition work would cost
        (sum of measured partition times plus the measured coordinator)."""
        if not self.per_partition:
            return self.wall_seconds
        return sum(self.per_partition_seconds) + self.coordinator_seconds

    @property
    def measured_speedup(self) -> float:
        """Sequential-equivalent time over the measured wall time."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.sequential_equivalent_seconds / self.wall_seconds

    @property
    def total_seconds(self) -> float:
        """Wall time plus simulated device time (the benchmark headline number)."""
        return self.wall_seconds + self.simulated_io_seconds


@dataclass
class QueryResult:
    rows: List[Dict[str, Any]]
    stats: ExecutionStats
    #: The optimizer's access-path decision (costs, candidates) for EXPLAIN
    #: surfaces and benchmark assertions.
    access_path: Optional[AccessPathChoice] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class LimitCancellation:
    """Thread-safe early-cancel token for LIMIT without ORDER BY.

    The coordinator concatenates partition outputs in partition-id order and
    truncates to the limit, so partition ``k``'s rows reach the answer only
    if partitions ``0..k-1`` contribute fewer than ``limit`` rows.  A worker
    may therefore stop (or never start) once every earlier partition has
    completed and their combined row count satisfies the limit — the exact
    thread-safe generalization of the sequential loop's early ``break``.
    """

    def __init__(self, limit: int, partition_count: int) -> None:
        self.limit = limit
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._completed: List[Optional[int]] = [None] * partition_count

    def mark_complete(self, index: int, row_count: int) -> None:
        with self._lock:
            self._completed[index] = row_count

    def satisfied_before(self, index: int) -> bool:
        """True when partitions ``0..index-1`` already fill the limit."""
        with self._lock:
            total = 0
            for count in self._completed[:index]:
                if count is None:
                    return False
                total += count
                if total >= self.limit:
                    return True
            return False


class _DeadlineGuard:
    """Per-query deadline shared by every partition worker.

    Cooperative cancellation in the same spirit as :class:`LimitCancellation`:
    the pipeline checks the guard at row/batch boundaries, and the first
    worker to notice expiry flips ``expired`` — a plain bool write (atomic
    under the GIL, and this is advisory: a sibling that misses the flip just
    hits its own clock check) — so its siblings fail fast instead of each
    running out the full clock.
    """

    __slots__ = ("seconds", "deadline_at", "expired")

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.deadline_at = time.perf_counter() + seconds
        self.expired = False

    def check(self) -> None:
        if self.expired or time.perf_counter() >= self.deadline_at:
            self.expired = True
            raise QueryDeadlineError(
                f"query exceeded its {self.seconds:g}s deadline")

    def guarded(self, source: Iterator, stride: int = 32) -> Iterator:
        """Wrap a pipeline iterator, checking the clock every ``stride`` pulls
        (batch pipelines pass ``stride=1`` — one pull is many rows)."""
        for count, item in enumerate(source):
            if count % stride == 0:
                self.check()
            yield item


class QueryExecutor:
    """Executes :class:`~repro.query.plan.QuerySpec` objects against datasets."""

    def __init__(self, consolidate_field_access: bool = True,
                 pushdown_through_unnest: bool = True,
                 cold_cache: bool = False,
                 access_path: str = "auto",
                 parallelism: Optional[int] = None,
                 analyze: bool = False,
                 execution_mode: Optional[Union[ExecutionMode, str]] = None,
                 batch_size: Optional[int] = None,
                 deadline: Optional[float] = None) -> None:
        self.optimizer = Optimizer(consolidate_field_access, pushdown_through_unnest)
        #: Drop buffer caches before running (used to make query benchmarks
        #: I/O-bound like the paper's cold runs).
        self.cold_cache = cold_cache
        #: Access-path policy: "auto" (cost-based), "scan" (force full scans),
        #: or "index" (probe whenever an indexed predicate exists).
        self.access_path = access_path
        #: Worker-pool width.  ``None`` means one worker per partition
        #: (overridable via the ``REPRO_PARALLELISM`` environment variable);
        #: ``1`` runs partitions inline, sequentially, in partition order.
        self.parallelism = parallelism
        #: Collect per-operator actuals (rows, inclusive time, bytes, cache
        #: activity) for EXPLAIN ANALYZE.  Off by default: the probes cost a
        #: perf_counter call per row pulled, which the plain path must not
        #: pay.  Instrumentation also engages while tracing is enabled.
        self.analyze = analyze
        #: Pipeline flavor: BATCH (vectorized, with transparent row
        #: fallback) or ROW.  ``None`` defers to ``REPRO_EXECUTION_MODE``,
        #: then to BATCH.
        self.execution_mode = execution_mode
        #: Records per ColumnBatch.  ``None`` defers to ``REPRO_BATCH_SIZE``,
        #: then to ``DEFAULT_BATCH_SIZE``; ``0`` disables batch execution.
        self.batch_size = batch_size
        #: Per-query deadline in seconds; queries that exceed it raise
        #: :class:`~repro.errors.QueryDeadlineError` cooperatively at
        #: row/batch boundaries.  ``None`` defers to ``REPRO_QUERY_DEADLINE``,
        #: then to no deadline; ``0`` expires immediately (tests).
        self.deadline = deadline
        #: Optimizer flags, kept for the plan-cache signature.
        self._consolidate_field_access = consolidate_field_access
        self._pushdown_through_unnest = pushdown_through_unnest
        # Env-knob reads hoisted out of the per-query hot path: each knob is
        # read (through the repro.config accessors) exactly once, here, and
        # invalid values fail fast at construction instead of at execute.
        self._resolved_execution_mode = self._read_execution_mode()
        self._resolved_batch_size = self._read_batch_size()
        self._resolved_deadline = self._read_deadline()
        self._env_parallelism = self._read_env_parallelism()

    # ------------------------------------------------------------------ public API

    def execute(self, dataset: Dataset, spec: QuerySpec) -> QueryResult:
        with _tracer.span("query.execute", dataset=dataset.config.name) as execute_span:
            result = self._execute(dataset, spec)
            execute_span.set_attribute("rows", len(result.rows))
            execute_span.set_attribute("access_path", result.stats.access_path)
            return result

    def execute_physical(self, dataset: Dataset, physical: PhysicalPlan) -> QueryResult:
        """Run a previously prepared :class:`PhysicalPlan` (plan-cache hits).

        Skips parse/bind (never entered) *and* optimize (cached); everything
        downstream — partition fan-out, stats, metrics — is identical to
        :meth:`execute`.
        """
        with _tracer.span("query.execute", dataset=dataset.config.name) as execute_span:
            result = self._execute(dataset, physical.spec, physical=physical)
            execute_span.set_attribute("rows", len(result.rows))
            execute_span.set_attribute("access_path", result.stats.access_path)
            return result

    def execute_prepared(self, dataset: Dataset,
                         spec: QuerySpec) -> Tuple[QueryResult, PhysicalPlan]:
        """Optimize *and* run ``spec``, returning the plan alongside the result.

        The plan-cache miss path: :meth:`prepare_physical` runs inside the
        ``query.execute`` span (so traces keep ``query.optimize`` nested
        exactly as :meth:`execute` does) and the resulting plan is handed
        back for the caller to cache.
        """
        with _tracer.span("query.execute", dataset=dataset.config.name) as execute_span:
            physical = self.prepare_physical(dataset, spec)
            result = self._execute(dataset, physical.spec, physical=physical)
            execute_span.set_attribute("rows", len(result.rows))
            execute_span.set_attribute("access_path", result.stats.access_path)
            return result, physical

    def prepare_physical(self, dataset: Dataset, spec: QuerySpec) -> PhysicalPlan:
        """Optimize ``spec`` down to the physical plan without executing it.

        The returned plan is immutable and shared safely across executions
        and threads; pair it with :meth:`execute_physical`.  Cache keys must
        include :meth:`plan_signature` — the plan bakes in this executor's
        optimizer flags, access-path policy, and batch-mode resolution.
        """
        with _tracer.span("query.optimize"):
            access_plan = self.optimizer.plan(
                spec, dataset.config.storage_format.uses_vector_format)
            effective_spec = access_plan.effective_spec(spec)
            choice = choose_access_path(effective_spec, dataset, force=self.access_path)
        batch_plan: Optional[BatchQueryPlan] = None
        fallback_reason: Optional[str] = None
        if self._resolved_execution_mode is ExecutionMode.BATCH:
            if self._resolved_batch_size > 0:
                batch_plan, fallback_reason = self.optimizer.plan_batch(
                    effective_spec, access_plan)
            else:
                fallback_reason = "batch size 0 disables batch execution"
        return PhysicalPlan(spec=effective_spec, access_plan=access_plan,
                            choice=choice, batch_plan=batch_plan,
                            fallback_reason=fallback_reason)

    def plan_signature(self) -> Tuple:
        """The plan-relevant part of this executor's configuration.

        Two executors with equal signatures produce interchangeable
        :class:`PhysicalPlan` objects for the same spec and dataset state,
        so the signature is part of every plan-cache key.
        """
        return (self._consolidate_field_access, self._pushdown_through_unnest,
                self.access_path, self._resolved_execution_mode.value,
                self._resolved_batch_size > 0)

    def _execute(self, dataset: Dataset, spec: QuerySpec,
                 physical: Optional[PhysicalPlan] = None) -> QueryResult:
        stats = ExecutionStats()
        if physical is None:
            physical = self.prepare_physical(dataset, spec)
        spec = physical.spec
        access_plan = physical.access_plan
        choice = physical.choice
        batch_plan: Optional[BatchQueryPlan] = physical.batch_plan
        stats.access_path = choice.path.name
        if choice.uses_index:
            stats.index_name = choice.path.index_name
        stats.estimated_rows = choice.estimated_rows
        stats.fallback_reason = physical.fallback_reason

        batch_size = self._resolved_batch_size
        stats.execution_mode = "batch" if batch_plan is not None else "row"
        if batch_plan is not None:
            stats.batch_size = batch_size

        if self.cold_cache:
            for environment in {id(env): env for env in dataset.environments}.values():
                environment.drop_caches()

        instrument = self.analyze or _tracer.enabled
        environments = list({id(env): env for env in dataset.environments}.values())
        caches_before = ([environment.buffer_cache.stats_snapshot()
                          for environment in environments] if instrument else None)

        parallelism = self._resolve_parallelism(dataset)
        stats.parallelism = parallelism
        started = time.perf_counter()

        if spec.repartitions:
            self._broadcast_schemas(dataset, stats)

        token: Optional[LimitCancellation] = None
        if (spec.limit is not None and not spec.is_aggregation and not spec.order_by
                and dataset.partition_count > 1):
            token = LimitCancellation(spec.limit, dataset.partition_count)

        deadline = self._resolve_deadline()
        guard = _DeadlineGuard(deadline) if deadline is not None else None

        outputs: List[Tuple[str, Any]] = [None] * dataset.partition_count
        if parallelism <= 1:
            for index, partition in enumerate(dataset.partitions):
                outputs[index], partition_stats = self._run_partition(
                    index, partition, spec, access_plan, choice, token, instrument,
                    batch_plan, batch_size, guard)
                stats.per_partition.append(partition_stats)
        else:
            with ThreadPoolExecutor(max_workers=parallelism,
                                    thread_name_prefix="repro-query") as pool:
                # wrap_context per submission: each worker needs its own
                # context copy (a Context can only be entered once at a
                # time), and the no-op path returns the method unchanged.
                futures = [pool.submit(_tracer.wrap_context(self._run_partition),
                                       index, partition, spec, access_plan, choice,
                                       token, instrument, batch_plan, batch_size,
                                       guard)
                           for index, partition in enumerate(dataset.partitions)]
                for index, future in enumerate(futures):
                    outputs[index], partition_stats = future.result()
                    stats.per_partition.append(partition_stats)
        if guard is not None:
            guard.check()

        coordinator_started = time.perf_counter()
        with _tracer.span("query.coordinator"):
            rows = self._coordinator_stage(spec, outputs)
        ended = time.perf_counter()
        stats.coordinator_seconds = ended - coordinator_started
        stats.wall_seconds = ended - started
        stats.rows_returned = len(rows)
        for partition_stats in stats.per_partition:
            stats.records_scanned += partition_stats.records_scanned
            stats.bytes_read += partition_stats.bytes_read
            stats.bytes_written += partition_stats.bytes_written
            stats.simulated_io_seconds += partition_stats.simulated_io_seconds
            stats.batches_processed += partition_stats.batches
            stats.slice_cache_hits += partition_stats.slice_hits
            stats.slice_cache_misses += partition_stats.slice_misses

        if instrument:
            for environment, before in zip(environments, caches_before):
                cache_delta = environment.buffer_cache.stats_snapshot().diff(before)
                stats.cache_hits += cache_delta.hits
                stats.cache_misses += cache_delta.misses
            self._measure_cardinality(dataset, stats)
        self._publish_metrics(dataset, stats)
        return QueryResult(rows, stats, access_path=choice)

    def _measure_cardinality(self, dataset: Dataset, stats: ExecutionStats) -> None:
        """Record actual matched rows; warn on >10x estimate divergence.

        "Matched rows" are the rows leaving the filter stage (the last
        pipeline operator before projection/grouping), the measured analog
        of the cost model's selectivity-based estimate — the feedback signal
        ROADMAP item 5's adaptive statistics will consume.
        """
        matched = 0
        measured = False
        for partition in stats.per_partition:
            if len(partition.operators) >= 2:
                # [-1] is the terminal stage (PROJECT / GROUP BY / SORT);
                # [-2] is the last pipeline operator — SELECT when a WHERE
                # clause exists, otherwise the scan/unnest feeding it.
                matched += partition.operators[-2].rows_out
                measured = True
        if not measured:
            return
        stats.actual_matched_rows = matched
        error = stats.cardinality_error
        if self.analyze and error is not None and error > 10.0:
            emit_event(CARDINALITY_MISESTIMATE,
                       dataset=dataset.config.name,
                       access_path=stats.access_path,
                       index=stats.index_name,
                       estimated_rows=round(stats.estimated_rows, 1),
                       actual_rows=matched,
                       error_factor=round(error, 1))

    @staticmethod
    def _publish_metrics(dataset: Dataset, stats: ExecutionStats) -> None:
        registry = dataset.metrics
        registry.counter("queries_executed").inc()
        registry.counter("query_rows_returned").inc(stats.rows_returned)
        registry.counter("query_records_scanned").inc(stats.records_scanned)
        registry.histogram("query_wall_seconds").observe(stats.wall_seconds)
        if stats.execution_mode == "batch":
            registry.counter("query_batch_executions").inc()
            registry.counter("query_batches_processed").inc(stats.batches_processed)
        elif stats.fallback_reason is not None:
            registry.counter("query_batch_fallbacks").inc()

    def _read_execution_mode(self) -> ExecutionMode:
        mode = self.execution_mode
        if mode is None:
            env_value = env_str(EXECUTION_MODE_ENV_VAR)
            if not env_value:
                return ExecutionMode.BATCH
            mode = env_value
        if isinstance(mode, ExecutionMode):
            return mode
        try:
            return ExecutionMode(str(mode).lower())
        except ValueError:
            raise QueryError(
                f"unknown execution mode {mode!r}; use "
                f"{' or '.join(member.value for member in ExecutionMode)}")

    def _read_batch_size(self) -> int:
        size = self.batch_size
        if size is None:
            try:
                size = env_int(BATCH_SIZE_ENV_VAR)
            except ValueError as exc:
                raise QueryError(str(exc))
            if size is None:
                return DEFAULT_BATCH_SIZE
        if size < 0:
            raise QueryError(f"batch size must be >= 0, got {size}")
        return size

    def _read_deadline(self) -> Optional[float]:
        seconds = self.deadline
        if seconds is None:
            try:
                seconds = env_float(DEADLINE_ENV_VAR)
            except ValueError as exc:
                raise QueryError(str(exc))
            if seconds is None:
                return None
        if seconds < 0:
            raise QueryError(f"query deadline must be >= 0 seconds, got {seconds}")
        return float(seconds)

    def _read_env_parallelism(self) -> Optional[int]:
        if self.parallelism is not None:
            return None
        try:
            return env_int(PARALLELISM_ENV_VAR)
        except ValueError as exc:
            raise QueryError(str(exc))

    # Resolved-knob accessors: construction-time values, no env reads here
    # (EXPLAIN renders them and the execute path consumes them per query).

    def _resolve_execution_mode(self) -> ExecutionMode:
        return self._resolved_execution_mode

    def _resolve_batch_size(self) -> int:
        return self._resolved_batch_size

    def _resolve_deadline(self) -> Optional[float]:
        return self._resolved_deadline

    def _resolve_parallelism(self, dataset: Dataset) -> int:
        requested = self.parallelism
        if requested is None:
            requested = self._env_parallelism
            if requested is None:
                requested = dataset.partition_count
        if requested < 1:
            raise QueryError(f"parallelism must be >= 1, got {requested}")
        return min(requested, dataset.partition_count)

    # ------------------------------------------------------------------ local stage

    def _run_partition(self, index: int, partition, spec: QuerySpec,
                       access_plan: AccessPlan, choice: AccessPathChoice,
                       token: Optional[LimitCancellation],
                       instrument: bool = False,
                       batch_plan: Optional[BatchQueryPlan] = None,
                       batch_size: int = 0,
                       guard: Optional[_DeadlineGuard] = None):
        """One partition's full local pipeline (runs on a worker thread)."""
        partition_stats = PartitionStats(partition_id=partition.partition_id)
        partition_started = time.perf_counter()
        if guard is not None:
            guard.check()
        if token is not None and token.satisfied_before(index):
            partition_stats.cancelled = True
            partition_stats.seconds = time.perf_counter() - partition_started
            return ("plain", []), partition_stats

        device = partition.environment.device
        with _tracer.span("query.partition",
                          partition=partition.partition_id) as partition_span:
            with device.accounting_scope() as io_scope:
                if batch_plan is not None:
                    pipeline, scan, probes = self._local_pipeline_batch(
                        partition, spec, choice, batch_plan, batch_size, instrument)
                else:
                    pipeline, scan, probes = self._local_pipeline(
                        partition, spec, access_plan, choice, instrument)
                if guard is not None:
                    # One pull is a whole ColumnBatch in batch mode, so the
                    # clock is checked every pull there and every 32 rows in
                    # row mode — the same cadence as LIMIT cancellation.
                    pipeline = guard.guarded(
                        pipeline, stride=1 if batch_plan is not None else 32)
                if spec.is_aggregation:
                    if batch_plan is not None:
                        grouping = BatchGroupByOperator(pipeline, batch_plan.group_keys,
                                                        spec.aggregates,
                                                        batch_plan.aggregate_args)
                    else:
                        grouping = PartialGroupByOperator(pipeline, spec.group_keys,
                                                          spec.aggregates)
                    stage_started = time.perf_counter()
                    partial = grouping.run()
                    output = ("partial", partial)
                    if instrument:
                        probes.append(_terminal_stats("GROUP BY (partial)",
                                                      len(partial), stage_started))
                elif spec.order_by:
                    stage_started = time.perf_counter()
                    if batch_plan is not None:
                        candidates = self._collect_ordered_batch(pipeline, batch_plan, spec)
                    else:
                        candidates = self._collect_ordered(pipeline, spec)
                    output = ("ordered", candidates)
                    if instrument:
                        probes.append(_terminal_stats("SORT+PROJECT",
                                                      len(candidates), stage_started))
                else:
                    abort_check = (lambda: token.satisfied_before(index)) if token else None
                    stage_started = time.perf_counter()
                    if batch_plan is not None:
                        rows, aborted = self._collect_plain_batch(pipeline, batch_plan,
                                                                  spec, abort_check)
                    else:
                        rows, aborted = self._collect_plain(pipeline, spec, abort_check)
                    partition_stats.cancelled = aborted
                    if token is not None and not aborted:
                        token.mark_complete(index, len(rows))
                    output = ("plain", rows)
                    if instrument:
                        probes.append(_terminal_stats("PROJECT", len(rows), stage_started))
            partition_span.set_attribute("rows_scanned", scan.records_scanned)
        partition_stats.seconds = time.perf_counter() - partition_started
        partition_stats.records_scanned = scan.records_scanned
        if batch_plan is not None:
            partition_stats.batches = scan.batches_emitted
            partition_stats.slice_hits = scan.slice_stats.hits
            partition_stats.slice_misses = scan.slice_stats.misses
        partition_stats.bytes_read = io_scope.bytes_read
        partition_stats.bytes_written = io_scope.bytes_written
        partition_stats.simulated_io_seconds = device.simulated_seconds(io_scope)
        if instrument and probes:
            # All page reads happen while the source operator pulls pages;
            # downstream operators only touch decoded rows.
            probes[0].stats.bytes_read = io_scope.bytes_read
            for probe in probes:
                op_stats = (probe.stats
                            if isinstance(probe, (_OperatorProbe, _BatchOperatorProbe))
                            else probe)
                partition_stats.operators.append(op_stats)
                self._synthesize_operator_span(op_stats, partition_span)
        return output, partition_stats

    @staticmethod
    def _synthesize_operator_span(op_stats: OperatorStats, partition_span) -> None:
        """Record a per-operator span under the partition span (tracing only).

        Operator timing is collected by iterator probes, not context
        managers, so the spans are synthesized after the fact from the
        probes' first/last pull stamps."""
        if not _tracer.enabled or partition_span is NULL_SPAN or op_stats.start == 0.0:
            return
        _tracer.record_span(f"operator.{op_stats.operator}",
                            trace_id=partition_span.trace_id,
                            parent_id=partition_span.span_id,
                            start=op_stats.start, end=op_stats.end,
                            rows=op_stats.rows_out,
                            seconds=round(op_stats.seconds, 6))

    def _local_pipeline(self, partition, spec: QuerySpec, access_plan: AccessPlan,
                        choice: AccessPathChoice, instrument: bool = False):
        """Build the local operator chain; with ``instrument``, each stage is
        wrapped in an :class:`_OperatorProbe` and the probe list is returned
        (pipeline order) for EXPLAIN ANALYZE / trace synthesis."""
        probes: List[_OperatorProbe] = []

        def tap(source: Iterator, name: str) -> Iterator:
            if not instrument:
                return source
            probe = _OperatorProbe(source, name)
            probes.append(probe)
            return probe

        if choice.uses_index:
            scan = IndexProbeOperator(partition, spec.record_var, access_plan, choice.path)
            scan_name = f"IndexProbe({choice.path.index_name})"
        else:
            scan = ScanOperator(partition, spec.record_var, access_plan)
            scan_name = "FullScan"
        pipeline: Iterator = tap(iter(scan), scan_name)
        if spec.lets:
            pipeline = tap(iter(LetOperator(pipeline, spec.lets)), "LET")
        unnest_count = len(access_plan.unnest_plans)
        for position, unnest_plan in enumerate(access_plan.unnest_plans):
            name = "UNNEST" if unnest_count == 1 else f"UNNEST[{position}]"
            pipeline = tap(iter(UnnestOperator(pipeline, unnest_plan, spec.record_var)), name)
        if spec.where is not None:
            pipeline = tap(iter(SelectOperator(pipeline, spec.where)), "SELECT")
        return pipeline, scan, probes

    def _local_pipeline_batch(self, partition, spec: QuerySpec,
                              choice: AccessPathChoice, batch_plan: BatchQueryPlan,
                              batch_size: int, instrument: bool = False):
        """Batch counterpart of :meth:`_local_pipeline`: same stage names,
        ColumnBatch iterators instead of environment iterators."""
        probes: List[_BatchOperatorProbe] = []

        def tap(source: Iterator, name: str) -> Iterator:
            if not instrument:
                return source
            probe = _BatchOperatorProbe(source, name)
            probes.append(probe)
            return probe

        if spec.limit is not None and not spec.is_aggregation and not spec.order_by:
            # Plain LIMIT stops the row scan after `limit` records; chunking
            # by at most `limit` keeps the batch scan equally lazy (it may
            # overshoot by less than one batch when a WHERE filters rows).
            batch_size = min(batch_size, spec.limit)
        probe = choice.path if choice.uses_index else None
        scan = BatchScanOperator(partition, spec.record_var, batch_plan.scan_paths,
                                 batch_size, batch_plan.extractor, probe=probe,
                                 use_slice_cache=not batch_plan.needs_views)
        scan_name = (f"IndexProbe({choice.path.index_name})" if choice.uses_index
                     else "FullScan")
        pipeline: Iterator = tap(iter(scan), scan_name)
        if batch_plan.lets:
            pipeline = tap(iter(BatchLetOperator(pipeline, batch_plan.lets)), "LET")
        if batch_plan.unnest is not None:
            unnest = BatchUnnestOperator(pipeline, spec.record_var,
                                         batch_plan.unnest.item_var,
                                         batch_plan.unnest.pushdown_paths)
            pipeline = tap(iter(unnest), "UNNEST")
        if batch_plan.where is not None:
            pipeline = tap(iter(BatchSelectOperator(pipeline, batch_plan.where)), "SELECT")
        return pipeline, scan, probes

    def _collect_plain(self, pipeline: Iterator, spec: QuerySpec,
                       abort_check=None) -> Tuple[List[Dict[str, Any]], bool]:
        """Project rows up to the limit; abort when the token says the
        partitions before this one already satisfy it."""
        rows = []
        for count, row in enumerate(ProjectOperator(pipeline, spec.projections)):
            rows.append(row)
            if spec.limit is not None and len(rows) >= spec.limit:
                break
            if abort_check is not None and count % 32 == 0 and abort_check():
                return rows, True
        return rows, False

    def _collect_ordered(self, pipeline: Iterator, spec: QuerySpec):
        """Project rows while remembering their sort keys (evaluated pre-projection)."""
        candidates = []
        order_exprs = []
        for key in spec.order_by:
            if isinstance(key.expr_or_column, str):
                raise QueryError("non-grouped queries must ORDER BY an expression")
            order_exprs.append(key)
        for env in pipeline:
            sort_key = []
            for key in order_exprs:
                value = key.expr_or_column.evaluate(env)
                value = (is_absent(value), _orderable(value))
                sort_key.append(value)
            row = {}
            for name, expr in spec.projections:
                value = expr.evaluate(env)
                if hasattr(value, "materialize"):
                    value = value.materialize()
                row[name] = value
            candidates.append((tuple(sort_key), row))
        if spec.limit is not None and len(candidates) > spec.limit:
            # Per-partition top-k: under the coordinator's stable comparator a
            # row beyond this partition's local top-`limit` can never reach
            # the global answer, so only `limit` candidates cross the
            # exchange and the coordinator sorts parallelism*limit rows.
            candidates = _sort_candidates(candidates, spec.order_by)[:spec.limit]
        return candidates

    def _collect_plain_batch(self, pipeline: Iterator, batch_plan: BatchQueryPlan,
                             spec: QuerySpec,
                             abort_check=None) -> Tuple[List[Dict[str, Any]], bool]:
        """Batch counterpart of :meth:`_collect_plain` (abort checked per batch)."""
        rows: List[Dict[str, Any]] = []
        for block in BatchProjectOperator(pipeline, batch_plan.projections):
            rows.extend(block)
            if spec.limit is not None and len(rows) >= spec.limit:
                return rows[:spec.limit], False
            if abort_check is not None and abort_check():
                return rows, True
        return rows, False

    def _collect_ordered_batch(self, pipeline: Iterator, batch_plan: BatchQueryPlan,
                               spec: QuerySpec):
        """Batch counterpart of :meth:`_collect_ordered`: identical
        ``(sort_key, row)`` candidates, sort keys evaluated columnwise."""
        candidates = []
        for batch in pipeline:
            key_columns = [evaluate(batch) for evaluate in batch_plan.order_keys]
            projection_columns = [(name, evaluate(batch))
                                  for name, evaluate in batch_plan.projections]
            for index in range(len(batch)):
                sort_key = []
                for column in key_columns:
                    value = column[index]
                    sort_key.append((is_absent(value), _orderable(value)))
                row = {}
                for name, column in projection_columns:
                    value = column[index]
                    if hasattr(value, "materialize"):
                        value = value.materialize()
                    row[name] = value
                candidates.append((tuple(sort_key), row))
        if spec.limit is not None and len(candidates) > spec.limit:
            candidates = _sort_candidates(candidates, spec.order_by)[:spec.limit]
        return candidates

    # ------------------------------------------------------------------ coordinator stage

    def _coordinator_stage(self, spec: QuerySpec, outputs: Sequence[Tuple[str, Any]]):
        """Merge per-partition outputs, always in partition-id order, so the
        result is independent of worker scheduling."""
        if spec.is_aggregation:
            partials = [payload for _, payload in outputs]
            merged = merge_partials(partials, spec.aggregates)
            rows = finalize_groups(merged, spec)
            return order_and_limit(rows, spec)
        if spec.order_by:
            candidates: List[Tuple[Tuple[Any, ...], Dict[str, Any]]] = []
            for _, payload in outputs:
                candidates.extend(payload)
            rows = [row for _, row in _sort_candidates(candidates, spec.order_by)]
            if spec.limit is not None:
                rows = rows[:spec.limit]
            return rows
        plain_rows: List[Dict[str, Any]] = []
        for _, payload in outputs:
            plain_rows.extend(payload)
            if spec.limit is not None and len(plain_rows) >= spec.limit:
                break
        if spec.limit is not None:
            return plain_rows[:spec.limit]
        return plain_rows

    # ------------------------------------------------------------------ schema broadcast

    def _broadcast_schemas(self, dataset: Dataset, stats: ExecutionStats) -> None:
        """Serialize each partition's schema to every other partition (§3.4.1)."""
        if not dataset.config.storage_format.uses_vector_format:
            return
        if dataset.partition_count <= 1:
            return
        schemas = dataset.schemas()
        payloads = {partition_id: schema.to_bytes()
                    for partition_id, schema in schemas.items() if schema is not None}
        if not payloads:
            return
        receivers = dataset.partition_count - 1
        stats.schema_broadcasts += 1
        stats.schema_broadcast_bytes += sum(len(payload) for payload in payloads.values()) * receivers


def _terminal_stats(name: str, rows_out: int, started: float) -> OperatorStats:
    """Stats for a materializing terminal stage (GROUP BY / sort / project).

    These stages drain their input inside one call rather than being pulled
    row by row, so they are timed around the drain instead of per ``next()``;
    ``seconds`` stays inclusive, consistent with the probe convention."""
    ended = time.perf_counter()
    return OperatorStats(operator=name, rows_out=rows_out,
                         seconds=ended - started, start=started, end=ended)


def _sort_candidates(candidates: List[Tuple[Tuple[Any, ...], Dict[str, Any]]],
                     order_by) -> List[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
    """Stable per-key passes, least-significant key first, so each key
    honours its own ASC/DESC direction (mirrors order_and_limit).  Shared by
    the per-partition top-k truncation and the coordinator's global sort so
    both apply the exact same comparator."""
    for position in range(len(order_by) - 1, -1, -1):
        candidates = sorted(candidates,
                            key=lambda pair, p=position: pair[0][p],
                            reverse=order_by[position].descending)
    return candidates
