"""Expression tree evaluated by the query operators.

Expressions mirror the slice of SQL++ the paper's experiment queries need:
field access (``t.user.name``), comparisons, boolean connectives,
arithmetic, and a handful of builtin functions (``length``, ``lowercase``,
``array_count``, ``array_contains``, ``is_array``...).  SQL++'s MISSING
semantics are preserved: accessing an absent field yields ``MISSING`` and
any comparison or function over MISSING/NULL evaluates to a non-true value,
so predicates silently drop such records — exactly how the Twitter Q3
hashtag filter behaves on tweets without hashtags.

Field accesses evaluate against the *record views* produced by the scan
operator (ADM, vector-based, or plain dict views).  When the optimizer has
consolidated a query's accesses into a single ``get_values()`` call
(paper §3.4.2), the extracted values are placed in the environment under
``EXTRACTED`` and field accesses read from there instead of re-scanning the
record — that is what makes consolidation effective for the vector format.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..types import AMultiset, MISSING, Missing

#: Environment key holding {(var, path): value} produced by consolidation.
EXTRACTED = "__extracted__"


def is_absent(value: Any) -> bool:
    """True for MISSING and NULL (SQL++ 'unknown' values)."""
    return value is None or isinstance(value, Missing)


class Expr:
    """Base expression."""

    def evaluate(self, env: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expr):
    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, env: Dict[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class Var(Expr):
    """Reference to a bound variable (scan record, unnest item, alias)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: Dict[str, Any]) -> Any:
        if self.name not in env:
            raise QueryError(f"unbound variable ${self.name}")
        return env[self.name]

    def __repr__(self) -> str:
        return f"Var({self.name})"


class FieldAccess(Expr):
    """``$var.path[0].path[1]...`` — access into a record view or dict."""

    def __init__(self, source: str, path: Sequence[Any]) -> None:
        self.source = source
        self.path = tuple(path)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        extracted = env.get(EXTRACTED)
        if extracted is not None:
            key = (self.source, self.path)
            if key in extracted:
                return extracted[key]
        value = env.get(self.source, MISSING)
        return access_path(value, self.path)

    def __repr__(self) -> str:
        return f"FieldAccess({self.source}, {'.'.join(map(str, self.path))})"


def access_path(value: Any, path: Tuple[Any, ...]) -> Any:
    """Navigate ``path`` into a record view, dict, or collection value."""
    if not path:
        return value
    if hasattr(value, "get_field"):
        return value.get_field(*path)
    current = value
    for step in path:
        if is_absent(current):
            return MISSING
        if isinstance(step, str):
            if isinstance(current, dict) and step in current:
                current = current[step]
            else:
                return MISSING
        else:
            items = current.items if isinstance(current, AMultiset) else current
            if not isinstance(items, (list, tuple)) or not isinstance(step, int):
                return MISSING
            if step < 0 or step >= len(items):
                return MISSING
            current = items[step]
    return current


class Comparison(Expr):
    _OPS: Dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if is_absent(left) or is_absent(right):
            return MISSING
        try:
            return self._OPS[self.op](left, right)
        except TypeError:
            return MISSING

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    def __init__(self, *operands: Expr) -> None:
        self.operands = operands

    def children(self) -> Sequence[Expr]:
        return self.operands

    def evaluate(self, env: Dict[str, Any]) -> Any:
        for operand in self.operands:
            value = operand.evaluate(env)
            if is_absent(value) or not value:
                return False
        return True


class Or(Expr):
    def __init__(self, *operands: Expr) -> None:
        self.operands = operands

    def children(self) -> Sequence[Expr]:
        return self.operands

    def evaluate(self, env: Dict[str, Any]) -> Any:
        return any(not is_absent(value) and bool(value)
                   for value in (operand.evaluate(env) for operand in self.operands))


class Not(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        value = self.operand.evaluate(env)
        if is_absent(value):
            return MISSING
        return not value


class IsTest(Expr):
    """SQL++ ``IS [NOT] NULL | MISSING | UNKNOWN`` membership tests.

    Unlike comparisons, IS tests never propagate MISSING — they exist to
    *observe* absence, so they always return a boolean (``missing IS NULL``
    is false here: NULL and MISSING stay distinguishable, which is what the
    tuple compactor's MISSING-vs-NULL storage distinction relies on).
    """

    KINDS = ("null", "missing", "unknown")

    def __init__(self, operand: Expr, kind: str, negated: bool = False) -> None:
        if kind not in self.KINDS:
            raise QueryError(f"unknown IS test {kind!r}")
        self.operand = operand
        self.kind = kind
        self.negated = negated

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        value = self.operand.evaluate(env)
        if self.kind == "null":
            result = value is None
        elif self.kind == "missing":
            result = isinstance(value, Missing)
        else:
            result = is_absent(value)
        return not result if self.negated else result

    def __repr__(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"({self.operand!r} IS {negation}{self.kind.upper()})"


class Arithmetic(Expr):
    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b else None,
        "%": lambda a, b: a % b if b else None,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise QueryError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if is_absent(left) or is_absent(right):
            return MISSING
        try:
            return self._OPS[self.op](left, right)
        except TypeError:
            return MISSING


def _collection_items(value: Any) -> Optional[List[Any]]:
    if isinstance(value, AMultiset):
        return list(value.items)
    if isinstance(value, (list, tuple)):
        return list(value)
    return None


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "length": lambda value: len(value) if isinstance(value, (str, bytes)) else MISSING,
    "lowercase": lambda value: value.lower() if isinstance(value, str) else MISSING,
    "uppercase": lambda value: value.upper() if isinstance(value, str) else MISSING,
    "abs": lambda value: abs(value) if isinstance(value, (int, float)) else MISSING,
    "is_array": lambda value: _collection_items(value) is not None,
    "array_count": lambda value: len(_collection_items(value) or []) if _collection_items(value) is not None else MISSING,
    "array_contains": lambda value, needle: needle in (_collection_items(value) or []),
    "array_distinct": lambda value: sorted(set(_collection_items(value) or []), key=repr),
    "to_string": lambda value: str(value),
}


def register_function(name: str, implementation: Callable[..., Any]) -> None:
    """Register a custom scalar function usable from :class:`Func`."""
    _FUNCTIONS[name] = implementation


class Func(Expr):
    """Builtin scalar function call (``length``, ``lowercase``, ...)."""

    def __init__(self, name: str, *args: Expr) -> None:
        if name not in _FUNCTIONS:
            raise QueryError(f"unknown function {name!r}")
        self.name = name
        self.args = args

    def children(self) -> Sequence[Expr]:
        return self.args

    def evaluate(self, env: Dict[str, Any]) -> Any:
        values = [argument.evaluate(env) for argument in self.args]
        if values and is_absent(values[0]):
            return MISSING
        return _FUNCTIONS[self.name](*values)

    def __repr__(self) -> str:
        return f"Func({self.name})"


class Exists(Expr):
    """``SOME item IN collection SATISFIES predicate`` (the Twitter Q3 shape)."""

    def __init__(self, collection: Expr, item_var: str, predicate: Expr) -> None:
        self.collection = collection
        self.item_var = item_var
        self.predicate = predicate

    def children(self) -> Sequence[Expr]:
        return (self.collection, self.predicate)

    def evaluate(self, env: Dict[str, Any]) -> Any:
        items = _collection_items(self.collection.evaluate(env))
        if items is None:
            return False
        inner = dict(env)
        for item in items:
            inner[self.item_var] = item
            value = self.predicate.evaluate(inner)
            if not is_absent(value) and value:
                return True
        return False


# -- convenience constructors used by workload query definitions ----------------

def field(source: str, *path: Any) -> FieldAccess:
    return FieldAccess(source, path)


def lit(value: Any) -> Literal:
    return Literal(value)
