"""Logical query specification and the fluent builder used by workloads.

The builder covers the SQL++ shapes used throughout the paper's evaluation
(Appendix A): scans, UNNEST, WHERE, GROUP BY with aggregates, ORDER BY,
LIMIT, COUNT(*), and plain projections.  It intentionally does *not* try to
be a general SQL++ implementation — the goal is a declarative way to express
the twelve experiment queries (plus the examples) against the storage
engine's record views, with enough structure for the optimizer to apply the
paper's field-access consolidation and pushdown rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from .aggregates import get_aggregate
from .expressions import Expr, FieldAccess, Var


@dataclass
class UnnestClause:
    """``UNNEST <collection expression> AS <item_var>``."""

    collection: Expr
    item_var: str


@dataclass
class FullScan:
    """Access path: read every record of every partition sequentially."""

    reason: str = ""

    @property
    def name(self) -> str:
        return "FullScan"

    def describe(self) -> str:
        return f"FullScan({self.reason})" if self.reason else "FullScan"


@dataclass
class IndexProbe:
    """Access path: probe one secondary index, then fetch + re-filter records.

    ``low``/``high`` bound the indexed field (None = open-ended); the probe
    yields a *candidate superset* (stale index entries, unindexed memtable
    records), so ``residual`` — the query's full WHERE predicate — is always
    re-applied to the fetched records.  ``range_conjuncts`` records which
    conjuncts the index absorbed, for EXPLAIN output.
    """

    index_name: str
    field_path: Tuple[Any, ...]
    low: Optional[Any] = None
    high: Optional[Any] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    residual: Optional[Expr] = None
    range_conjuncts: Tuple[Expr, ...] = ()

    @property
    def name(self) -> str:
        return "IndexProbe"

    @property
    def is_empty_range(self) -> bool:
        """True when the extracted bounds cannot match anything (e.g. x > 5 AND x < 3)."""
        if self.low is None or self.high is None:
            return False
        try:
            if self.low > self.high:
                return True
            if self.low == self.high and not (self.low_inclusive and self.high_inclusive):
                return True
        except TypeError:
            return False
        return False

    def describe(self) -> str:
        low_bracket = "[" if self.low_inclusive else "("
        high_bracket = "]" if self.high_inclusive else ")"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        path = ".".join(str(step) for step in self.field_path)
        return (f"IndexProbe(index={self.index_name}, field={path}, "
                f"range={low_bracket}{low}, {high}{high_bracket})")


@dataclass
class AggregateSpec:
    """One aggregate output column."""

    output: str
    function: str
    argument: Optional[Expr] = None  # None only for count(*)

    def __post_init__(self) -> None:
        aggregate = get_aggregate(self.function)
        if aggregate.needs_input and self.argument is None:
            raise QueryError(f"aggregate {self.function!r} needs an argument expression")


@dataclass
class OrderKey:
    expr_or_column: Union[Expr, str]
    descending: bool = False


@dataclass
class LetClause:
    """``LET <name> = <expr>`` — a computed binding (used by the WoS queries)."""

    name: str
    expr: Expr


@dataclass
class QuerySpec:
    """Fully specified logical query over one dataset."""

    record_var: str = "t"
    lets: List[LetClause] = field(default_factory=list)
    unnests: List[UnnestClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_keys: List[Tuple[str, Expr]] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    projections: List[Tuple[str, Expr]] = field(default_factory=list)
    order_by: List[OrderKey] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def is_aggregation(self) -> bool:
        return bool(self.aggregates) or bool(self.group_keys)

    @property
    def repartitions(self) -> bool:
        """Whether executing this query requires a non-local exchange.

        Group-bys and global sorts hash/merge data across partitions, which
        is what triggers the schema broadcast of paper §3.4.1.
        """
        return bool(self.group_keys) or bool(self.order_by) or bool(self.aggregates)


class QueryBuilder:
    """Fluent builder for :class:`QuerySpec` (see datasets' QUERIES modules)."""

    def __init__(self, record_var: str = "t") -> None:
        self._spec = QuerySpec(record_var=record_var)

    # -- clauses -----------------------------------------------------------------

    def let(self, name: str, expr: Expr) -> "QueryBuilder":
        self._spec.lets.append(LetClause(name, expr))
        return self

    def unnest(self, collection: Expr, item_var: str) -> "QueryBuilder":
        self._spec.unnests.append(UnnestClause(collection, item_var))
        return self

    def where(self, predicate: Expr) -> "QueryBuilder":
        if self._spec.where is not None:
            raise QueryError("where() may only be called once; combine predicates with And()")
        self._spec.where = predicate
        return self

    def group_by(self, *keys: Tuple[str, Expr]) -> "QueryBuilder":
        self._spec.group_keys.extend(keys)
        return self

    def aggregate(self, output: str, function: str, argument: Optional[Expr] = None) -> "QueryBuilder":
        self._spec.aggregates.append(AggregateSpec(output, function, argument))
        return self

    def count_star(self, output: str = "count") -> "QueryBuilder":
        return self.aggregate(output, "count", None)

    def select(self, *projections: Tuple[str, Expr]) -> "QueryBuilder":
        self._spec.projections.extend(projections)
        return self

    def select_record(self, output: str = "record") -> "QueryBuilder":
        """``SELECT *`` — project the whole record (paper's Twitter Q4)."""
        return self.select((output, Var(self._spec.record_var)))

    def order_by(self, expr_or_column: Union[Expr, str], descending: bool = False) -> "QueryBuilder":
        self._spec.order_by.append(OrderKey(expr_or_column, descending))
        return self

    def limit(self, count: int) -> "QueryBuilder":
        if count <= 0:
            raise QueryError("limit must be positive")
        self._spec.limit = count
        return self

    # -- finish --------------------------------------------------------------------

    def build(self) -> QuerySpec:
        spec = self._spec
        if not spec.is_aggregation and not spec.projections:
            # Default to SELECT * when nothing was projected.
            spec.projections = [("record", Var(spec.record_var))]
        if spec.group_keys and spec.projections:
            raise QueryError("grouped queries project their group keys and aggregates only")
        return spec


def scan(record_var: str = "t") -> QueryBuilder:
    """Entry point: ``scan("t")`` reads like ``FROM Dataset AS t``."""
    return QueryBuilder(record_var)
