"""Configuration objects shared across the storage engine and the cluster.

The paper's experiments vary a small number of knobs — the storage format
(open / closed / inferred / schema-less vector-based), whether page-level
compression is enabled, the storage device the data lives on, the LSM
memory budget and merge policy, and the number of partitions.  This module
groups those knobs into small frozen dataclasses so a whole experiment can
be described declaratively and reproduced from its configuration alone.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Optional

#: Environment variable turning background LSM maintenance on by default for
#: datasets whose :class:`LSMConfig` leaves ``background_maintenance`` unset
#: (``None``).  Accepted truthy values: "1", "true", "on", "yes".
LSM_SCHEDULER_ENV_VAR = "REPRO_LSM_SCHEDULER"

#: Flag values :func:`env_flag` accepts as "on".
_TRUTHY_FLAGS = ("1", "true", "on", "yes")


def env_str(name: str, default: str = "") -> str:
    """Read one ``REPRO_*`` knob as a stripped string.

    This module is the engine's *single* environment accessor: every other
    module reads its knobs through :func:`env_str` / :func:`env_int` /
    :func:`env_float` / :func:`env_flag` instead of touching ``os.environ``
    directly, so the
    KNOB001 lint rule can prove each knob is documented in the README table
    (``python -m repro.analysis`` enforces this).
    """
    return os.environ.get(name, default).strip()


def env_flag(name: str) -> bool:
    """Whether a ``REPRO_*`` on/off knob is set to a truthy flag value."""
    return env_str(name).lower() in _TRUTHY_FLAGS


def env_int(name: str) -> Optional[int]:
    """Read an integer knob; ``None`` when unset/empty.

    Raises :class:`ValueError` (with the knob name) on a non-integer value —
    callers translate it into their own error type when they need to.
    """
    value = env_str(name)
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def env_float(name: str) -> Optional[float]:
    """Read a float knob (e.g. a seconds value); ``None`` when unset/empty.

    Raises :class:`ValueError` (with the knob name) on a non-numeric value —
    callers translate it into their own error type when they need to.
    """
    value = env_str(name)
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {value!r}") from None


def lsm_scheduler_env_default() -> bool:
    """Whether :data:`LSM_SCHEDULER_ENV_VAR` asks for background maintenance."""
    return env_flag(LSM_SCHEDULER_ENV_VAR)


class StorageFormat(enum.Enum):
    """Physical record format used by a dataset's primary index.

    * ``OPEN`` — AsterixDB-style self-describing ADM records where every
      undeclared field stores its name and type inline (the paper's
      schema-less baseline; what MongoDB/Couchbase do).
    * ``CLOSED`` — ADM records whose fields are all pre-declared, so field
      names live in the metadata catalog instead of in each record.
    * ``INFERRED`` — the paper's contribution: vector-based records that are
      compacted against a schema inferred by the tuple compactor during LSM
      flushes.
    * ``SL_VB`` — "schema-less vector-based": vector-based records without
      schema inference or compaction.  Used by the Figure 21 ablation to
      separate the encoding win from the compaction win.
    """

    OPEN = "open"
    CLOSED = "closed"
    INFERRED = "inferred"
    SL_VB = "sl-vb"

    @property
    def uses_vector_format(self) -> bool:
        """Whether records are physically stored in the vector-based format."""
        return self in (StorageFormat.INFERRED, StorageFormat.SL_VB)

    @property
    def compacts_records(self) -> bool:
        """Whether the tuple compactor strips field names during flushes."""
        return self is StorageFormat.INFERRED


class DeviceKind(enum.Enum):
    """Storage device classes evaluated in the paper."""

    SATA_SSD = "sata-ssd"
    NVME_SSD = "nvme-ssd"
    IN_MEMORY = "in-memory"


#: Sequential bandwidths quoted in the paper's experiment setup (bytes/second).
DEVICE_PROFILES = {
    DeviceKind.SATA_SSD: {
        "read_bandwidth": 550 * 1024 * 1024,
        "write_bandwidth": 520 * 1024 * 1024,
        "seek_latency": 80e-6,
    },
    DeviceKind.NVME_SSD: {
        "read_bandwidth": 3400 * 1024 * 1024,
        "write_bandwidth": 2500 * 1024 * 1024,
        "seek_latency": 15e-6,
    },
    DeviceKind.IN_MEMORY: {
        "read_bandwidth": 20 * 1024 * 1024 * 1024,
        "write_bandwidth": 20 * 1024 * 1024 * 1024,
        "seek_latency": 0.0,
    },
}


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the storage substrate (pages, cache, device, compression)."""

    page_size: int = 16 * 1024
    buffer_cache_pages: int = 4096
    device_kind: DeviceKind = DeviceKind.NVME_SSD
    compression: Optional[str] = None  # codec name, e.g. "zlib"; None = off
    compression_level: int = 1
    #: Fraction of every operation's *simulated* device seconds to spend in a
    #: real ``time.sleep`` (0.0 = pure accounting).  Sleeping releases the
    #: GIL, so tests and scale-out benchmarks use this to make the wall-clock
    #: benefit of parallel partition execution observable and deterministic.
    io_throttle: float = 0.0

    def __post_init__(self) -> None:
        if self.page_size <= 256:
            raise ValueError(f"page_size must be > 256 bytes, got {self.page_size}")
        if self.buffer_cache_pages <= 0:
            raise ValueError("buffer_cache_pages must be positive")
        if self.io_throttle < 0:
            raise ValueError("io_throttle must be >= 0")


@dataclass(frozen=True)
class LSMConfig:
    """Knobs of the LSM tree manager."""

    #: Size, in bytes of encoded records, after which the in-memory component
    #: is flushed to disk.
    memory_component_budget: int = 8 * 1024 * 1024
    #: Merge policy name: "prefix", "constant", or "none".
    merge_policy: str = "prefix"
    #: Prefix policy: maximum size (bytes) of a component eligible for merging.
    max_mergable_component_size: int = 1024 * 1024 * 1024
    #: Prefix policy: merge once this many mergeable components accumulate.
    max_tolerable_component_count: int = 5
    #: Keep a primary-key-only index to cheapen upsert existence checks
    #: (Luo & Carey's optimization the paper adopts for Figure 17b).
    maintain_primary_key_index: bool = True
    #: Run flushes and merges on a background scheduler (AsterixDB-style
    #: asynchronous LSM lifecycle) instead of inline on the writer's thread.
    #: ``None`` defers to the ``REPRO_LSM_SCHEDULER`` environment variable
    #: (off unless set); an explicit ``True``/``False`` always wins.
    #: Synchronous mode remains the escape hatch: parity between the two
    #: modes holds by construction (same entries, same flush order).
    background_maintenance: Optional[bool] = None
    #: Background scheduler: worker threads running flushes (across all of a
    #: dataset's partitions — per-index flushes stay serialized in seal order).
    max_flush_workers: int = 2
    #: Background scheduler: worker threads running merges.
    max_merge_workers: int = 1
    #: Backpressure: how many *sealed* (immutable, flush-pending) memtables a
    #: partition may accumulate before its writer blocks waiting for a flush
    #: to complete (AsterixDB's "wait for the flush to finish" behaviour).
    max_sealed_memtables: int = 2
    #: Backpressure: while a merge is pending/in flight, writers also stall
    #: once this many on-disk components pile up (merge debt), so ingestion
    #: cannot outrun maintenance indefinitely.
    max_merge_debt: int = 12

    def __post_init__(self) -> None:
        if self.max_flush_workers < 1:
            raise ValueError("max_flush_workers must be >= 1")
        if self.max_merge_workers < 1:
            raise ValueError("max_merge_workers must be >= 1")
        if self.max_sealed_memtables < 1:
            raise ValueError("max_sealed_memtables must be >= 1")
        if self.max_merge_debt < 2:
            raise ValueError("max_merge_debt must be >= 2")

    def resolved_background_maintenance(self) -> bool:
        """The effective background-maintenance setting (config wins over env)."""
        if self.background_maintenance is None:
            return lsm_scheduler_env_default()
        return self.background_maintenance


@dataclass(frozen=True)
class DatasetConfig:
    """Everything needed to create a dataset (paper §2.1 + §3)."""

    name: str
    primary_key: str = "id"
    storage_format: StorageFormat = StorageFormat.OPEN
    #: The ``{"tuple-compactor-enabled": true}`` WITH-clause of Figure 8.
    tuple_compactor_enabled: bool = False
    storage: StorageConfig = field(default_factory=StorageConfig)
    lsm: LSMConfig = field(default_factory=LSMConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dataset name must be non-empty")
        if not self.primary_key:
            raise ValueError("primary_key must be non-empty")
        # "inferred" implies the tuple compactor; keep the two flags coherent
        # so experiment configs cannot silently disagree with themselves.
        if self.storage_format is StorageFormat.INFERRED and not self.tuple_compactor_enabled:
            object.__setattr__(self, "tuple_compactor_enabled", True)
        if self.tuple_compactor_enabled and not self.storage_format.uses_vector_format:
            raise ValueError(
                "tuple-compactor-enabled requires a vector-based storage format "
                f"(got {self.storage_format.value})"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Topology of a simulated AsterixDB cluster (paper Figure 3)."""

    node_count: int = 1
    partitions_per_node: int = 2

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if self.partitions_per_node <= 0:
            raise ValueError("partitions_per_node must be positive")

    @property
    def total_partitions(self) -> int:
        return self.node_count * self.partitions_per_node
