"""Binder: turns a SQL++ AST into the engine's :class:`QuerySpec`.

The binder is deliberately a *translator*, not a second planner: it resolves
names against the query's variable scope (FROM alias, UNNEST aliases, LET
names), maps AST expressions onto the existing
:mod:`repro.query.expressions` node classes, and assembles the same
:class:`~repro.query.plan.QuerySpec` the fluent builder produces — so parsed
queries flow unchanged through the optimizer's consolidation/pushdown
rewrites and the partitioned executor, and a text query and its builder twin
yield byte-identical plans.

Binding errors are :class:`~repro.errors.SqlppError` with the position of
the offending AST node (unbound identifiers, unknown functions, aggregates
outside SELECT, SELECT items missing from GROUP BY, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError, SqlppError
from ..query.expressions import (
    And,
    Arithmetic,
    Comparison,
    Exists,
    Expr,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    Not,
    Or,
    Var,
)
from ..query.plan import AggregateSpec, LetClause, OrderKey, QuerySpec, UnnestClause
from ..types import MISSING
from . import ast

#: Aggregate function names (the ``repro.query.aggregates`` registry).
AGGREGATE_NAMES = frozenset({"count", "sum", "min", "max", "avg", "listify"})

#: SQL++ spellings accepted for the engine's builtin scalar functions.
FUNCTION_ALIASES = {
    "lower": "lowercase",
    "upper": "uppercase",
    "len": "length",
}


@dataclass
class CompiledQuery:
    """A bound query: the FROM dataset name plus the executable plan."""

    dataset: str
    spec: QuerySpec
    tree: ast.Query


@dataclass
class CompiledCreateIndex:
    """A bound CREATE INDEX statement: the target dataset, index name, path."""

    dataset: str
    index_name: str
    field_path: Tuple[str, ...]
    tree: ast.CreateIndex


def _error(node: ast.Node, message: str, token: Optional[str] = None) -> "SqlppError":
    raise SqlppError(message, node.line, node.column, token)


class Binder:
    """Binds one parsed query; create a fresh instance per query."""

    def __init__(self, query: ast.Query) -> None:
        self.query = query
        self.scope: Set[str] = set()

    # ------------------------------------------------------------------ entry

    def bind(self) -> CompiledQuery:
        query = self.query
        record_var = query.from_clause.alias
        self.scope.add(record_var)

        spec = QuerySpec(record_var=record_var)
        for let in query.lets:
            if let.name in self.scope:
                _error(let, f"variable {let.name!r} is already bound")
            spec.lets.append(LetClause(let.name, self.bind_expr(let.expr)))
            self.scope.add(let.name)
        for unnest in query.unnests:
            collection = self.bind_expr(unnest.collection)
            if unnest.alias in self.scope:
                _error(unnest, f"variable {unnest.alias!r} is already bound")
            spec.unnests.append(UnnestClause(collection, unnest.alias))
            self.scope.add(unnest.alias)
        if query.where is not None:
            spec.where = self.bind_expr(query.where)

        group_keys = [(self._group_alias(key), key.expr) for key in query.group_by]
        self._bind_select(spec, group_keys)
        self._bind_order_by(spec)
        if query.limit is not None:
            spec.limit = query.limit.value

        if not spec.is_aggregation and not spec.projections:
            spec.projections = [("record", Var(record_var))]
        return CompiledQuery(dataset=query.from_clause.dataset, spec=spec, tree=query)

    # ------------------------------------------------------------------ SELECT

    def _group_alias(self, key: ast.GroupKey) -> str:
        if key.alias:
            return key.alias
        if isinstance(key.expr, ast.Ident):
            return key.expr.name
        if isinstance(key.expr, ast.Path):
            for step in reversed(key.expr.steps):
                if isinstance(step, str) and step != "*":
                    return step
        _error(key, "GROUP BY expression needs an AS alias")

    def _bind_select(self, spec: QuerySpec, group_keys: List[Tuple[str, ast.Expr]]) -> None:
        select = self.query.select
        grouped = bool(group_keys) or self._has_aggregate(select)

        if not grouped:
            if select.kind == "star":
                spec.projections.append(("record", Var(spec.record_var)))
            elif select.kind == "value":
                spec.projections.append(("value", self.bind_expr(select.value)))
            else:
                for index, item in enumerate(select.items):
                    spec.projections.append((self._output_name(item, index),
                                             self.bind_expr(item.expr)))
            return

        # Aggregation: bind the group keys, then fold every SELECT item into
        # either an aggregate output or a (possibly renamed) group key.
        bound_keys: List[Tuple[str, Expr]] = [(alias, self.bind_expr(expr))
                                              for alias, expr in group_keys]
        if select.kind == "star":
            _error(select, "SELECT * cannot be combined with GROUP BY / aggregates")
        items: Sequence[ast.SelectItem]
        if select.kind == "value":
            items = (ast.SelectItem(expr=select.value, alias=None,
                                    line=select.line, column=select.column),)
        else:
            items = select.items

        for item in items:
            expr = item.expr
            if isinstance(expr, ast.Call) and expr.name.lower() in AGGREGATE_NAMES:
                spec.aggregates.append(self._bind_aggregate(expr, item.alias))
                continue
            matched = self._match_group_key(expr, group_keys)
            if matched is None:
                _error(item, "SELECT item is neither an aggregate nor a GROUP BY key")
            if item.alias and item.alias != group_keys[matched][0]:
                bound_keys[matched] = (item.alias, bound_keys[matched][1])
            continue
        spec.group_keys.extend(bound_keys)

    def _has_aggregate(self, select: ast.SelectClause) -> bool:
        candidates: List[ast.Expr] = []
        if select.kind == "value" and select.value is not None:
            candidates.append(select.value)
        candidates.extend(item.expr for item in select.items)
        return any(isinstance(expr, ast.Call) and expr.name.lower() in AGGREGATE_NAMES
                   for expr in candidates)

    def _match_group_key(self, expr: ast.Expr,
                         group_keys: List[Tuple[str, ast.Expr]]) -> Optional[int]:
        for index, (alias, key_expr) in enumerate(group_keys):
            if expr == key_expr:
                return index
            if isinstance(expr, ast.Ident) and expr.name == alias:
                return index
        return None

    def _bind_aggregate(self, call: ast.Call, alias: Optional[str]) -> AggregateSpec:
        name = call.name.lower()
        output = alias or name
        if call.star or not call.args:
            if name != "count":
                _error(call, f"aggregate {name}() needs an argument", call.name)
            return AggregateSpec(output, "count", None)
        if len(call.args) != 1:
            _error(call, f"aggregate {name}() takes exactly one argument", call.name)
        argument = self.bind_expr(call.args[0])
        if name == "count":
            return AggregateSpec(output, "count", argument)
        return AggregateSpec(output, name, argument)

    def _output_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        expr = item.expr
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.Path):
            for step in reversed(expr.steps):
                if isinstance(step, str) and step != "*":
                    return step
        return f"${index + 1}"

    # ------------------------------------------------------------------ ORDER BY

    def _bind_order_by(self, spec: QuerySpec) -> None:
        group_aliases = {name for name, _ in spec.group_keys}
        outputs = group_aliases | {agg.output for agg in spec.aggregates}
        for item in self.query.order_by:
            if spec.is_aggregation:
                if isinstance(item.expr, ast.Ident) and item.expr.name in outputs:
                    spec.order_by.append(OrderKey(item.expr.name, item.descending))
                    continue
                matched = self._match_group_key(item.expr,
                                                [(name, key.expr) for (name, _), key
                                                 in zip(spec.group_keys, self.query.group_by)])
                if matched is not None:
                    spec.order_by.append(OrderKey(spec.group_keys[matched][0],
                                                  item.descending))
                    continue
                _error(item, "ORDER BY of a grouped query must name an output column")
            else:
                spec.order_by.append(OrderKey(self.bind_expr(item.expr), item.descending))

    # ------------------------------------------------------------------ expressions

    def bind_expr(self, expr: ast.Expr) -> Expr:
        if isinstance(expr, ast.NumberLit):
            return Literal(expr.value)
        if isinstance(expr, ast.StringLit):
            return Literal(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Literal(expr.value)
        if isinstance(expr, ast.NullLit):
            return Literal(None)
        if isinstance(expr, ast.MissingLit):
            return Literal(MISSING)
        if isinstance(expr, ast.Ident):
            if expr.name not in self.scope:
                _error(expr, f"unbound identifier {expr.name!r}", expr.name)
            return Var(expr.name)
        if isinstance(expr, ast.Path):
            return self._bind_path(expr)
        if isinstance(expr, ast.BinOp):
            left, right = self.bind_expr(expr.left), self.bind_expr(expr.right)
            if expr.op in ("+", "-", "*", "/", "%"):
                return Arithmetic(expr.op, left, right)
            op = "!=" if expr.op == "<>" else expr.op
            return Comparison(op, left, right)
        if isinstance(expr, ast.AndExpr):
            return And(*[self.bind_expr(operand) for operand in expr.operands])
        if isinstance(expr, ast.OrExpr):
            return Or(*[self.bind_expr(operand) for operand in expr.operands])
        if isinstance(expr, ast.NotExpr):
            return Not(self.bind_expr(expr.operand))
        if isinstance(expr, ast.NegExpr):
            operand = expr.operand
            if isinstance(operand, ast.NumberLit):
                return Literal(-operand.value)
            return Arithmetic("-", Literal(0), self.bind_expr(operand))
        if isinstance(expr, ast.Call):
            return self._bind_call(expr)
        if isinstance(expr, ast.Quantified):
            collection = self.bind_expr(expr.collection)
            if expr.var in self.scope:
                _error(expr, f"variable {expr.var!r} is already bound", expr.var)
            self.scope.add(expr.var)
            try:
                predicate = self.bind_expr(expr.predicate)
            finally:
                self.scope.discard(expr.var)
            return Exists(collection, expr.var, predicate)
        if isinstance(expr, ast.ExistsExpr):
            # EXISTS coll == "coll is a non-empty collection"; array_count
            # yields MISSING for non-collections, so the comparison stays
            # non-true for absent/malformed operands (SQL++ semantics).
            return Comparison(">", Func("array_count", self.bind_expr(expr.operand)),
                              Literal(0))
        if isinstance(expr, ast.IsTest):
            return IsTest(self.bind_expr(expr.operand), expr.kind, expr.negated)
        _error(expr, f"cannot bind expression of type {type(expr).__name__}")

    def _bind_path(self, path: ast.Path) -> Expr:
        if not isinstance(path.base, ast.Ident):
            _error(path, "a field path must start from a bound variable")
        name = path.base.name
        if name not in self.scope:
            _error(path.base, f"unbound identifier {name!r}", name)
        return FieldAccess(name, path.steps)

    def _bind_call(self, call: ast.Call) -> Expr:
        name = call.name.lower()
        name = FUNCTION_ALIASES.get(name, name)
        if name in AGGREGATE_NAMES:
            _error(call, f"aggregate function {name}() is only allowed as a "
                   "top-level SELECT item", call.name)
        if call.star:
            _error(call, f"{name}(*) is not a valid call; only count(*) may use *",
                   call.name)
        args = [self.bind_expr(argument) for argument in call.args]
        try:
            return Func(name, *args)
        except QueryError:
            _error(call, f"unknown function {call.name!r}", call.name)


def bind(query: ast.Query) -> CompiledQuery:
    """Bind a parsed query to an executable :class:`CompiledQuery`."""
    return Binder(query).bind()


def bind_statement(statement: ast.Node):
    """Bind a parsed statement (query or DDL) to its compiled form."""
    if isinstance(statement, ast.CreateIndex):
        if not statement.field_path:
            _error(statement, "CREATE INDEX needs a non-empty field path")
        return CompiledCreateIndex(dataset=statement.dataset,
                                   index_name=statement.name,
                                   field_path=statement.field_path,
                                   tree=statement)
    return bind(statement)
