"""Recursive-descent parser for the paper's SQL++ dialect.

Grammar (clauses in SQL++ surface order)::

    statement   := query | create_index
    create_index:= CREATE INDEX ident ON ident '(' ident ('.' ident)* ')' [';']
    query       := select from let* unnest* [where] [group] [order] [limit] [';']
    select      := SELECT ( '*' | VALUE expr | item (',' item)* )
    item        := expr [AS ident]
    from        := FROM ident [[AS] ident]
    unnest      := UNNEST expr [AS] ident
    let         := LET ident '=' expr (',' ident '=' expr)*
    where       := WHERE expr
    group       := GROUP BY expr [AS ident] (',' ...)*
    order       := ORDER BY expr [ASC | DESC] (',' ...)*
    limit       := LIMIT integer

    expr        := or ;  or := and (OR and)* ;  and := not (AND not)*
    not         := NOT not | cmp
    cmp         := add [cmpop add] | add IS [NOT] (NULL | MISSING | UNKNOWN)
    add         := mul (('+' | '-') mul)*
    mul         := unary (('*' | '/' | '%') unary)*
    unary       := '-' unary | path
    path        := primary ('.' ident | '[' integer ']' | '[' '*' ']')*
    primary     := literal | ident | ident '(' args ')' | '(' expr ')'
                 | SOME ident IN expr SATISFIES expr | EXISTS unary

Errors are raised as :class:`~repro.errors.SqlppError` carrying the line and
column of the offending token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlppError
from . import ast
from .lexer import Token, tokenize

_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")
_IS_KINDS = ("NULL", "MISSING", "UNKNOWN")

#: Maximum recursive-descent depth inside one expression.  Keeps pathological
#: inputs (thousands of nested parens / NOTs) from escaping as a raw Python
#: RecursionError instead of a positioned SqlppError.  Each parenthesis level
#: costs ~9 interpreter frames, so this must stay well under
#: sys.getrecursionlimit()/9; 64 levels of real nesting remain available,
#: far beyond any sane query.
MAX_EXPR_DEPTH = 64


class Parser:
    """Parses one SQL++ query string into an :class:`repro.sqlpp.ast.Query`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0
        self._depth = 0

    # ------------------------------------------------------------------ helpers

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        return self.current.matches(kind, text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None, what: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        expected = what or (text if text is not None else kind)
        return self._fail(f"expected {expected}")

    def _fail(self, message: str) -> "Token":
        token = self.current
        raise SqlppError(message + f", found {token.describe()}",
                         token.line, token.column,
                         token.text if token.kind != "eof" else None)

    @staticmethod
    def _pos(token: Token) -> dict:
        return {"line": token.line, "column": token.column}

    # ------------------------------------------------------------------ statements

    def parse_statement(self) -> ast.Node:
        """Parse one statement: a query, or a CREATE INDEX DDL statement."""
        if self._check("keyword", "CREATE"):
            return self._create_index_statement()
        return self.parse_query()

    def _create_index_statement(self) -> ast.CreateIndex:
        keyword = self._expect("keyword", "CREATE")
        self._expect("keyword", "INDEX")
        name = self._expect("ident", what="an index name after CREATE INDEX").value
        self._expect("keyword", "ON")
        dataset = self._expect("ident", what="a dataset name after ON").value
        self._expect("op", "(")
        steps = [self._field_path_step()]
        while self._accept("op", "."):
            steps.append(self._field_path_step())
        self._expect("op", ")")
        self._accept("op", ";")
        if self.current.kind != "eof":
            self._fail("expected end of statement")
        return ast.CreateIndex(name=name, dataset=dataset, field_path=tuple(steps),
                               **self._pos(keyword))

    def _field_path_step(self) -> str:
        # Field names may collide with keywords, same as after '.' in paths.
        if self.current.kind not in ("ident", "keyword"):
            self._fail("expected a field name in the index field path")
        return self._advance().value

    # ------------------------------------------------------------------ query

    def parse_query(self) -> ast.Query:
        start = self.current
        select = self._select_clause()
        from_clause = self._from_clause()
        lets: List[ast.LetClause] = []
        unnests: List[ast.UnnestClause] = []
        while True:
            if self._check("keyword", "LET"):
                if unnests:
                    # The engine evaluates all LETs before all UNNESTs, so a
                    # LET referencing an unnest alias could never execute;
                    # reject it here with a clear message instead of binding
                    # it to the wrong scope.
                    self._fail("LET clauses must precede UNNEST clauses")
                lets.extend(self._let_clause())
            elif self._check("keyword", "UNNEST"):
                unnests.append(self._unnest_clause())
            else:
                break
        where = None
        if self._accept("keyword", "WHERE"):
            where = self.parse_expression()
        group_by: Tuple[ast.GroupKey, ...] = ()
        if self._check("keyword", "GROUP"):
            group_by = self._group_clause()
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self._check("keyword", "ORDER"):
            order_by = self._order_clause()
        limit = None
        if self._check("keyword", "LIMIT"):
            limit = self._limit_clause()
        self._accept("op", ";")
        if self.current.kind != "eof":
            self._fail("expected end of query")
        return ast.Query(select=select, from_clause=from_clause, lets=tuple(lets),
                         unnests=tuple(unnests), where=where, group_by=group_by,
                         order_by=order_by, limit=limit, **self._pos(start))

    # ------------------------------------------------------------------ clauses

    def _select_clause(self) -> ast.SelectClause:
        keyword = self._expect("keyword", "SELECT")
        pos = self._pos(keyword)
        if self._accept("op", "*"):
            return ast.SelectClause(kind="star", **pos)
        if self._accept("keyword", "VALUE"):
            return ast.SelectClause(kind="value", value=self.parse_expression(), **pos)
        items = [self._select_item()]
        while self._accept("op", ","):
            items.append(self._select_item())
        return ast.SelectClause(kind="items", items=tuple(items), **pos)

    def _select_item(self) -> ast.SelectItem:
        start = self.current
        expr = self.parse_expression()
        alias = None
        if self._accept("keyword", "AS"):
            alias = self._expect("ident", what="an output name after AS").value
        return ast.SelectItem(expr=expr, alias=alias, **self._pos(start))

    def _from_clause(self) -> ast.FromClause:
        keyword = self._expect("keyword", "FROM")
        dataset = self._expect("ident", what="a dataset name after FROM").value
        alias = dataset
        if self._accept("keyword", "AS"):
            alias = self._expect("ident", what="an alias after AS").value
        elif self._check("ident"):
            alias = self._advance().value
        return ast.FromClause(dataset=dataset, alias=alias, **self._pos(keyword))

    def _unnest_clause(self) -> ast.UnnestClause:
        keyword = self._expect("keyword", "UNNEST")
        collection = self.parse_expression()
        if not self._accept("keyword", "AS") and not self._check("ident"):
            self._fail("expected AS <alias> after the UNNEST collection")
        alias = self._expect("ident", what="an item alias").value
        return ast.UnnestClause(collection=collection, alias=alias, **self._pos(keyword))

    def _let_clause(self) -> List[ast.LetClause]:
        keyword = self._expect("keyword", "LET")
        clauses = []
        while True:
            name = self._expect("ident", what="a variable name after LET").value
            self._expect("op", "=")
            clauses.append(ast.LetClause(name=name, expr=self.parse_expression(),
                                         **self._pos(keyword)))
            if not self._accept("op", ","):
                return clauses

    def _group_clause(self) -> Tuple[ast.GroupKey, ...]:
        self._expect("keyword", "GROUP")
        self._expect("keyword", "BY")
        keys = []
        while True:
            start = self.current
            expr = self.parse_expression()
            alias = None
            if self._accept("keyword", "AS"):
                alias = self._expect("ident", what="a key alias after AS").value
            keys.append(ast.GroupKey(expr=expr, alias=alias, **self._pos(start)))
            if not self._accept("op", ","):
                return tuple(keys)

    def _order_clause(self) -> Tuple[ast.OrderItem, ...]:
        self._expect("keyword", "ORDER")
        self._expect("keyword", "BY")
        items = []
        while True:
            start = self.current
            expr = self.parse_expression()
            descending = False
            if self._accept("keyword", "DESC"):
                descending = True
            else:
                self._accept("keyword", "ASC")
            items.append(ast.OrderItem(expr=expr, descending=descending, **self._pos(start)))
            if not self._accept("op", ","):
                return tuple(items)

    def _limit_clause(self) -> ast.NumberLit:
        self._expect("keyword", "LIMIT")
        token = self.current
        if token.kind != "number" or not isinstance(token.value, int) or token.value <= 0:
            self._fail("expected a positive integer after LIMIT")
        self._advance()
        return ast.NumberLit(value=token.value, **self._pos(token))

    # ------------------------------------------------------------------ expressions

    def parse_expression(self) -> ast.Expr:
        return self._or_expr()

    def _descend(self) -> None:
        self._depth += 1
        if self._depth > MAX_EXPR_DEPTH:
            token = self.current
            raise SqlppError("expression nesting too deep", token.line, token.column,
                             token.text if token.kind != "eof" else None)

    def _or_expr(self) -> ast.Expr:
        self._descend()
        try:
            start = self.current
            operands = [self._and_expr()]
            while self._accept("keyword", "OR"):
                operands.append(self._and_expr())
            if len(operands) == 1:
                return operands[0]
            return ast.OrExpr(operands=tuple(operands), **self._pos(start))
        finally:
            self._depth -= 1

    def _and_expr(self) -> ast.Expr:
        start = self.current
        operands = [self._not_expr()]
        while self._accept("keyword", "AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.AndExpr(operands=tuple(operands), **self._pos(start))

    def _not_expr(self) -> ast.Expr:
        token = self._accept("keyword", "NOT")
        if token:
            self._descend()
            try:
                return ast.NotExpr(operand=self._not_expr(), **self._pos(token))
            finally:
                self._depth -= 1
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self.current
        if token.kind == "op" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._additive()
            return ast.BinOp(op=token.text, left=left, right=right, **self._pos(token))
        while self._check("keyword", "IS"):
            is_token = self._advance()
            negated = self._accept("keyword", "NOT") is not None
            kind_token = self.current
            if not (kind_token.kind == "keyword" and kind_token.text in _IS_KINDS):
                self._fail("expected NULL, MISSING, or UNKNOWN after IS")
            self._advance()
            left = ast.IsTest(operand=left, kind=kind_token.text.lower(),
                              negated=negated, **self._pos(is_token))
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._check("op", "+") or self._check("op", "-"):
            token = self._advance()
            left = ast.BinOp(op=token.text, left=left,
                             right=self._multiplicative(), **self._pos(token))
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._check("op", "*") or self._check("op", "/") or self._check("op", "%"):
            token = self._advance()
            left = ast.BinOp(op=token.text, left=left,
                             right=self._unary(), **self._pos(token))
        return left

    def _unary(self) -> ast.Expr:
        token = self._accept("op", "-")
        if token:
            self._descend()
            try:
                return ast.NegExpr(operand=self._unary(), **self._pos(token))
            finally:
                self._depth -= 1
        self._accept("op", "+")
        return self._path_expr()

    def _path_expr(self) -> ast.Expr:
        base = self._primary()
        steps: List[ast.PathStep] = []
        while True:
            if self._accept("op", "."):
                # Field names may collide with keywords (``subject.value``).
                if self.current.kind not in ("ident", "keyword"):
                    self._fail("expected a field name after '.'")
                steps.append(self._advance().value)
            elif self._check("op", "["):
                self._advance()
                if self._accept("op", "*"):
                    steps.append("*")
                else:
                    index = self.current
                    if index.kind != "number" or not isinstance(index.value, int):
                        self._fail("expected an integer index or * inside [ ]")
                    self._advance()
                    steps.append(index.value)
                self._expect("op", "]")
            else:
                break
        if not steps:
            return base
        if isinstance(base, ast.Path):
            return ast.Path(base=base.base, steps=base.steps + tuple(steps),
                            line=base.line, column=base.column)
        return ast.Path(base=base, steps=tuple(steps), line=base.line, column=base.column)

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self._advance()
            return ast.NumberLit(value=token.value, **self._pos(token))
        if token.kind == "string":
            self._advance()
            return ast.StringLit(value=token.value, **self._pos(token))
        if token.kind == "keyword":
            if token.text in ("TRUE", "FALSE"):
                self._advance()
                return ast.BoolLit(value=token.text == "TRUE", **self._pos(token))
            if token.text == "NULL":
                self._advance()
                return ast.NullLit(**self._pos(token))
            if token.text == "MISSING":
                self._advance()
                return ast.MissingLit(**self._pos(token))
            if token.text == "SOME":
                return self._quantified()
            if token.text == "EXISTS":
                self._advance()
                return ast.ExistsExpr(operand=self._unary(), **self._pos(token))
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                return self._call(token)
            return ast.Ident(name=token.value, **self._pos(token))
        if self._accept("op", "("):
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        return self._fail("expected an expression")

    def _call(self, name_token: Token) -> ast.Call:
        self._expect("op", "(")
        if self._accept("op", "*"):
            self._expect("op", ")")
            return ast.Call(name=name_token.value, star=True, **self._pos(name_token))
        if self._accept("op", ")"):
            return ast.Call(name=name_token.value, **self._pos(name_token))
        args = [self.parse_expression()]
        while self._accept("op", ","):
            args.append(self.parse_expression())
        self._expect("op", ")")
        return ast.Call(name=name_token.value, args=tuple(args), **self._pos(name_token))

    def _quantified(self) -> ast.Quantified:
        keyword = self._expect("keyword", "SOME")
        var = self._expect("ident", what="a variable name after SOME").value
        self._expect("keyword", "IN")
        collection = self._path_expr()
        self._expect("keyword", "SATISFIES")
        predicate = self.parse_expression()
        return ast.Quantified(var=var, collection=collection, predicate=predicate,
                              **self._pos(keyword))


def parse(source: str) -> ast.Query:
    """Parse a SQL++ query string into its AST (:class:`repro.sqlpp.ast.Query`)."""
    return Parser(source).parse_query()


def parse_statement(source: str) -> ast.Node:
    """Parse one statement: a :class:`~repro.sqlpp.ast.Query` or a
    :class:`~repro.sqlpp.ast.CreateIndex`."""
    return Parser(source).parse_statement()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone SQL++ expression (used by tests and the REPL-minded)."""
    parser = Parser(source)
    expr = parser.parse_expression()
    if parser.current.kind != "eof":
        parser._fail("expected end of expression")
    return expr
