"""SQL++ text front-end: lexer, parser, AST, and binder.

Compiles query strings covering the paper's SQL++ dialect (Appendix A) into
the engine's :class:`~repro.query.plan.QuerySpec`, so textual queries run
through the same optimizer rewrites and partitioned executor as
builder-constructed plans::

    from repro import Dataset, StorageFormat

    tweets = Dataset.create("Tweets", StorageFormat.INFERRED)
    tweets.insert({"id": 1, "user": {"name": "ann"}, "text": "hello"})
    result = tweets.query("SELECT VALUE count(*) FROM Tweets AS t")

or, staying at the compiler level::

    from repro.sqlpp import compile as compile_sqlpp

    compiled = compile_sqlpp('''
        SELECT uname, count(*) AS c
        FROM Tweets AS t
        WHERE SOME ht IN t.entities.hashtags SATISFIES lowercase(ht.text) = 'jobs'
        GROUP BY t.user.name AS uname
        ORDER BY c DESC LIMIT 10
    ''')
    executor.execute(dataset, compiled.spec)

Malformed queries raise :class:`~repro.errors.SqlppError` with the 1-based
line/column (and offending token) of the failure — from the lexer, the
recursive-descent parser, and the binder alike.
"""

from ..errors import SqlppError
from . import ast
from .ast import unparse, unparse_expr
from .binder import Binder, CompiledCreateIndex, CompiledQuery, bind, bind_statement
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse, parse_expression, parse_statement


def compile(text: str):  # noqa: A001 - mirrors the stdlib name on purpose
    """Compile one SQL++ statement: queries yield a :class:`CompiledQuery`,
    ``CREATE INDEX`` yields a :class:`CompiledCreateIndex`.

    Parsing and binding each record a span when tracing is on (see
    :mod:`repro.obs`), so a traced query shows its full front-end cost."""
    from ..obs import tracer

    with tracer.span("sqlpp.parse"):
        statement = parse_statement(text)
    with tracer.span("sqlpp.bind"):
        return bind_statement(statement)


__all__ = [
    "SqlppError",
    "Token",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "parse_statement",
    "ast",
    "unparse",
    "unparse_expr",
    "Binder",
    "CompiledQuery",
    "CompiledCreateIndex",
    "bind",
    "bind_statement",
    "compile",
]
