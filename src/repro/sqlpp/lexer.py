"""Hand-written SQL++ lexer with precise source positions.

Tokenizes the slice of SQL++ the paper's queries use (Appendix A):
keywords, identifiers, string/number literals, comparison and arithmetic
operators, path punctuation (``.``, ``[``, ``]``), and ``--`` line /
``/* */`` block comments.  Every token carries its 1-based line and column
so downstream errors (parser and binder alike) can point at the exact spot
in the query string — the :class:`~repro.errors.SqlppError` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..errors import SqlppError

#: Reserved words.  Matched case-insensitively; the canonical (upper-case)
#: spelling is stored as the token text.
KEYWORDS = frozenset({
    "SELECT", "VALUE", "FROM", "AS", "UNNEST", "LET", "WHERE",
    "AND", "OR", "NOT", "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT",
    "SOME", "IN", "SATISFIES", "EXISTS",
    "TRUE", "FALSE", "NULL", "MISSING", "IS", "UNKNOWN",
    "CREATE", "INDEX", "ON",
})

#: Multi-character operators, longest first so ``<=`` wins over ``<``.
_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>")
_ONE_CHAR_OPS = "=<>+-*/%()[],.;"

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"',
            "/": "/", "b": "\b", "f": "\f"}


@dataclass
class Token:
    """One lexical token; ``value`` holds the decoded literal payload."""

    kind: str               # "keyword" | "ident" | "number" | "string" | "op" | "eof"
    text: str
    line: int
    column: int
    value: Any = None

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)

    def describe(self) -> str:
        return "end of query" if self.kind == "eof" else repr(self.text)


class Lexer:
    """Single-pass scanner over a query string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ driver

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == "eof":
                return result

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.position >= len(self.source):
            return Token("eof", "", self.line, self.column)
        line, column = self.line, self.column
        char = self.source[self.position]
        if char.isalpha() or char == "_":
            return self._word(line, column)
        if char.isdigit():
            return self._number(line, column)
        if char in "'\"":
            return self._string(line, column)
        two = self.source[self.position:self.position + 2]
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token("op", two, line, column)
        if char in _ONE_CHAR_OPS:
            self._advance(1)
            return Token("op", char, line, column)
        raise SqlppError(f"unexpected character {char!r}", line, column, char)

    # ------------------------------------------------------------------ scanners

    def _word(self, line: int, column: int) -> Token:
        start = self.position
        while (self.position < len(self.source)
               and (self.source[self.position].isalnum() or self.source[self.position] == "_")):
            self._advance(1)
        text = self.source[start:self.position]
        upper = text.upper()
        if upper in KEYWORDS:
            # ``value`` keeps the original spelling: keywords may still appear
            # as field names after '.' (e.g. ``subject.value``).
            return Token("keyword", upper, line, column, value=text)
        return Token("ident", text, line, column, value=text)

    def _number(self, line: int, column: int) -> Token:
        start = self.position
        self._digits()
        is_float = False
        if self._current() == "." and self._peek_at(1).isdigit():
            is_float = True
            self._advance(1)
            self._digits()
        if self._current() in "eE":
            after = self._peek_at(1)
            sign = 1 if after in "+-" else 0
            if self.source[self.position + 1 + sign:self.position + 2 + sign].isdigit():
                is_float = True
                self._advance(1 + sign)
                self._digits()
        text = self.source[start:self.position]
        return Token("number", text, line, column,
                     value=float(text) if is_float else int(text))

    def _string(self, line: int, column: int) -> Token:
        quote = self.source[self.position]
        self._advance(1)
        pieces: List[str] = []
        while True:
            if self.position >= len(self.source):
                raise SqlppError("unterminated string literal", line, column, quote)
            char = self.source[self.position]
            if char == quote:
                self._advance(1)
                break
            if char == "\\":
                escape = self._peek_at(1)
                if escape not in _ESCAPES:
                    raise SqlppError(f"unknown escape sequence \\{escape}",
                                     self.line, self.column, "\\" + escape)
                pieces.append(_ESCAPES[escape])
                self._advance(2)
                continue
            pieces.append(char)
            self._advance(1)
        literal = "".join(pieces)
        return Token("string", quote + literal + quote, line, column, value=literal)

    def _digits(self) -> None:
        while self._current().isdigit():
            self._advance(1)

    # ------------------------------------------------------------------ trivia

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self.source[self.position]
            if char in " \t\r\n":
                self._advance(1)
            elif self.source.startswith("--", self.position):
                while self.position < len(self.source) and self.source[self.position] != "\n":
                    self._advance(1)
            elif self.source.startswith("/*", self.position):
                line, column = self.line, self.column
                self._advance(2)
                while not self.source.startswith("*/", self.position):
                    if self.position >= len(self.source):
                        raise SqlppError("unterminated block comment", line, column, "/*")
                    self._advance(1)
                self._advance(2)
            else:
                return

    # ------------------------------------------------------------------ cursor

    def _current(self) -> str:
        return self.source[self.position] if self.position < len(self.source) else "\0"

    def _peek_at(self, offset: int) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else "\0"

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.source[self.position] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.position += 1


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, raising :class:`SqlppError` on lexical errors."""
    return Lexer(source).tokens()
