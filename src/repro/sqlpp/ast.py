"""Abstract syntax tree for the SQL++ front-end, plus a canonical unparser.

Every node is a plain dataclass with structural equality; source positions
(``line``/``column``) ride along for error reporting but are excluded from
equality so that ``parse(unparse(parse(text)))`` yields an *equal* AST — the
round-trip property the test suite checks.

The tree mirrors the textual grammar, not the logical plan: the binder
(:mod:`repro.sqlpp.binder`) is what turns it into a
:class:`~repro.query.plan.QuerySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

#: Path steps are field names (``str``), array indexes (``int``), or the
#: wildcard ``"*"`` (``t.addresses[*].country``).
PathStep = Union[str, int]


@dataclass
class Node:
    """Base class: position fields shared by every AST node."""

    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class NumberLit(Expr):
    value: Union[int, float] = 0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class MissingLit(Expr):
    pass


@dataclass
class Ident(Expr):
    """A bare identifier — a variable reference or an output-column name."""

    name: str = ""


@dataclass
class Path(Expr):
    """``base.step.step[0][*]...`` — field/index navigation from a variable."""

    base: Expr = field(default_factory=Ident)
    steps: Tuple[PathStep, ...] = ()


@dataclass
class BinOp(Expr):
    """Comparison or arithmetic binary operator."""

    op: str = "="
    left: Expr = field(default_factory=Ident)
    right: Expr = field(default_factory=Ident)


@dataclass
class AndExpr(Expr):
    operands: Tuple[Expr, ...] = ()


@dataclass
class OrExpr(Expr):
    operands: Tuple[Expr, ...] = ()


@dataclass
class NotExpr(Expr):
    operand: Expr = field(default_factory=Ident)


@dataclass
class NegExpr(Expr):
    """Unary minus."""

    operand: Expr = field(default_factory=Ident)


@dataclass
class Call(Expr):
    """Function call; ``star`` marks ``count(*)``."""

    name: str = ""
    args: Tuple[Expr, ...] = ()
    star: bool = False


@dataclass
class Quantified(Expr):
    """``SOME var IN collection SATISFIES predicate``."""

    var: str = ""
    collection: Expr = field(default_factory=Ident)
    predicate: Expr = field(default_factory=Ident)


@dataclass
class ExistsExpr(Expr):
    """``EXISTS collection`` — true iff the collection is non-empty."""

    operand: Expr = field(default_factory=Ident)


@dataclass
class IsTest(Expr):
    """``expr IS [NOT] NULL | MISSING | UNKNOWN``."""

    operand: Expr = field(default_factory=Ident)
    kind: str = "unknown"          # "null" | "missing" | "unknown"
    negated: bool = False


# ---------------------------------------------------------------------------
# clauses
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(Node):
    expr: Expr = field(default_factory=Ident)
    alias: Optional[str] = None


@dataclass
class SelectClause(Node):
    """``SELECT *`` | ``SELECT VALUE expr`` | ``SELECT item, ...``."""

    kind: str = "star"             # "star" | "value" | "items"
    value: Optional[Expr] = None
    items: Tuple[SelectItem, ...] = ()


@dataclass
class FromClause(Node):
    dataset: str = ""
    alias: str = ""


@dataclass
class UnnestClause(Node):
    collection: Expr = field(default_factory=Ident)
    alias: str = ""


@dataclass
class LetClause(Node):
    name: str = ""
    expr: Expr = field(default_factory=Ident)


@dataclass
class GroupKey(Node):
    expr: Expr = field(default_factory=Ident)
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    expr: Expr = field(default_factory=Ident)
    descending: bool = False


@dataclass
class Query(Node):
    """One parsed SQL++ query (clauses in source order where it matters)."""

    select: SelectClause = field(default_factory=SelectClause)
    from_clause: FromClause = field(default_factory=FromClause)
    lets: Tuple[LetClause, ...] = ()
    unnests: Tuple[UnnestClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[GroupKey, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[NumberLit] = None


@dataclass
class CreateIndex(Node):
    """``CREATE INDEX <name> ON <dataset> (<field.path>)`` — DDL statement."""

    name: str = ""
    dataset: str = ""
    field_path: Tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# unparser
# ---------------------------------------------------------------------------

_ATOMIC = (NumberLit, StringLit, BoolLit, NullLit, MissingLit, Ident, Path, Call)


def _escape(text: str) -> str:
    out = []
    for char in text:
        if char == "\\":
            out.append("\\\\")
        elif char == "'":
            out.append("\\'")
        elif char == "\n":
            out.append("\\n")
        elif char == "\t":
            out.append("\\t")
        elif char == "\r":
            out.append("\\r")
        else:
            out.append(char)
    return "".join(out)


def _operand(expr: Expr) -> str:
    """Unparse a subexpression, parenthesizing anything non-atomic so the
    canonical text re-parses to exactly the same tree."""
    text = unparse_expr(expr)
    return text if isinstance(expr, _ATOMIC) else f"({text})"


def unparse_expr(expr: Expr) -> str:
    if isinstance(expr, NumberLit):
        return repr(expr.value)
    if isinstance(expr, StringLit):
        return f"'{_escape(expr.value)}'"
    if isinstance(expr, BoolLit):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, NullLit):
        return "NULL"
    if isinstance(expr, MissingLit):
        return "MISSING"
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, Path):
        pieces = [_operand(expr.base) if not isinstance(expr.base, Ident) else expr.base.name]
        for step in expr.steps:
            if step == "*":
                pieces.append("[*]")
            elif isinstance(step, int):
                pieces.append(f"[{step}]")
            else:
                pieces.append(f".{step}")
        return "".join(pieces)
    if isinstance(expr, BinOp):
        return f"{_operand(expr.left)} {expr.op} {_operand(expr.right)}"
    if isinstance(expr, AndExpr):
        return " AND ".join(_operand(op) for op in expr.operands)
    if isinstance(expr, OrExpr):
        return " OR ".join(_operand(op) for op in expr.operands)
    if isinstance(expr, NotExpr):
        return f"NOT {_operand(expr.operand)}"
    if isinstance(expr, NegExpr):
        return f"- {_operand(expr.operand)}"
    if isinstance(expr, Call):
        if expr.star:
            return f"{expr.name}(*)"
        return f"{expr.name}({', '.join(unparse_expr(arg) for arg in expr.args)})"
    if isinstance(expr, Quantified):
        return (f"SOME {expr.var} IN {_operand(expr.collection)} "
                f"SATISFIES {unparse_expr(expr.predicate)}")
    if isinstance(expr, ExistsExpr):
        return f"EXISTS {_operand(expr.operand)}"
    if isinstance(expr, IsTest):
        negation = "NOT " if expr.negated else ""
        return f"{_operand(expr.operand)} IS {negation}{expr.kind.upper()}"
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse(query: "Node") -> str:
    """Render a :class:`Query` (or :class:`CreateIndex`) back to canonical SQL++."""
    if isinstance(query, CreateIndex):
        return (f"CREATE INDEX {query.name} ON {query.dataset} "
                f"({'.'.join(query.field_path)})")
    parts = []
    select = query.select
    if select.kind == "star":
        parts.append("SELECT *")
    elif select.kind == "value":
        parts.append(f"SELECT VALUE {unparse_expr(select.value)}")
    else:
        rendered = ", ".join(
            unparse_expr(item.expr) + (f" AS {item.alias}" if item.alias else "")
            for item in select.items)
        parts.append(f"SELECT {rendered}")
    parts.append(f"FROM {query.from_clause.dataset} AS {query.from_clause.alias}")
    for let in query.lets:
        parts.append(f"LET {let.name} = {unparse_expr(let.expr)}")
    for unnest in query.unnests:
        parts.append(f"UNNEST {unparse_expr(unnest.collection)} AS {unnest.alias}")
    if query.where is not None:
        parts.append(f"WHERE {unparse_expr(query.where)}")
    if query.group_by:
        rendered = ", ".join(
            unparse_expr(key.expr) + (f" AS {key.alias}" if key.alias else "")
            for key in query.group_by)
        parts.append(f"GROUP BY {rendered}")
    if query.order_by:
        rendered = ", ".join(
            unparse_expr(item.expr) + (" DESC" if item.descending else "")
            for item in query.order_by)
        parts.append(f"ORDER BY {rendered}")
    if query.limit is not None:
        parts.append(f"LIMIT {unparse_expr(query.limit)}")
    return "\n".join(parts)
