"""Table 2 — writing tweets in different record formats.

The paper encodes a 52 MB sample of tweets with Apache Avro, Apache Thrift
(binary and compact protocols), Protocol Buffers, and the vector-based
format, reporting the encoded size and the record-construction time.  Its
findings: sizes are mostly comparable (compact Thrift smallest), Thrift is
the fastest to construct followed by the vector-based format, Avro ~1.9x and
Protocol Buffers ~2.9x slower than vector-based.

This module repeats the comparison on the synthetic tweet sample using this
repository's wire-format implementations.  The shape checks stick to the
claims that survive the substrate change: the schema-driven formats and the
vector-based format land in the same size ballpark, compact Thrift is
smaller than binary Thrift, and Protocol Buffers (whose nested messages are
length-prefixed and therefore copied child-into-parent) is the slowest of
the schema-driven encoders to construct.
"""

import time

from harness import mb, print_table, records_for, shape_check

from repro.formats import (
    AvroLikeEncoder,
    FormatSchema,
    ProtobufLikeEncoder,
    ThriftBinaryEncoder,
    ThriftCompactEncoder,
)
from repro.types import open_only_primary_key
from repro.vector import VectorEncoder

SAMPLE_COUNT = 1500


def _table2():
    records = records_for("twitter", SAMPLE_COUNT)
    schema = FormatSchema.from_records(records)
    datatype = open_only_primary_key("TweetType")
    encoders = {
        "Avro": AvroLikeEncoder(schema),
        "Thrift (BP)": ThriftBinaryEncoder(schema),
        "Thrift (CP)": ThriftCompactEncoder(schema),
        "ProtoBuf": ProtobufLikeEncoder(schema),
        "Vector-based": VectorEncoder(datatype),
    }
    rows = []
    measurements = {}
    for name, encoder in encoders.items():
        started = time.perf_counter()
        total_size = sum(len(encoder.encode(record)) for record in records)
        elapsed = time.perf_counter() - started
        measurements[name] = {"size": total_size, "seconds": elapsed}
        rows.append({"Format": name, "Space (MB)": mb(total_size),
                     "Construction time (ms)": elapsed * 1000.0})
    return rows, measurements


def test_table2_format_comparison(benchmark):
    rows, measurements = benchmark.pedantic(_table2, rounds=1, iterations=1)
    print_table("Table 2 — writing the tweet sample in different formats", rows)

    sizes = {name: values["size"] for name, values in measurements.items()}
    times = {name: values["seconds"] for name, values in measurements.items()}

    shape_check("compact Thrift is smaller than binary Thrift",
                sizes["Thrift (CP)"] < sizes["Thrift (BP)"])
    largest = max(sizes.values())
    smallest = min(sizes.values())
    shape_check("all five formats land within ~3x of each other (paper: comparable sizes)",
                largest / smallest < 3.0)
    # Construction-time orderings in the paper (Thrift fastest, vector-based second,
    # Avro 1.9x, Protobuf 2.9x slower) reflect the Java implementations; the Python
    # encoders here have different constant factors, so the checks below only assert
    # that construction costs stay within a small factor of each other — the detailed
    # ordering is printed above and discussed in EXPERIMENTS.md.
    fastest = min(times.values())
    slowest = max(times.values())
    shape_check("construction times stay within ~4x across formats", slowest / fastest < 4.0)
    shape_check("vector-based construction is competitive with the schema-driven formats",
                times["Vector-based"] < 3.0 * fastest)
