"""Figure 22 — linear-time field access in the vector-based format.

Accessing a value in the vector-based format costs a scan of the record's
vectors up to the value's position, whereas the ADM format follows offsets,
so the paper measures four COUNT-style queries whose requested field sits at
positions ~1, 34, 68 and 136 of a wide record.  Expected shapes:

* for the inferred (vector-based) dataset the access time grows with the
  field's position (Q1 fastest, Q4 slowest);
* for the open and closed (ADM) datasets the four queries cost roughly the
  same;
* the small, fully-cached variant (Figure 22b) shows the same CPU-side
  behaviour with no I/O component at all.
"""

import time

from harness import DeviceKind, print_table, shape_check

from repro import Dataset, StorageEnvironment, StorageFormat
from repro.adm import ADMEncoder, ADMRecordView
from repro.query import Comparison, QueryExecutor, field, lit, scan
from repro.types import Datatype, open_only_primary_key
from repro.vector import VectorEncoder, VectorRecordView

FIELD_COUNT = 136
POSITIONS = {"Q1": 1, "Q2": 34, "Q3": 68, "Q4": 136}
RECORDS = 800


def _wide_record(record_id: int):
    record = {"id": record_id}
    for position in range(1, FIELD_COUNT + 1):
        record[f"field_{position:03d}"] = (record_id * 31 + position) % 1000
    return record


def _count_query(position: int):
    name = f"field_{position:03d}"
    return (scan("t")
            .where(Comparison(">=", field("t", name), lit(0)))
            .count_star()
            .build())


def _build_datasets():
    records = [_wide_record(i) for i in range(RECORDS)]
    datasets = {}
    for format_name, storage_format in (("open", StorageFormat.OPEN),
                                        ("closed", StorageFormat.CLOSED),
                                        ("inferred", StorageFormat.INFERRED)):
        datatype = Datatype.from_records("WideType", records, primary_key="id") \
            if storage_format is StorageFormat.CLOSED else None
        dataset = Dataset.create(f"wide_{format_name}", storage_format,
                                 environment=StorageEnvironment.for_device(DeviceKind.NVME_SSD),
                                 datatype=datatype)
        dataset.insert_all(records)
        dataset.flush_all()
        datasets[format_name] = dataset
    return datasets


def _figure22a(datasets):
    executor = QueryExecutor(cold_cache=True)
    timings = {}
    rows = []
    for format_name, dataset in datasets.items():
        for query_name, position in POSITIONS.items():
            # take the best of three runs so scheduler/GC noise on these
            # few-millisecond queries cannot distort the position comparison
            best = None
            for _ in range(3):
                result = executor.execute(dataset, _count_query(position))
                assert result.rows[0]["count"] == RECORDS
                seconds = result.stats.wall_seconds
                best = seconds if best is None else min(best, seconds)
            timings[(format_name, query_name)] = best
            rows.append({"Format": format_name, "Query": query_name,
                         "Field position": position,
                         "CPU (s)": best})
    return timings, rows


def test_fig22a_position_dependent_access(benchmark):
    datasets = _build_datasets()
    timings, rows = benchmark.pedantic(lambda: _figure22a(datasets), rounds=1, iterations=1)
    print_table("Figure 22a — access time by field position (count queries)", rows)
    shape_check("inferred: accessing the last field costs more than the first",
                timings[("inferred", "Q4")] > timings[("inferred", "Q1")] * 1.15)
    # The closed (declared) dataset resolves fields through the metadata-provided
    # index, so its cost must stay position-independent.  (The *open* dataset's
    # inline-name lookup is also a linear search in this implementation, so it is
    # reported in the table but not asserted flat — see EXPERIMENTS.md.)
    closed_spread = max(timings[("closed", name)] for name in POSITIONS) / \
        max(min(timings[("closed", name)] for name in POSITIONS), 1e-9)
    shape_check("closed: access cost is roughly position-independent", closed_spread < 2.5)
    inferred_spread = timings[("inferred", "Q4")] / max(timings[("inferred", "Q1")], 1e-9)
    shape_check("inferred is more position-sensitive than closed", inferred_spread > closed_spread)


def test_fig22b_in_memory_access(benchmark):
    """Figure 22b — the same effect measured on raw record views, no storage at all."""
    datatype = open_only_primary_key("WideType")
    records = [_wide_record(i) for i in range(400)]
    vector_payloads = [VectorEncoder(datatype).encode(record) for record in records]
    adm_payloads = [ADMEncoder(datatype).encode(record) for record in records]

    def measure():
        timings = {}
        for query_name, position in POSITIONS.items():
            path = (f"field_{position:03d}",)
            started = time.perf_counter()
            for payload in vector_payloads:
                VectorRecordView(payload, datatype).get_values(path)
            timings[("vector", query_name)] = time.perf_counter() - started
            started = time.perf_counter()
            for payload in adm_payloads:
                ADMRecordView(payload, datatype).get_field(*path)
            timings[("adm", query_name)] = time.perf_counter() - started
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [{"Format": fmt, "Query": name, "CPU (s)": seconds}
            for (fmt, name), seconds in sorted(timings.items())]
    print_table("Figure 22b — in-memory field access by position", rows)
    shape_check("vector-based in-memory access grows with position",
                timings[("vector", "Q4")] > timings[("vector", "Q1")])
