"""Figure 18 — query execution time, Twitter dataset (Q1–Q4).

Q1 counts records, Q2 groups/sorts users by average tweet length, Q3 filters
on a hashtag with an existential quantifier before grouping, and Q4 sorts
the whole dataset by timestamp.  The paper runs them against the open,
closed, and inferred datasets, with and without page compression, on SATA
and NVMe devices, and observes that (i) on SATA the execution times track
the on-disk sizes and (ii) compression helps wherever I/O dominates.

Shape checks target the quantities this substrate models faithfully — bytes
read / simulated device time per configuration (the SATA-side ordering) and
result equivalence — while the measured Python CPU seconds are printed for
completeness (see the faithfulness note in EXPERIMENTS.md: relative CPU
costs of the Java runtime do not transfer to Python).
"""

from harness import (
    batch_row_comparison,
    check_batch_speedup,
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    check_warm_cache_speedup,
    print_table,
    query_figure,
    repeated_query_caching,
    scale_factor,
)

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig18_twitter_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("twitter"),
                                            rounds=1, iterations=1)
    print_table("Figure 18 — Twitter Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("twitter", measurements, QUERY_NAMES)
    check_compression_reduces_io("twitter", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    # Appendix A.1: the same queries as SQL++ text compile through repro.sqlpp
    # to plans that return identical rows.
    check_sqlpp_parity("twitter", QUERY_NAMES)
    # NVMe reads the same bytes ~6x faster than SATA: the I/O component shrinks,
    # which is why the paper's NVMe runs expose CPU cost instead.
    for key, measurement in measurements.items():
        assert measurement["nvme_io"] <= measurement["sata_io"]


def test_fig18_batch_vs_row(benchmark):
    """Vectorized batch execution against the row pipeline, same queries.

    Q2 and Q3 are the scan-heavy aggregations where one trie-guided extractor
    pass per record replaces per-field navigation, so they carry the speedup
    assertion.  Q1 (count(*) decodes no columns) and Q4 (SELECT * is bound by
    result materialization, not extraction) still run batch and still win,
    but by smaller factors that are printed rather than asserted.
    """
    rows, measurements = benchmark.pedantic(
        lambda: batch_row_comparison("twitter", QUERY_NAMES),
        rounds=1, iterations=1)
    print_table("Figure 18 (detail) — batch vs row execution, inferred format "
                "(hot cache, best of 3)", rows)
    # >=3x at default scale and above; at the reduced CI smoke scale the
    # fixed per-query costs (plan compile, warmup) occupy a larger share of
    # the shrunken runtime, so the floor relaxes to 2x there.
    min_speedup = 3.0 if scale_factor() >= 1.0 else 2.0
    check_batch_speedup("twitter", measurements, ("Q2", "Q3"), min_speedup=min_speedup)


def test_fig18_repeated_query_caching(benchmark):
    """Repeated execution of the same SQL++ text through the PR 10 caches.

    The cold run pays parse -> bind -> optimize, page reads, and column
    decoding; warm repeats must be served by the plan cache (no recompile)
    and the decoded column-slice cache (no page reads, no decode) — at
    least 2x faster on the scan-heavy aggregations Q2/Q3, with strictly
    fewer device bytes read and nonzero hit counters on both caches.
    """
    rows, measurements = benchmark.pedantic(
        lambda: repeated_query_caching("twitter", QUERY_NAMES),
        rounds=1, iterations=1)
    print_table("Figure 18 (detail) — repeated-query caching, inferred format "
                "(cold vs best-of-3 warm)", rows)
    check_warm_cache_speedup("twitter", measurements, ("Q2", "Q3"), min_speedup=2.0)
