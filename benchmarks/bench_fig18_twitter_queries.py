"""Figure 18 — query execution time, Twitter dataset (Q1–Q4).

Q1 counts records, Q2 groups/sorts users by average tweet length, Q3 filters
on a hashtag with an existential quantifier before grouping, and Q4 sorts
the whole dataset by timestamp.  The paper runs them against the open,
closed, and inferred datasets, with and without page compression, on SATA
and NVMe devices, and observes that (i) on SATA the execution times track
the on-disk sizes and (ii) compression helps wherever I/O dominates.

Shape checks target the quantities this substrate models faithfully — bytes
read / simulated device time per configuration (the SATA-side ordering) and
result equivalence — while the measured Python CPU seconds are printed for
completeness (see the faithfulness note in EXPERIMENTS.md: relative CPU
costs of the Java runtime do not transfer to Python).
"""

from harness import (
    batch_row_comparison,
    check_batch_speedup,
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    print_table,
    query_figure,
    scale_factor,
)

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig18_twitter_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("twitter"),
                                            rounds=1, iterations=1)
    print_table("Figure 18 — Twitter Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("twitter", measurements, QUERY_NAMES)
    check_compression_reduces_io("twitter", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    # Appendix A.1: the same queries as SQL++ text compile through repro.sqlpp
    # to plans that return identical rows.
    check_sqlpp_parity("twitter", QUERY_NAMES)
    # NVMe reads the same bytes ~6x faster than SATA: the I/O component shrinks,
    # which is why the paper's NVMe runs expose CPU cost instead.
    for key, measurement in measurements.items():
        assert measurement["nvme_io"] <= measurement["sata_io"]


def test_fig18_batch_vs_row(benchmark):
    """Vectorized batch execution against the row pipeline, same queries.

    Q2 and Q3 are the scan-heavy aggregations where one trie-guided extractor
    pass per record replaces per-field navigation, so they carry the speedup
    assertion.  Q1 (count(*) decodes no columns) and Q4 (SELECT * is bound by
    result materialization, not extraction) still run batch and still win,
    but by smaller factors that are printed rather than asserted.
    """
    rows, measurements = benchmark.pedantic(
        lambda: batch_row_comparison("twitter", QUERY_NAMES),
        rounds=1, iterations=1)
    print_table("Figure 18 (detail) — batch vs row execution, inferred format "
                "(hot cache, best of 3)", rows)
    # >=3x at default scale and above; at the reduced CI smoke scale the
    # fixed per-query costs (plan compile, warmup) occupy a larger share of
    # the shrunken runtime, so the floor relaxes to 2x there.
    min_speedup = 3.0 if scale_factor() >= 1.0 else 2.0
    check_batch_speedup("twitter", measurements, ("Q2", "Q3"), min_speedup=min_speedup)
