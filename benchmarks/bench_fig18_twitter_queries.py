"""Figure 18 — query execution time, Twitter dataset (Q1–Q4).

Q1 counts records, Q2 groups/sorts users by average tweet length, Q3 filters
on a hashtag with an existential quantifier before grouping, and Q4 sorts
the whole dataset by timestamp.  The paper runs them against the open,
closed, and inferred datasets, with and without page compression, on SATA
and NVMe devices, and observes that (i) on SATA the execution times track
the on-disk sizes and (ii) compression helps wherever I/O dominates.

Shape checks target the quantities this substrate models faithfully — bytes
read / simulated device time per configuration (the SATA-side ordering) and
result equivalence — while the measured Python CPU seconds are printed for
completeness (see the faithfulness note in EXPERIMENTS.md: relative CPU
costs of the Java runtime do not transfer to Python).
"""

from harness import (
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    print_table,
    query_figure,
)

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig18_twitter_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("twitter"),
                                            rounds=1, iterations=1)
    print_table("Figure 18 — Twitter Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("twitter", measurements, QUERY_NAMES)
    check_compression_reduces_io("twitter", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    # Appendix A.1: the same queries as SQL++ text compile through repro.sqlpp
    # to plans that return identical rows.
    check_sqlpp_parity("twitter", QUERY_NAMES)
    # NVMe reads the same bytes ~6x faster than SATA: the I/O component shrinks,
    # which is why the paper's NVMe runs expose CPU cost instead.
    for key, measurement in measurements.items():
        assert measurement["nvme_io"] <= measurement["sata_io"]
