"""Figure 7 — the motivating open-vs-closed gap (Pirzadeh et al., summarized).

The paper motivates the tuple compactor with prior findings that fully
*open* (self-describing) datasets take roughly twice the storage of fully
*closed* (pre-declared) datasets and that scan-heavy queries take about
twice as long against them.  This module reproduces both halves of that
figure on the Twitter-like workload: (a) on-disk storage size, (b) the
execution time of a scan-dominated query (Twitter Q2) and a full-scan sort
(Twitter Q4) on a SATA-class device where I/O dominates.
"""

from harness import DeviceKind, build_dataset, print_table, run_query, shape_check, simulated_device_seconds

from repro.datasets import twitter


def _figure7():
    open_built = build_dataset("twitter", "open")
    closed_built = build_dataset("twitter", "closed")

    size_rows = [
        {"Configuration": "Open Fields", "On-disk size (bytes)": open_built.storage_size},
        {"Configuration": "Closed Fields", "On-disk size (bytes)": closed_built.storage_size},
    ]

    time_rows = []
    for query_name in ("Q2", "Q4"):
        spec = twitter.QUERIES[query_name]()
        open_stats = run_query(open_built, spec).stats
        closed_stats = run_query(closed_built, spec).stats
        open_io = simulated_device_seconds(open_stats, DeviceKind.SATA_SSD)
        closed_io = simulated_device_seconds(closed_stats, DeviceKind.SATA_SSD)
        time_rows.append({"Query": f"Twitter {query_name}",
                          "Open CPU (s)": open_stats.wall_seconds,
                          "Closed CPU (s)": closed_stats.wall_seconds,
                          "Open SATA I/O (s)": open_io,
                          "Closed SATA I/O (s)": closed_io,
                          "Open / Closed I/O": open_io / closed_io})
    return size_rows, time_rows, open_built, closed_built


def test_fig07_open_vs_closed(benchmark):
    size_rows, time_rows, open_built, closed_built = benchmark.pedantic(
        _figure7, rounds=1, iterations=1)
    print_table("Figure 7a — on-disk storage size", size_rows)
    print_table("Figure 7b — scan-heavy query cost (SATA-class device)", time_rows)

    shape_check("open storage is substantially larger than closed",
                open_built.storage_size > 1.3 * closed_built.storage_size)
    for row in time_rows:
        shape_check(f"{row['Query']}: the open dataset's scan I/O is larger than closed's",
                    row["Open SATA I/O (s)"] > row["Closed SATA I/O (s)"])
