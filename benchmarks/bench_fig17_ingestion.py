"""Figure 17 — data ingestion performance.

* (a) continuous data-feed ingestion of the Twitter workload (insert-only),
  SATA vs NVMe, uncompressed vs compressed;
* (b) the same feed with 50 % updates (every other operation upserts a
  previously ingested record), which exercises the point lookups the tuple
  compactor needs to fetch anti-schemas;
* (c) bulk-loading the WoS workload (sort + bottom-up B+-tree build).

Faithfulness note (also recorded in EXPERIMENTS.md): the paper's ingest win
for the inferred configuration comes from cheaper *Java* record construction
and from writing smaller LSM components.  In this pure-Python substrate the
CPU side inverts (schema inference + compaction in Python outweigh the
cheaper vector construction), so the shape checks below target the part the
substrate models faithfully — the write volume / simulated device time,
where inferred writes the least — and the update-workload behaviour
(inferred pays for anti-schema point lookups, open/closed do not), while the
measured wall-clock columns are printed for transparency.
"""

from harness import DeviceKind, build_dataset, print_table, shape_check

_FORMATS = ("open", "closed", "inferred")


def _feed_insert_only():
    rows = []
    io_seconds = {}
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for compression in (None, "snappy"):
            for format_name in _FORMATS:
                built = build_dataset("twitter", format_name, compression=compression,
                                      device=device, method="feed", cache=False)
                report = built.ingest_report
                io_seconds[(device, compression, format_name)] = report.simulated_io_seconds
                rows.append({"Device": device.value, "Compression": compression or "none",
                             "Format": format_name,
                             "Wall (s)": report.wall_seconds,
                             "Simulated write I/O (s)": report.simulated_io_seconds,
                             "Data bytes written": report.data_bytes_written,
                             "Flushes": report.flushes})
    return rows, io_seconds


def test_fig17a_feed_insert_only(benchmark):
    rows, io_seconds = benchmark.pedantic(_feed_insert_only, rounds=1, iterations=1)
    print_table("Figure 17a — Twitter data feed, insert-only", rows)
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for compression in (None, "snappy"):
            inferred = io_seconds[(device, compression, "inferred")]
            open_ = io_seconds[(device, compression, "open")]
            shape_check(
                f"{device.value}/{compression}: inferred writes less than open (smaller components)",
                inferred < open_,
            )


def _feed_with_updates():
    rows = []
    times = {}
    for format_name in _FORMATS:
        for update_ratio in (0.0, 0.5):
            built = build_dataset("twitter", format_name, device=DeviceKind.NVME_SSD,
                                  method="feed", update_ratio=update_ratio, cache=False)
            seconds = built.ingest_report.total_seconds
            times[(format_name, update_ratio)] = seconds
            rows.append({"Format": format_name,
                         "Updates": f"{int(update_ratio * 100)}%",
                         "Ingest time (s)": seconds,
                         "Upserts": built.ingest_report.updates,
                         "Maintenance lookups": built.dataset.ingest_stats()["maintenance_point_lookups"]})
    return rows, times


def test_fig17b_feed_with_updates(benchmark):
    rows, times = benchmark.pedantic(_feed_with_updates, rounds=1, iterations=1)
    print_table("Figure 17b — Twitter data feed with 50% updates (NVMe)", rows)
    inferred_penalty = times[("inferred", 0.5)] / times[("inferred", 0.0)]
    shape_check("inferred pays a visible update penalty (anti-schema point lookups)",
                inferred_penalty > 1.05)
    # Note: the 50%-update feed performs ~1.5x the operations of the insert-only
    # feed for every format; the *extra* inferred-only cost is the maintenance
    # lookups, which the printed column makes visible.
    shape_check("open/closed perform no maintenance point lookups",
                all(row["Maintenance lookups"] == 0 for row in rows if row["Format"] != "inferred"))


def _bulkload():
    rows = []
    sizes = {}
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for format_name in _FORMATS:
            built = build_dataset("wos", format_name, device=device, method="load", cache=False)
            sizes[(device, format_name)] = built.storage_size
            rows.append({"Device": device.value, "Format": format_name,
                         "Bulk-load wall (s)": built.ingest_wall_seconds,
                         "Simulated write I/O (s)": built.environment.simulated_io_seconds(),
                         "Loaded size (bytes)": built.storage_size})
    return rows, sizes


def test_fig17c_wos_bulkload(benchmark):
    rows, sizes = benchmark.pedantic(_bulkload, rounds=1, iterations=1)
    print_table("Figure 17c — WoS bulk load", rows)
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        shape_check(f"{device.value}: the single loaded inferred component is the smallest",
                    sizes[(device, "inferred")] < sizes[(device, "closed")] < sizes[(device, "open")])
    # Each load produces exactly one component per partition (single inferred schema).
    single = build_dataset("wos", "inferred", method="load", cache=False)
    shape_check("bulk load builds one on-disk component",
                all(partition.index.component_count() == 1
                    for partition in single.dataset.partitions))
