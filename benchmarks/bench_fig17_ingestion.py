"""Figure 17 — data ingestion performance.

* (a) continuous data-feed ingestion of the Twitter workload (insert-only),
  SATA vs NVMe, uncompressed vs compressed;
* (b) the same feed with 50 % updates (every other operation upserts a
  previously ingested record), which exercises the point lookups the tuple
  compactor needs to fetch anti-schemas;
* (c) bulk-loading the WoS workload (sort + bottom-up B+-tree build).

Faithfulness note (also recorded in EXPERIMENTS.md): the paper's ingest win
for the inferred configuration comes from cheaper *Java* record construction
and from writing smaller LSM components.  In this pure-Python substrate the
CPU side inverts (schema inference + compaction in Python outweigh the
cheaper vector construction), so the shape checks below target the part the
substrate models faithfully — the write volume / simulated device time,
where inferred writes the least — and the update-workload behaviour
(inferred pays for anti-schema point lookups, open/closed do not), while the
measured wall-clock columns are printed for transparency.
"""

from harness import (
    DeviceKind,
    build_dataset,
    lifecycle_columns,
    lifecycle_json,
    print_table,
    scale_factor,
    shape_check,
)

from repro import Dataset, LSMConfig, StorageEnvironment, StorageFormat
from repro.cluster import DataFeed
from repro.config import StorageConfig
from repro.datasets import twitter

_FORMATS = ("open", "closed", "inferred")


def _feed_insert_only():
    rows = []
    io_seconds = {}
    reports = []
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for compression in (None, "snappy"):
            for format_name in _FORMATS:
                built = build_dataset("twitter", format_name, compression=compression,
                                      device=device, method="feed", cache=False)
                report = built.ingest_report
                io_seconds[(device, compression, format_name)] = report.simulated_io_seconds
                reports.append(({"device": device.value,
                                 "compression": compression or "none",
                                 "format": format_name}, report))
                rows.append({"Device": device.value, "Compression": compression or "none",
                             "Format": format_name,
                             "Wall (s)": report.wall_seconds,
                             "Simulated write I/O (s)": report.simulated_io_seconds,
                             "Data bytes written": report.data_bytes_written,
                             **lifecycle_columns(report)})
    return rows, io_seconds, reports


def test_fig17a_feed_insert_only(benchmark):
    rows, io_seconds, reports = benchmark.pedantic(_feed_insert_only, rounds=1, iterations=1)
    print_table("Figure 17a — Twitter data feed, insert-only", rows)
    benchmark.extra_info["lifecycle"] = [
        lifecycle_json(report, **extra) for extra, report in reports]
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for compression in (None, "snappy"):
            inferred = io_seconds[(device, compression, "inferred")]
            open_ = io_seconds[(device, compression, "open")]
            shape_check(
                f"{device.value}/{compression}: inferred writes less than open (smaller components)",
                inferred < open_,
            )


def _feed_with_updates():
    rows = []
    times = {}
    for format_name in _FORMATS:
        for update_ratio in (0.0, 0.5):
            built = build_dataset("twitter", format_name, device=DeviceKind.NVME_SSD,
                                  method="feed", update_ratio=update_ratio, cache=False)
            seconds = built.ingest_report.total_seconds
            times[(format_name, update_ratio)] = seconds
            rows.append({"Format": format_name,
                         "Updates": f"{int(update_ratio * 100)}%",
                         "Ingest time (s)": seconds,
                         "Upserts": built.ingest_report.updates,
                         "Maintenance lookups": built.dataset.ingest_stats()["maintenance_point_lookups"],
                         **lifecycle_columns(built.ingest_report)})
    return rows, times


def test_fig17b_feed_with_updates(benchmark):
    rows, times = benchmark.pedantic(_feed_with_updates, rounds=1, iterations=1)
    print_table("Figure 17b — Twitter data feed with 50% updates (NVMe)", rows)
    inferred_penalty = times[("inferred", 0.5)] / times[("inferred", 0.0)]
    shape_check("inferred pays a visible update penalty (anti-schema point lookups)",
                inferred_penalty > 1.05)
    # Note: the 50%-update feed performs ~1.5x the operations of the insert-only
    # feed for every format; the *extra* inferred-only cost is the maintenance
    # lookups, which the printed column makes visible.
    shape_check("open/closed perform no maintenance point lookups",
                all(row["Maintenance lookups"] == 0 for row in rows if row["Format"] != "inferred"))


def _bulkload():
    rows = []
    sizes = {}
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        for format_name in _FORMATS:
            built = build_dataset("wos", format_name, device=device, method="load", cache=False)
            sizes[(device, format_name)] = built.storage_size
            rows.append({"Device": device.value, "Format": format_name,
                         "Bulk-load wall (s)": built.ingest_wall_seconds,
                         "Simulated write I/O (s)": built.environment.simulated_io_seconds(),
                         "Loaded size (bytes)": built.storage_size})
    return rows, sizes


def test_fig17c_wos_bulkload(benchmark):
    rows, sizes = benchmark.pedantic(_bulkload, rounds=1, iterations=1)
    print_table("Figure 17c — WoS bulk load", rows)
    for device in (DeviceKind.SATA_SSD, DeviceKind.NVME_SSD):
        shape_check(f"{device.value}: the single loaded inferred component is the smallest",
                    sizes[(device, "inferred")] < sizes[(device, "closed")] < sizes[(device, "open")])
    # Each load produces exactly one component per partition (single inferred schema).
    single = build_dataset("wos", "inferred", method="load", cache=False)
    shape_check("bulk load builds one on-disk component",
                all(partition.index.component_count() == 1
                    for partition in single.dataset.partitions))


# ---------------------------------------------------------------------------
# Figure 17d (extension) — background LSM lifecycle vs the synchronous pipeline
# ---------------------------------------------------------------------------

_OVERLAP_PARTITIONS = 4
_OVERLAP_THROTTLE = 40.0


def _overlap_feed(background: bool):
    """One throttled multi-partition feed run, synchronous or backgrounded.

    ``io_throttle`` turns simulated device seconds into real GIL-releasing
    sleeps *during ingestion*, so the wall-clock columns genuinely measure
    whether flushes/merges overlap the ingest path (they cannot in the
    synchronous pipeline, where every insert stalls inside the flush)."""
    environment = StorageEnvironment(StorageConfig(
        page_size=8 * 1024, buffer_cache_pages=2048,
        device_kind=DeviceKind.SATA_SSD, io_throttle=_OVERLAP_THROTTLE))
    dataset = Dataset.create(
        f"fig17d_{'bg' if background else 'sync'}", StorageFormat.INFERRED,
        environment=environment, partitions=_OVERLAP_PARTITIONS,
        lsm=LSMConfig(background_maintenance=background,
                      memory_component_budget=24 * 1024,
                      max_sealed_memtables=3,
                      max_tolerable_component_count=3))
    feed = DataFeed(dataset, per_partition_ingest=background)
    count = max(150, int(300 * scale_factor()))
    report = feed.run(twitter.generate(count))
    feed.close()
    return dataset, report


def _background_overlap():
    sync_dataset, sync_report = _overlap_feed(background=False)
    bg_dataset, bg_report = _overlap_feed(background=True)
    rows = []
    for label, dataset, report in (("synchronous", sync_dataset, sync_report),
                                   ("background", bg_dataset, bg_report)):
        rows.append({"Mode": label, "Ingest threads": report.ingest_threads,
                     "Wall (s)": report.wall_seconds,
                     "Records/s": report.records_ingested / max(report.wall_seconds, 1e-9),
                     **lifecycle_columns(report)})
    return rows, (sync_dataset, sync_report), (bg_dataset, bg_report)


def test_fig17d_background_lifecycle_overlap(benchmark):
    rows, (sync_dataset, sync_report), (bg_dataset, bg_report) = benchmark.pedantic(
        _background_overlap, rounds=1, iterations=1)
    print_table("Figure 17d — background flush/merge vs synchronous pipeline "
                f"(SATA, io_throttle={_OVERLAP_THROTTLE})", rows)
    benchmark.extra_info["background"] = lifecycle_json(
        bg_report, wall_seconds=bg_report.wall_seconds)
    benchmark.extra_info["synchronous"] = lifecycle_json(
        sync_report, wall_seconds=sync_report.wall_seconds)

    shape_check("background flush/merge with per-partition ingest beats the "
                "synchronous sequential pipeline on wall time",
                bg_report.wall_seconds < sync_report.wall_seconds * 0.8)
    shape_check("both modes ingested the same records",
                bg_report.records_ingested == sync_report.records_ingested)
    shape_check("post-ingest row sets are identical across modes",
                sorted(row["id"] for row in bg_dataset.scan())
                == sorted(row["id"] for row in sync_dataset.scan()))
    shape_check("post-ingest ingest_stats record counts agree",
                bg_dataset.ingest_stats()["inserts"]
                == sync_dataset.ingest_stats()["inserts"])
    bg_dataset.close()
