"""Figure 25 — scale-out storage size and ingestion time.

The paper scales the Twitter workload proportionally with the cluster size
(4/8/16/32 EC2 nodes, compressed datasets only) and shows per-configuration
totals growing linearly: the inferred dataset keeps the lowest storage
footprint and the highest ingest rate at every cluster size.

The cluster simulator runs every node in one process, so the node counts are
scaled down (1/2/4) and the checked shapes are: (i) total storage grows
roughly linearly with node count (data volume is proportional), (ii) at
every cluster size the storage ordering inferred < closed < open holds, and
(iii) the per-node write volume stays roughly constant — the "linear
scale-out" claim expressed in the substrate's faithful currency.
"""

from harness import (
    lifecycle_columns,
    lifecycle_json,
    mb,
    print_table,
    records_for,
    scale_factor,
    shape_check,
)

from repro.cluster import ClusterSimulator, DataFeed
from repro.config import ClusterConfig, StorageConfig, StorageFormat
from repro.datasets import twitter

NODE_COUNTS = (1, 2, 4)
RECORDS_PER_NODE = max(150, int(400 * scale_factor()))
_FORMATS = {"open": StorageFormat.OPEN, "closed": StorageFormat.CLOSED,
            "inferred": StorageFormat.INFERRED}


def build_cluster(nodes: int, format_name: str, io_throttle: float = 0.0,
                  ingest_throttle: float = 0.0,
                  background_maintenance=None, per_partition_ingest: bool = False,
                  memory_budget=None):
    """Build and ingest one scale-out cluster.

    ``io_throttle`` dials in the devices' latency realism *after* ingestion
    (so only queries pay real sleeps) — the Figure 26 query benchmark uses
    it to make parallel partition execution measurable in wall-clock time.
    ``ingest_throttle`` applies the realism *during* ingestion instead,
    which is what makes the background-lifecycle overlap below measurable;
    ``background_maintenance``/``per_partition_ingest`` select the
    asynchronous LSM lifecycle and the per-partition ingest threads, and
    ``memory_budget`` shrinks the memtables so flushes happen mid-feed.
    """
    cluster = ClusterSimulator(
        ClusterConfig(node_count=nodes, partitions_per_node=2),
        StorageConfig(page_size=8 * 1024, buffer_cache_pages=2048, compression="snappy",
                      io_throttle=ingest_throttle),
    )
    datatype = None
    if format_name == "closed":
        from harness import closed_datatype_for

        datatype = closed_datatype_for("twitter", records_for("twitter", RECORDS_PER_NODE))
    dataset_config = None
    if memory_budget is not None:
        from repro.config import DatasetConfig, LSMConfig

        dataset_config = DatasetConfig(
            name="tweets", primary_key="id", storage_format=_FORMATS[format_name],
            tuple_compactor_enabled=_FORMATS[format_name] is StorageFormat.INFERRED,
            storage=cluster.storage_config,
            lsm=LSMConfig(memory_component_budget=memory_budget,
                          max_tolerable_component_count=3))
    dataset = cluster.create_dataset("tweets", _FORMATS[format_name], datatype=datatype,
                                     dataset_config=dataset_config,
                                     background_maintenance=background_maintenance)
    feed = DataFeed(dataset, per_partition_ingest=per_partition_ingest)
    report = feed.run(twitter.generate(RECORDS_PER_NODE * nodes))
    feed.close()
    if io_throttle:
        cluster.set_io_throttle(io_throttle)
    return cluster, report


def _figure25():
    rows = []
    storage = {}
    reports = []
    for nodes in NODE_COUNTS:
        for format_name in _FORMATS:
            cluster, report = build_cluster(nodes, format_name)
            total = cluster.total_storage_size()
            storage[(nodes, format_name)] = total
            reports.append(({"nodes": nodes, "format": format_name}, report))
            rows.append({"Nodes": nodes, "Format": format_name,
                         "Records": RECORDS_PER_NODE * nodes,
                         "Total size (MB)": mb(total),
                         "Per-node size (MB)": mb(total / nodes),
                         "Ingest wall (s)": report.wall_seconds,
                         "Simulated write I/O (s)": report.simulated_io_seconds,
                         **lifecycle_columns(report)})
    return rows, storage, reports


def test_fig25_scaleout_storage_and_ingest(benchmark):
    rows, storage, reports = benchmark.pedantic(_figure25, rounds=1, iterations=1)
    print_table("Figure 25 — scale-out storage and ingestion (compressed datasets)", rows)
    benchmark.extra_info["lifecycle"] = [
        lifecycle_json(report, **extra) for extra, report in reports]
    for nodes in NODE_COUNTS:
        shape_check(f"{nodes} nodes: inferred < closed < open storage",
                    storage[(nodes, "inferred")] < storage[(nodes, "closed")] < storage[(nodes, "open")])
    for format_name in _FORMATS:
        small = storage[(NODE_COUNTS[0], format_name)]
        large = storage[(NODE_COUNTS[-1], format_name)]
        scale = NODE_COUNTS[-1] / NODE_COUNTS[0]
        shape_check(f"{format_name}: storage grows roughly linearly with cluster size",
                    0.6 * scale < large / small < 1.6 * scale)


_OVERLAP_THROTTLE = 40.0


def _figure25b():
    """Background vs synchronous ingest on the 2-node (4-partition) cluster,
    with device latency realism on *during* the feed."""
    results = {}
    for label, background, per_partition in (("synchronous", False, False),
                                             ("background", True, True)):
        cluster, report = build_cluster(
            2, "inferred", ingest_throttle=_OVERLAP_THROTTLE,
            background_maintenance=background, per_partition_ingest=per_partition,
            memory_budget=24 * 1024)
        results[label] = (cluster, report)
    rows = [{"Mode": label, "Ingest threads": report.ingest_threads,
             "Ingest wall (s)": report.wall_seconds,
             # Device time the async lifecycle moved off the ingest path
             # (tagged by the maintenance workers; 0 in synchronous mode).
             "Maintenance I/O (s)": sum(node.maintenance_io_seconds()
                                        for node in cluster.nodes),
             **lifecycle_columns(report)}
            for label, (cluster, report) in results.items()]
    return rows, results


def test_fig25b_background_ingest_overlap(benchmark):
    rows, results = benchmark.pedantic(_figure25b, rounds=1, iterations=1)
    print_table("Figure 25b — scale-out feed: background LSM lifecycle vs "
                f"synchronous (SATA realism x{_OVERLAP_THROTTLE})", rows)
    sync_cluster, sync_report = results["synchronous"]
    bg_cluster, bg_report = results["background"]
    benchmark.extra_info["wall_seconds"] = {
        "synchronous": sync_report.wall_seconds, "background": bg_report.wall_seconds}
    shape_check("background flush/merge with per-partition ingest beats the "
                "synchronous sequential pipeline on wall time",
                bg_report.wall_seconds < sync_report.wall_seconds * 0.8)
    shape_check("background maintenance device traffic is tagged per node",
                sum(node.maintenance_io_seconds() for node in bg_cluster.nodes) > 0.0
                and all(node.maintenance_io_seconds() == 0.0
                        for node in sync_cluster.nodes))
    sync_rows = sorted(row["id"] for row in sync_cluster.dataset("tweets").scan())
    bg_rows = sorted(row["id"] for row in bg_cluster.dataset("tweets").scan())
    shape_check("post-ingest row sets are identical across modes", sync_rows == bg_rows)
    bg_cluster.close()
