"""Figure 25 — scale-out storage size and ingestion time.

The paper scales the Twitter workload proportionally with the cluster size
(4/8/16/32 EC2 nodes, compressed datasets only) and shows per-configuration
totals growing linearly: the inferred dataset keeps the lowest storage
footprint and the highest ingest rate at every cluster size.

The cluster simulator runs every node in one process, so the node counts are
scaled down (1/2/4) and the checked shapes are: (i) total storage grows
roughly linearly with node count (data volume is proportional), (ii) at
every cluster size the storage ordering inferred < closed < open holds, and
(iii) the per-node write volume stays roughly constant — the "linear
scale-out" claim expressed in the substrate's faithful currency.
"""

from harness import mb, print_table, records_for, scale_factor, shape_check

from repro.cluster import ClusterSimulator, DataFeed
from repro.config import ClusterConfig, StorageConfig, StorageFormat
from repro.datasets import twitter

NODE_COUNTS = (1, 2, 4)
RECORDS_PER_NODE = max(150, int(400 * scale_factor()))
_FORMATS = {"open": StorageFormat.OPEN, "closed": StorageFormat.CLOSED,
            "inferred": StorageFormat.INFERRED}


def build_cluster(nodes: int, format_name: str, io_throttle: float = 0.0):
    """Build and ingest one scale-out cluster.

    ``io_throttle`` dials in the devices' latency realism *after* ingestion
    (so only queries pay real sleeps) — the Figure 26 query benchmark uses
    it to make parallel partition execution measurable in wall-clock time.
    """
    cluster = ClusterSimulator(
        ClusterConfig(node_count=nodes, partitions_per_node=2),
        StorageConfig(page_size=8 * 1024, buffer_cache_pages=2048, compression="snappy"),
    )
    datatype = None
    if format_name == "closed":
        from harness import closed_datatype_for

        datatype = closed_datatype_for("twitter", records_for("twitter", RECORDS_PER_NODE))
    dataset = cluster.create_dataset("tweets", _FORMATS[format_name], datatype=datatype)
    feed = DataFeed(dataset)
    report = feed.run(twitter.generate(RECORDS_PER_NODE * nodes))
    feed.close()
    if io_throttle:
        cluster.set_io_throttle(io_throttle)
    return cluster, report


def _figure25():
    rows = []
    storage = {}
    for nodes in NODE_COUNTS:
        for format_name in _FORMATS:
            cluster, report = build_cluster(nodes, format_name)
            total = cluster.total_storage_size()
            storage[(nodes, format_name)] = total
            rows.append({"Nodes": nodes, "Format": format_name,
                         "Records": RECORDS_PER_NODE * nodes,
                         "Total size (MB)": mb(total),
                         "Per-node size (MB)": mb(total / nodes),
                         "Ingest wall (s)": report.wall_seconds,
                         "Simulated write I/O (s)": report.simulated_io_seconds})
    return rows, storage


def test_fig25_scaleout_storage_and_ingest(benchmark):
    rows, storage = benchmark.pedantic(_figure25, rounds=1, iterations=1)
    print_table("Figure 25 — scale-out storage and ingestion (compressed datasets)", rows)
    for nodes in NODE_COUNTS:
        shape_check(f"{nodes} nodes: inferred < closed < open storage",
                    storage[(nodes, "inferred")] < storage[(nodes, "closed")] < storage[(nodes, "open")])
    for format_name in _FORMATS:
        small = storage[(NODE_COUNTS[0], format_name)]
        large = storage[(NODE_COUNTS[-1], format_name)]
        scale = NODE_COUNTS[-1] / NODE_COUNTS[0]
        shape_check(f"{format_name}: storage grows roughly linearly with cluster size",
                    0.6 * scale < large / small < 1.6 * scale)
