"""Benchmark-suite fixtures.

Every benchmark run exports the engine's metrics-registry activity into
``benchmark.extra_info["metrics"]``: an autouse fixture snapshots the
process-wide registry before the test, diffs it afterwards, and attaches
the :func:`harness.metrics_summary` of the delta (cache hit rate,
write amplification, ingest stall seconds, plus every raw counter/gauge/
histogram).  The saved-JSON consumers in EXPERIMENTS.md read the same
numbers the engine's own observability layer reports — no parallel
bookkeeping in the bench modules.

The same fixture also feeds the **trajectory artifacts**: at session end,
every figure module that ran gets a machine-readable ``BENCH_<figure>.json``
in the working directory (per-test wall-time stats + the metrics summary),
which CI's bench-smoke job uploads so perf trajectories can be compared
across commits.
"""

import json
import re
import time

import pytest
from harness import metrics_summary, scale_factor

from repro.obs import get_registry, metrics_delta

#: Per-figure trajectory data accumulated across the session, keyed by the
#: figure id parsed out of the module name (``bench_fig18_...`` -> "fig18").
_trajectories = {}

_FIGURE_RE = re.compile(r"bench_([a-z0-9]+)_")


def _wall_stats(benchmark):
    """Defensive read of pytest-benchmark's timing stats (may be absent when
    a test failed before its benchmarked callable ran)."""
    try:
        stats = benchmark.stats.stats
        return {
            "min_seconds": stats.min,
            "max_seconds": stats.max,
            "mean_seconds": stats.mean,
            "stddev_seconds": stats.stddev,
            "rounds": stats.rounds,
        }
    except (AttributeError, TypeError):
        return None


@pytest.fixture(autouse=True)
def _bench_metrics(request):
    # Resolve the benchmark fixture *before* yielding: during teardown it has
    # already been finalised and getfixturevalue() would refuse to serve it.
    benchmark = (request.getfixturevalue("benchmark")
                 if "benchmark" in request.fixturenames else None)
    registry = get_registry()
    before = registry.snapshot()
    yield
    if benchmark is None:
        return
    summary = metrics_summary(metrics_delta(registry.snapshot(), before))
    benchmark.extra_info["metrics"] = summary
    match = _FIGURE_RE.match(request.node.module.__name__)
    if match is None:
        return
    entry = {"wall": _wall_stats(benchmark), "metrics_summary": summary}
    _trajectories.setdefault(match.group(1), {})[request.node.name] = entry


def pytest_sessionfinish(session, exitstatus):
    for figure, tests in _trajectories.items():
        artifact = {
            "figure": figure,
            "scale": scale_factor(),
            "created_unix": time.time(),
            "exit_status": int(exitstatus),
            "tests": tests,
        }
        with open(f"BENCH_{figure}.json", "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
