"""Benchmark-suite fixtures.

Every benchmark run exports the engine's metrics-registry activity into
``benchmark.extra_info["metrics"]``: an autouse fixture snapshots the
process-wide registry before the test, diffs it afterwards, and attaches
the :func:`harness.metrics_summary` of the delta (cache hit rate,
write amplification, ingest stall seconds, plus every raw counter/gauge/
histogram).  The saved-JSON consumers in EXPERIMENTS.md read the same
numbers the engine's own observability layer reports — no parallel
bookkeeping in the bench modules.
"""

import pytest
from harness import metrics_summary

from repro.obs import get_registry, metrics_delta


@pytest.fixture(autouse=True)
def _bench_metrics(request):
    # Resolve the benchmark fixture *before* yielding: during teardown it has
    # already been finalised and getfixturevalue() would refuse to serve it.
    benchmark = (request.getfixturevalue("benchmark")
                 if "benchmark" in request.fixturenames else None)
    registry = get_registry()
    before = registry.snapshot()
    yield
    if benchmark is not None:
        benchmark.extra_info["metrics"] = metrics_summary(
            metrics_delta(registry.snapshot(), before))
