"""Table 1 — dataset summary statistics.

Reproduces the structural summary of the three evaluation datasets (source,
record count, record size, scalar-value counts, nesting depth, dominant
type, union types).  Absolute sizes are scaled down (see
``harness.SCALES``); the structural columns — depth, dominant type, union
types, name-heavy Sensors records — are the ones that must match the paper,
because they drive every other experiment.
"""

from harness import GENERATORS, SCALES, print_table, records_for, shape_check

from repro.datasets import dataset_statistics

#: The paper's Table 1 rows (for side-by-side printing).
PAPER_TABLE1 = {
    "twitter": {"Dominant Type": "String", "Max. Depth": 8, "Union Type?": "No"},
    "wos": {"Dominant Type": "String", "Max. Depth": 7, "Union Type?": "Yes"},
    "sensors": {"Dominant Type": "Double", "Max. Depth": 3, "Union Type?": "No"},
}


def _table1_rows():
    rows = []
    for name in ("twitter", "wos", "sensors"):
        stats = dataset_statistics(records_for(name))
        row = {"Dataset": name.title()}
        row.update(stats.as_row())
        row["Paper dominant type"] = PAPER_TABLE1[name]["Dominant Type"]
        row["Paper union?"] = PAPER_TABLE1[name]["Union Type?"]
        rows.append((row, stats))
    return rows


def test_table1_dataset_summary(benchmark):
    rows_with_stats = benchmark.pedantic(_table1_rows, rounds=1, iterations=1)
    rows = [row for row, _ in rows_with_stats]
    print_table("Table 1 — dataset summary (scaled-down reproduction)", rows)

    by_name = {row["Dataset"].lower(): stats for (row, stats) in rows_with_stats}
    shape_check("Twitter is string-dominant", by_name["twitter"].dominant_type == "String")
    shape_check("WoS is string-dominant", by_name["wos"].dominant_type == "String")
    shape_check("WoS carries union-typed values", by_name["wos"].has_union_types)
    shape_check("Sensors is double-dominant", by_name["sensors"].dominant_type == "Double")
    shape_check("Sensors is the shallowest dataset",
                by_name["sensors"].max_depth <= min(by_name["twitter"].max_depth,
                                                    by_name["wos"].max_depth))
    shape_check("WoS records are the largest on average",
                by_name["wos"].avg_record_bytes > by_name["twitter"].avg_record_bytes)


def test_table1_generator_throughput(benchmark):
    """Generator throughput (records/second) — sanity benchmark for the harness."""

    def generate_once():
        return sum(1 for _ in GENERATORS["twitter"].generate(SCALES["twitter"]))

    count = benchmark(generate_once)
    assert count == SCALES["twitter"]
