"""Figure 20 — query execution time, Sensors dataset (Q1–Q4).

Q1 counts readings, Q2 computes global min/max reading values, Q3 ranks
sensors by average reading, and Q4 repeats Q3 over a single day (a highly
selective predicate).  The paper's findings: Q1 tracks storage size; Q2/Q3
show the benefit of consolidating and pushing field accesses down through
the UNNEST (evaluated head-on in Figure 23); and Q4 is the case where
pushdown can *hurt*, because the consolidated accesses are evaluated before
the highly selective filter.

Here, in addition to the storage-driven I/O checks shared with Figures
18/19, the Q4-vs-Q3 interaction is checked on measured CPU time: disabling
the pushdown must make Q3 slower while making (or leaving) the highly
selective Q4 no worse, which is the crossover the paper reports.
"""

from harness import (
    batch_row_comparison,
    check_batch_engages,
    build_dataset,
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    print_table,
    query_figure,
    run_query,
    shape_check,
)

from repro.datasets import sensors

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig20_sensors_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("sensors"),
                                            rounds=1, iterations=1)
    print_table("Figure 20 — Sensors Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("sensors", measurements, QUERY_NAMES)
    check_compression_reduces_io("sensors", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    check_sqlpp_parity("sensors", QUERY_NAMES)


def test_fig20_batch_vs_row(benchmark):
    """Batch-vs-row over Sensors: the pushed-down UNNEST queries vectorize.

    Q2–Q4 all unnest ``readings`` through the pushdown, so their item-field
    accesses become flattened columns and run batch; Q1 counts over an UNNEST
    whose items are never accessed, which the batch planner declines (no item
    paths to push), so it must transparently fall back to row mode with
    identical results.
    """
    rows, measurements = benchmark.pedantic(
        lambda: batch_row_comparison("sensors", QUERY_NAMES),
        rounds=1, iterations=1)
    print_table("Figure 20 (detail) — batch vs row execution, inferred format "
                "(hot cache, best of 3)", rows)
    check_batch_engages("sensors", measurements, ("Q2", "Q3", "Q4"))
    shape_check("sensors Q1: batch planner reports a fallback reason",
                measurements["Q1"]["mode"] == "row"
                and measurements["Q1"]["fallback"] is not None)


def test_fig20_selective_q4_interaction(benchmark):
    """Q3 benefits from pushdown; highly selective Q4 does not (paper §4.4.3)."""

    def run():
        built = build_dataset("sensors", "inferred")
        timings = {}
        for query_name in ("Q3", "Q4"):
            spec = sensors.QUERIES[query_name]()
            optimized = run_query(built, spec, consolidate=True, pushdown=True)
            unoptimized = run_query(built, spec, consolidate=False, pushdown=False)
            timings[query_name] = (optimized.stats.wall_seconds, unoptimized.stats.wall_seconds)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    q3_optimized, q3_unoptimized = timings["Q3"]
    q4_optimized, q4_unoptimized = timings["Q4"]
    print_table("Figure 20 (detail) — pushdown interaction with selectivity", [
        {"Query": "Q3", "Optimized CPU (s)": q3_optimized, "Un-optimized CPU (s)": q3_unoptimized},
        {"Query": "Q4", "Optimized CPU (s)": q4_optimized, "Un-optimized CPU (s)": q4_unoptimized},
    ])
    shape_check("Q3 is faster with consolidation+pushdown", q3_optimized < q3_unoptimized)
    # Deviation note (see EXPERIMENTS.md): the paper observes that the highly
    # selective Q4 can become *slower* with pushdown, because the consolidated
    # accesses run before the filter.  In this substrate the un-optimized plan
    # pays linear per-item scans for the WHERE fields too, so Q4 still gains
    # from consolidation; the gains are printed above rather than asserted.
