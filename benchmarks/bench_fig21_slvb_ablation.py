"""Figure 21 — ablation: where do the storage savings come from?

The paper separates the inferred configuration's savings into (i) the
vector-based *encoding* (no per-nested-value offsets) and (ii) the tuple
compactor's *compaction* (field names moved into the schema), by measuring a
schema-less vector-based configuration (SL-VB) that uses the encoding but
not the compaction.  Expected shape: SL-VB sits between open and inferred —
smaller than open, larger than inferred — and for the Sensors dataset SL-VB
already beats closed (the offsets are the dominant overhead there), which is
paper Figure 21b.
"""

from harness import build_dataset, mb, print_table, shape_check


def _figure21(workload: str):
    sizes = {format_name: build_dataset(workload, format_name).storage_size
             for format_name in ("open", "closed", "inferred", "sl-vb")}
    rows = [{"Configuration": name, "Size (MB)": mb(size)} for name, size in sizes.items()]
    return sizes, rows


def test_fig21a_twitter_slvb(benchmark):
    sizes, rows = benchmark.pedantic(lambda: _figure21("twitter"), rounds=1, iterations=1)
    print_table("Figure 21a — Twitter: impact of the vector-based format alone", rows)
    shape_check("twitter: SL-VB is smaller than open", sizes["sl-vb"] < sizes["open"])
    shape_check("twitter: SL-VB is larger than inferred (compaction adds savings)",
                sizes["sl-vb"] > sizes["inferred"])
    encoding_share = (sizes["open"] - sizes["sl-vb"]) / (sizes["open"] - sizes["inferred"])
    shape_check("twitter: both the encoding and the compaction contribute materially",
                0.15 < encoding_share < 0.85)


def test_fig21b_sensors_slvb(benchmark):
    sizes, rows = benchmark.pedantic(lambda: _figure21("sensors"), rounds=1, iterations=1)
    print_table("Figure 21b — Sensors: impact of the vector-based format alone", rows)
    shape_check("sensors: SL-VB is smaller than open", sizes["sl-vb"] < sizes["open"])
    shape_check("sensors: SL-VB is larger than inferred", sizes["sl-vb"] > sizes["inferred"])
    # Paper Figure 21b additionally shows SL-VB dipping below *closed* for Sensors,
    # because AsterixDB's ADM format spends 4 bytes of offset on every nested value.
    # This reproduction's ADM encoding has a lower per-value overhead, so SL-VB lands
    # next to closed instead of below it; the check asserts the closeness (and the
    # deviation is recorded in EXPERIMENTS.md).
    shape_check("sensors: SL-VB is at least close to the closed size",
                sizes["sl-vb"] < 1.25 * sizes["closed"])
