"""Figure 23 — ablation: field-access consolidation and pushdown.

Repeats the Sensors Q2–Q4 queries against (i) the closed dataset, (ii) the
inferred dataset with the optimizer rewrites enabled, and (iii) the inferred
dataset with them disabled ("Inferred (un-op)" in the paper).  Without the
rewrites every field access re-scans the record's vectors and the UNNEST
materializes whole reading objects, so Q2/Q3 take roughly twice as long —
which is the shape checked here on measured CPU time (this is a pure CPU
effect, so it transfers to the Python substrate directly).
"""

from harness import build_dataset, print_table, run_query, shape_check

from repro.datasets import sensors

QUERY_NAMES = ("Q2", "Q3", "Q4")


def _figure23():
    closed = build_dataset("sensors", "closed")
    inferred = build_dataset("sensors", "inferred")
    rows = []
    timings = {}
    for query_name in QUERY_NAMES:
        spec = sensors.QUERIES[query_name]()
        closed_result = run_query(closed, spec)
        optimized = run_query(inferred, spec, consolidate=True, pushdown=True)
        unoptimized = run_query(inferred, spec, consolidate=False, pushdown=False)
        assert optimized.rows == unoptimized.rows
        timings[query_name] = {
            "closed": closed_result.stats.wall_seconds,
            "inferred": optimized.stats.wall_seconds,
            "inferred (un-op)": unoptimized.stats.wall_seconds,
        }
        rows.append({"Query": query_name,
                     "Closed CPU (s)": timings[query_name]["closed"],
                     "Inferred CPU (s)": timings[query_name]["inferred"],
                     "Inferred un-op CPU (s)": timings[query_name]["inferred (un-op)"]})
    return rows, timings


def test_fig23_consolidation_and_pushdown(benchmark):
    rows, timings = benchmark.pedantic(_figure23, rounds=1, iterations=1)
    print_table("Figure 23 — consolidating/pushing down field accesses (Sensors)", rows)
    # Q3 is the query with several field accesses per unnested item (sensor id,
    # reading value, and the grouping key), so it shows the clearest penalty when
    # the rewrites are disabled.  Q2 touches a single nested path, so at this
    # scale its gain can disappear into noise; it is printed but not asserted.
    shape_check("Q3: disabling the rewrites slows the inferred dataset down",
                timings["Q3"]["inferred (un-op)"] > timings["Q3"]["inferred"] * 1.25)
    total_optimized = sum(timings[name]["inferred"] for name in ("Q2", "Q3"))
    total_unoptimized = sum(timings[name]["inferred (un-op)"] for name in ("Q2", "Q3"))
    shape_check("overall, un-optimized access costs noticeably more (paper: ~2x)",
                total_unoptimized / total_optimized > 1.10)
