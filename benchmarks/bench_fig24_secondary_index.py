"""Figure 24 — range queries through a secondary index, by selectivity.

The paper adds a monotonically increasing ``timestamp`` to the tweets,
builds a secondary index on it, and runs range queries of selectivities
0.001 %–50 % against the open, closed, and inferred datasets (uncompressed
and compressed).  Finding: execution times correlate with the primary
index's storage size — fetching the matching records from a smaller primary
index costs less I/O — and pre-declaring the schema is *not* required for
the gain (inferred ≤ closed).

Unlike the seed version of this module (which called
``Partition.secondary_range_search`` directly), the range queries now run
through ``Dataset.query()`` as SQL++ text, so the *optimizer* decides the
access path: at low selectivity its cost model must route the predicate
through the secondary index (IndexProbe), and at 50 % it must fall back to
the sequential scan.  Shape checks use bytes read through the buffer cache
(the faithful I/O proxy): the cost-based index path at selectivity 0.001
reads strictly less than a forced full scan, selective probes read far less
than 50 % scans, and at scan-bound selectivities the byte counts follow
inferred ≤ closed ≤ open.
"""

from harness import build_dataset, print_table, records_for, shape_check

SELECTIVITIES = (0.001, 0.01, 0.10, 0.50)  # fractions of the dataset
_INDEX = ("by_timestamp", ("timestamp_ms",))


def _range_for(selectivity: float):
    records = records_for("twitter")
    timestamps = sorted(record["timestamp_ms"] for record in records)
    span = max(1, int(len(timestamps) * selectivity))
    low = timestamps[0]
    high = timestamps[min(span, len(timestamps) - 1)]
    return low, high, span


def _query_text(low, high) -> str:
    return (f"SELECT VALUE t.id FROM Tweets AS t "
            f"WHERE t.timestamp_ms >= {low} AND t.timestamp_ms <= {high}")


def _run(built, low, high, access_path: str):
    """One cold range query through Dataset.query(); returns (row ids, stats)."""
    result = built.dataset.query(_query_text(low, high), cold_cache=True,
                                 access_path=access_path)
    return sorted(row["value"] for row in result.rows), result.stats


def _figure24(compression):
    rows = []
    measurements = {}
    for format_name in ("open", "closed", "inferred"):
        built = build_dataset("twitter", format_name, compression=compression,
                              secondary_index=_INDEX)
        for selectivity in SELECTIVITIES:
            low, high, _expected = _range_for(selectivity)
            ids, stats = _run(built, low, high, "auto")
            _scan_ids, scan_stats = _run(built, low, high, "scan")
            measurements[(format_name, selectivity)] = {
                "bytes_read": stats.bytes_read,
                "scan_bytes_read": scan_stats.bytes_read,
                "rows": len(ids),
                "scan_rows": len(_scan_ids),
                "ids_match_scan": ids == _scan_ids,
                "access_path": stats.access_path,
                "index_name": stats.index_name,
            }
            rows.append({"Format": format_name, "Compression": compression or "none",
                         "Selectivity": f"{selectivity:.3%}",
                         "Access path": stats.access_path,
                         "Rows": len(ids), "Bytes read": stats.bytes_read,
                         "Scan bytes": scan_stats.bytes_read})
    return rows, measurements


def _check(measurements):
    lowest, highest = SELECTIVITIES[0], SELECTIVITIES[-1]
    for selectivity in SELECTIVITIES:
        row_counts = {measurements[(fmt, selectivity)]["rows"]
                      for fmt in ("open", "closed", "inferred")}
        shape_check(f"{selectivity:.3%}: all formats return the same rows", len(row_counts) == 1)
    for format_name in ("open", "closed", "inferred"):
        for selectivity in SELECTIVITIES:
            measurement = measurements[(format_name, selectivity)]
            shape_check(f"{format_name} {selectivity:.3%}: cost-based path matches forced scan",
                        measurement["ids_match_scan"])
        low_measurement = measurements[(format_name, lowest)]
        shape_check(f"{format_name}: optimizer chose IndexProbe at {lowest:.3%}",
                    low_measurement["access_path"] == "IndexProbe"
                    and low_measurement["index_name"] == _INDEX[0])
        shape_check(f"{format_name}: optimizer falls back to FullScan at {highest:.3%}",
                    measurements[(format_name, highest)]["access_path"] == "FullScan")
        shape_check(f"{format_name}: index path at {lowest:.3%} reads strictly fewer bytes "
                    "than a forced full scan",
                    low_measurement["bytes_read"] < low_measurement["scan_bytes_read"])
        shape_check(f"{format_name}: selective probes read far less than 50% scans",
                    low_measurement["bytes_read"]
                    < 0.5 * measurements[(format_name, highest)]["bytes_read"])
    # The paper's size correlation holds at every selectivity — on the probe
    # path (smaller primary index -> cheaper record fetches) as well as the
    # scan path.  The 1.1 fudge absorbs page-granularity noise on the tiny
    # probe byte counts.
    for selectivity in SELECTIVITIES:
        open_bytes = measurements[("open", selectivity)]["bytes_read"]
        closed_bytes = measurements[("closed", selectivity)]["bytes_read"]
        inferred_bytes = measurements[("inferred", selectivity)]["bytes_read"]
        shape_check(f"{selectivity:.3%}: bytes read follow inferred <= closed <= open",
                    inferred_bytes <= closed_bytes * 1.1 and closed_bytes <= open_bytes * 1.1)


def test_fig24_uncompressed(benchmark):
    rows, measurements = benchmark.pedantic(lambda: _figure24(None), rounds=1, iterations=1)
    print_table("Figure 24a/b — secondary-index range queries (uncompressed)", rows)
    _check(measurements)


def test_fig24_compressed(benchmark):
    rows, measurements = benchmark.pedantic(lambda: _figure24("snappy"), rounds=1, iterations=1)
    print_table("Figure 24c/d — secondary-index range queries (compressed)", rows)
    _check(measurements)
