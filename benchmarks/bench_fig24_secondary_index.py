"""Figure 24 — range queries through a secondary index, by selectivity.

The paper adds a monotonically increasing ``timestamp`` to the tweets,
builds a secondary index on it, and runs range queries of selectivities
0.001 %–50 % against the open, closed, and inferred datasets (uncompressed
and compressed).  Finding: execution times correlate with the primary
index's storage size — fetching the matching records from a smaller primary
index costs less I/O — and pre-declaring the schema is *not* required for
the gain (inferred ≤ closed).

The tweets' ``timestamp_ms`` field is already monotonic in the generator, so
this module indexes it directly.  Shape checks use bytes read through the
buffer cache (the faithful I/O proxy): for every selectivity, inferred reads
no more than closed, which reads no more than open; and low-selectivity
probes read far less than high-selectivity ones.
"""

from harness import SCALES, build_dataset, print_table, records_for, shape_check

SELECTIVITIES = (0.001, 0.01, 0.10, 0.50)  # fractions of the dataset
_INDEX = ("by_timestamp", ("timestamp_ms",))


def _range_for(selectivity: float):
    records = records_for("twitter")
    timestamps = sorted(record["timestamp_ms"] for record in records)
    span = max(1, int(len(timestamps) * selectivity))
    low = timestamps[0]
    high = timestamps[min(span, len(timestamps) - 1)]
    return low, high, span


def _figure24(compression):
    rows = []
    measurements = {}
    for format_name in ("open", "closed", "inferred"):
        built = build_dataset("twitter", format_name, compression=compression,
                              secondary_index=_INDEX)
        for selectivity in SELECTIVITIES:
            low, high, expected = _range_for(selectivity)
            built.environment.drop_caches()
            before = built.environment.device.snapshot()
            results = built.dataset.secondary_range_search(_INDEX[0], low, high)
            delta = built.environment.device.stats.diff(before)
            measurements[(format_name, selectivity)] = {
                "bytes_read": delta.bytes_read,
                "rows": len(results),
            }
            rows.append({"Format": format_name, "Compression": compression or "none",
                         "Selectivity": f"{selectivity:.3%}",
                         "Rows": len(results), "Bytes read": delta.bytes_read})
    return rows, measurements


def _check(measurements):
    for selectivity in SELECTIVITIES:
        row_counts = {measurements[(fmt, selectivity)]["rows"]
                      for fmt in ("open", "closed", "inferred")}
        shape_check(f"{selectivity:.3%}: all formats return the same rows", len(row_counts) == 1)
        open_bytes = measurements[("open", selectivity)]["bytes_read"]
        closed_bytes = measurements[("closed", selectivity)]["bytes_read"]
        inferred_bytes = measurements[("inferred", selectivity)]["bytes_read"]
        shape_check(f"{selectivity:.3%}: bytes read follow inferred <= closed <= open",
                    inferred_bytes <= closed_bytes * 1.1 and closed_bytes <= open_bytes * 1.1)
    for format_name in ("open", "closed", "inferred"):
        shape_check(f"{format_name}: selective probes read far less than 50% scans",
                    measurements[(format_name, 0.001)]["bytes_read"]
                    < 0.5 * measurements[(format_name, 0.50)]["bytes_read"])


def test_fig24_uncompressed(benchmark):
    rows, measurements = benchmark.pedantic(lambda: _figure24(None), rounds=1, iterations=1)
    print_table("Figure 24a/b — secondary-index range queries (uncompressed)", rows)
    _check(measurements)


def test_fig24_compressed(benchmark):
    rows, measurements = benchmark.pedantic(lambda: _figure24("snappy"), rounds=1, iterations=1)
    print_table("Figure 24c/d — secondary-index range queries (compressed)", rows)
    _check(measurements)
