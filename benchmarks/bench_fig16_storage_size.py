"""Figure 16 — on-disk storage size after ingestion (a: Twitter, b: WoS, c: Sensors).

For each dataset the paper compares the total on-disk size of the *open*,
*closed*, and *inferred* configurations, uncompressed and with Snappy page
compression, plus MongoDB's compressed collection size as an external
reference.  Here MongoDB is represented by a BSON-like encoding of the same
records compressed with the same page codec (see DESIGN.md substitutions).

Expected shapes (checked below):
* inferred <= closed < open, per dataset;
* compression shrinks every configuration, open the most;
* compressed open ~ compressed BSON/MongoDB;
* the Sensors dataset shows the largest open-to-inferred ratio (the paper
  reports ~4.3x) because of its tiny reading objects.
"""

import zlib

from harness import build_dataset, mb, print_table, records_for, shape_check

from repro.formats import encode_document

_PAGE = 8 * 1024


def _bson_sizes(workload: str):
    """MongoDB-like collection size: BSON documents, raw and page-compressed."""
    raw = 0
    compressed = 0
    page = bytearray()
    for record in records_for(workload):
        payload = encode_document(record)
        raw += len(payload)
        page += payload
        while len(page) >= _PAGE:
            compressed += len(zlib.compress(bytes(page[:_PAGE]), 1))
            del page[:_PAGE]
    if page:
        compressed += len(zlib.compress(bytes(page), 1))
    return raw, compressed


def _figure16(workload: str):
    sizes = {}
    for format_name in ("open", "closed", "inferred"):
        for compression in (None, "snappy"):
            built = build_dataset(workload, format_name, compression=compression)
            sizes[(format_name, compression)] = built.storage_size
    bson_raw, bson_compressed = _bson_sizes(workload)
    rows = []
    for format_name in ("open", "closed", "inferred"):
        rows.append({
            "Configuration": format_name,
            "Uncompressed (MB)": mb(sizes[(format_name, None)]),
            "Compressed (MB)": mb(sizes[(format_name, "snappy")]),
        })
    rows.append({"Configuration": "MongoDB (BSON-like)",
                 "Uncompressed (MB)": mb(bson_raw),
                 "Compressed (MB)": mb(bson_compressed)})
    return sizes, rows, bson_compressed


def _check_shapes(workload: str, sizes, bson_compressed: int) -> None:
    open_raw = sizes[("open", None)]
    closed_raw = sizes[("closed", None)]
    inferred_raw = sizes[("inferred", None)]
    shape_check(f"{workload}: inferred <= closed", inferred_raw <= closed_raw * 1.05)
    shape_check(f"{workload}: closed < open", closed_raw < open_raw)
    shape_check(f"{workload}: inferred < open", inferred_raw < open_raw)
    for format_name in ("open", "closed", "inferred"):
        shape_check(f"{workload}: compression shrinks {format_name}",
                    sizes[(format_name, "snappy")] < sizes[(format_name, None)])
    shape_check(f"{workload}: compressed open within 2x of compressed MongoDB-like size",
                0.5 < sizes[("open", "snappy")] / bson_compressed < 2.5)


def test_fig16a_twitter_storage(benchmark):
    sizes, rows, bson = benchmark.pedantic(lambda: _figure16("twitter"), rounds=1, iterations=1)
    print_table("Figure 16a — Twitter on-disk size", rows)
    _check_shapes("twitter", sizes, bson)


def test_fig16b_wos_storage(benchmark):
    sizes, rows, bson = benchmark.pedantic(lambda: _figure16("wos"), rounds=1, iterations=1)
    print_table("Figure 16b — WoS on-disk size", rows)
    _check_shapes("wos", sizes, bson)


def test_fig16c_sensors_storage(benchmark):
    sizes, rows, bson = benchmark.pedantic(lambda: _figure16("sensors"), rounds=1, iterations=1)
    print_table("Figure 16c — Sensors on-disk size", rows)
    _check_shapes("sensors", sizes, bson)
    # The Sensors dataset shows the largest semantic win (paper: ~4.3x open->inferred;
    # here the per-reading objects are bigger relative to their names, so the ratio is
    # smaller in absolute terms but the *direction* — sensors benefits most from the
    # vector-based encoding, and inferred clearly beats closed — still holds).
    ratio = sizes[("open", None)] / sizes[("inferred", None)]
    shape_check("sensors: open is much larger than inferred", ratio > 1.6)
    shape_check("sensors: inferred is clearly smaller than closed",
                sizes[("inferred", None)] < 0.85 * sizes[("closed", None)])


def test_fig16_combined_reduction(benchmark):
    """Paper §4.2 conclusion: combined (semantic + syntactic) reduction vs open."""

    def combined():
        rows = []
        for workload in ("twitter", "wos", "sensors"):
            open_raw = build_dataset(workload, "open").storage_size
            both = build_dataset(workload, "inferred", compression="snappy").storage_size
            rows.append({"Dataset": workload, "Open (MB)": mb(open_raw),
                         "Inferred+compressed (MB)": mb(both),
                         "Reduction factor": open_raw / both})
        return rows

    rows = benchmark.pedantic(combined, rounds=1, iterations=1)
    print_table("Figure 16 / §4.2 — combined reduction vs open", rows)
    for row in rows:
        shape_check(f"{row['Dataset']}: combined approaches reduce storage by >2x",
                    row["Reduction factor"] > 2.0)
