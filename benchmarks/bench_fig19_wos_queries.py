"""Figure 19 — query execution time, Web-of-Science dataset (Q1–Q4).

Q1 counts publications, Q2 ranks subject categories, Q3 finds the countries
that co-publish most with US institutes, and Q4 ranks country pairs.  Q3 and
Q4 are the queries where the paper highlights field-access consolidation and
pushdown (the inferred dataset wins even against closed); the CPU side of
that effect is evaluated separately in the Figure 23 ablation, while this
module checks the storage-driven I/O ordering and result equivalence across
configurations.
"""

from harness import (
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    print_table,
    query_figure,
)

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig19_wos_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("wos"),
                                            rounds=1, iterations=1)
    print_table("Figure 19 — WoS Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("wos", measurements, QUERY_NAMES)
    check_compression_reduces_io("wos", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    check_sqlpp_parity("wos", QUERY_NAMES)
