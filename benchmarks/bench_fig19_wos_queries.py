"""Figure 19 — query execution time, Web-of-Science dataset (Q1–Q4).

Q1 counts publications, Q2 ranks subject categories, Q3 finds the countries
that co-publish most with US institutes, and Q4 ranks country pairs.  Q3 and
Q4 are the queries where the paper highlights field-access consolidation and
pushdown (the inferred dataset wins even against closed); the CPU side of
that effect is evaluated separately in the Figure 23 ablation, while this
module checks the storage-driven I/O ordering and result equivalence across
configurations.
"""

from harness import (
    batch_row_comparison,
    check_batch_engages,
    check_compression_reduces_io,
    check_io_correlates_with_storage,
    check_results_agree,
    check_sqlpp_parity,
    print_table,
    query_figure,
    shape_check,
)

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def test_fig19_wos_queries(benchmark):
    rows, measurements = benchmark.pedantic(lambda: query_figure("wos"),
                                            rounds=1, iterations=1)
    print_table("Figure 19 — WoS Q1-Q4 (CPU + simulated I/O per device)", rows)
    check_io_correlates_with_storage("wos", measurements, QUERY_NAMES)
    check_compression_reduces_io("wos", measurements, QUERY_NAMES)
    check_results_agree(measurements, QUERY_NAMES)
    check_sqlpp_parity("wos", QUERY_NAMES)


def test_fig19_batch_vs_row(benchmark):
    """Batch-vs-row over WoS: Q1/Q2 vectorize; Q3/Q4 exercise the fallback.

    Q3 and Q4 refer to the unnested item variable directly (not through a
    pushed-down field path), which the batch planner does not vectorize — the
    check here is that the fallback is *transparent*: the executor reports
    row mode with a reason and returns identical rows either way.
    """
    rows, measurements = benchmark.pedantic(
        lambda: batch_row_comparison("wos", QUERY_NAMES),
        rounds=1, iterations=1)
    print_table("Figure 19 (detail) — batch vs row execution, inferred format "
                "(hot cache, best of 3)", rows)
    check_batch_engages("wos", measurements, ("Q1", "Q2"))
    for query_name in ("Q3", "Q4"):
        shape_check(f"wos {query_name}: batch planner reports a fallback reason",
                    measurements[query_name]["mode"] == "row"
                    and measurements[query_name]["fallback"] is not None)
