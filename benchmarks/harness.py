"""Shared helpers for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper's
evaluation section (see DESIGN.md §3 for the index).  They all need the same
plumbing — building datasets in each storage configuration, running the
workload queries hot or cold, translating byte counts into simulated
SATA/NVMe seconds, and printing the rows/series the paper reports — which
lives here so the individual ``bench_*`` modules stay readable.

Scale note: the paper ingests 122–253 GB per dataset; the benchmarks default
to a few thousand records per dataset (see ``SCALES``) so the whole harness
finishes in minutes on a laptop.  The *shape* of each result (who wins, by
roughly what factor, where the crossovers are) is what EXPERIMENTS.md
compares against the paper, not absolute numbers.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import Dataset, DeviceKind, StorageEnvironment, StorageFormat
from repro.cluster import DataFeed, FeedReport
from repro.config import DEVICE_PROFILES
from repro.datasets import sensors, twitter, wos
from repro.query import ExecutionStats, QueryExecutor, QueryResult, QuerySpec
from repro.types import Datatype

#: Smallest supported value of ``REPRO_BENCH_SCALE``.  Below ~0.5 the
#: compressed datasets get so small that the access-path cost model
#: *correctly* prefers sequential scans even at 0.1% selectivity, so the
#: Figure 24 IndexProbe shape assertions fail spuriously — the checks would
#: be reporting a property of the shrunken data, not a regression.
MIN_BENCH_SCALE = 0.5

#: Multiplier applied to every scale below; the CI smoke job sets
#: ``REPRO_BENCH_SCALE=0.5`` so one benchmark module runs in seconds.
#: Values below :data:`MIN_BENCH_SCALE` are clamped with a warning.
_SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SCALE", "1") or "1")
if _SCALE_FACTOR < MIN_BENCH_SCALE:
    warnings.warn(
        f"REPRO_BENCH_SCALE={_SCALE_FACTOR} is below the supported floor "
        f"{MIN_BENCH_SCALE}: datasets that small flip the cost model to "
        "FullScan and spuriously fail the Figure 24 shape checks; clamping "
        f"to {MIN_BENCH_SCALE}.",
        stacklevel=1,
    )
    _SCALE_FACTOR = MIN_BENCH_SCALE


def scale_factor() -> float:
    """The effective (clamped) benchmark scale multiplier."""
    return _SCALE_FACTOR

#: Records per dataset used by the benchmarks (paper scale in comments).
SCALES = {
    "twitter": max(200, int(1200 * _SCALE_FACTOR)),   # paper: 77.6 M records / 200 GB
    "wos": max(100, int(600 * _SCALE_FACTOR)),        # paper: 39.4 M records / 253 GB
    "sensors": max(100, int(400 * _SCALE_FACTOR)),    # paper: 25 M records / 122 GB
}

GENERATORS = {"twitter": twitter, "wos": wos, "sensors": sensors}

#: Storage formats compared throughout the evaluation.
FORMATS = {
    "open": StorageFormat.OPEN,
    "closed": StorageFormat.CLOSED,
    "inferred": StorageFormat.INFERRED,
    "sl-vb": StorageFormat.SL_VB,
}

_PAGE_SIZE = 8 * 1024
_BUFFER_PAGES = 2048

_records_cache: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
_dataset_cache: Dict[Tuple, "BuiltDataset"] = {}


def records_for(name: str, count: Optional[int] = None) -> List[Dict[str, Any]]:
    """Generated records of one workload (cached across benchmark modules)."""
    count = count or SCALES[name]
    key = (name, count)
    if key not in _records_cache:
        _records_cache[key] = list(GENERATORS[name].generate(count))
    return _records_cache[key]


def closed_datatype_for(name: str, records: Sequence[Dict[str, Any]]) -> Datatype:
    """Fully declared datatype for the *closed* configuration of a workload.

    Built from the whole sample so that every field the generator can emit is
    declared.  Fields with heterogeneous types stay undeclared (typed ANY),
    because AsterixDB has no declared union type — the same concession the
    paper makes for the WoS closed configuration (§4.1).
    """
    return Datatype.from_records(f"{name}ClosedType", records, is_open=True, primary_key="id")


@dataclass
class BuiltDataset:
    """A dataset built for benchmarking, plus how it was built."""

    dataset: Dataset
    environment: StorageEnvironment
    storage_format: StorageFormat
    compression: Optional[str]
    ingest_report: Optional[FeedReport] = None
    ingest_wall_seconds: float = 0.0

    @property
    def storage_size(self) -> int:
        return self.dataset.storage_size()


def build_dataset(workload: str, format_name: str, compression: Optional[str] = None,
                  device: DeviceKind = DeviceKind.NVME_SSD, count: Optional[int] = None,
                  method: str = "insert", partitions: int = 1,
                  update_ratio: float = 0.0, secondary_index: Optional[Tuple[str, Tuple[str, ...]]] = None,
                  cache: bool = True) -> BuiltDataset:
    """Build (and optionally cache) one dataset in one storage configuration.

    ``method`` is "insert" (plain inserts + final flush), "feed" (data feed,
    optionally with updates), or "load" (bulk load).
    """
    key = (workload, format_name, compression, device, count, method, partitions,
           update_ratio, secondary_index)
    if cache and key in _dataset_cache:
        return _dataset_cache[key]

    records = records_for(workload, count)
    storage_format = FORMATS[format_name]
    datatype = None
    if storage_format is StorageFormat.CLOSED:
        datatype = closed_datatype_for(workload, records)
    environment = StorageEnvironment.for_device(device, compression=compression,
                                                page_size=_PAGE_SIZE,
                                                buffer_cache_pages=_BUFFER_PAGES)
    dataset = Dataset.create(f"{workload}_{format_name}_{compression or 'raw'}_{method}_{len(records)}",
                             storage_format, environment=environment, datatype=datatype,
                             partitions=partitions)
    if secondary_index is not None:
        dataset.create_secondary_index(*secondary_index)

    built = BuiltDataset(dataset, environment, storage_format, compression)
    started = time.perf_counter()
    if method == "insert":
        dataset.insert_all(records)
        dataset.flush_all()
    elif method == "feed":
        generator = GENERATORS[workload]
        update_generator = getattr(generator, "generate_update", None)
        if update_generator is not None and storage_format is StorageFormat.CLOSED:
            # A fully declared dataset cannot accept type-changing updates
            # (AsterixDB enforces declared types on insert), so restrict the
            # update mix to added/removed fields for the closed configuration.
            base_update = update_generator

            def update_generator(record, rng, _base=base_update):
                return _base(record, rng, allow_retype=False)
        feed = DataFeed(dataset, update_ratio=update_ratio, update_generator=update_generator)
        built.ingest_report = feed.run(records)
        feed.close()
    elif method == "load":
        dataset.bulk_load(records)
    else:
        raise ValueError(f"unknown build method {method!r}")
    built.ingest_wall_seconds = time.perf_counter() - started
    if cache:
        _dataset_cache[key] = built
    return built


# ---------------------------------------------------------------------------
# query execution helpers
# ---------------------------------------------------------------------------

def run_query(built: BuiltDataset, spec: QuerySpec, consolidate: bool = True,
              pushdown: bool = True, cold: bool = True) -> QueryResult:
    executor = QueryExecutor(consolidate_field_access=consolidate,
                             pushdown_through_unnest=pushdown, cold_cache=cold)
    return executor.execute(built.dataset, spec)


def simulated_device_seconds(stats: ExecutionStats, device: DeviceKind) -> float:
    """Convert a query's byte counts into seconds on a given device profile."""
    profile = DEVICE_PROFILES[device]
    return (stats.bytes_read / profile["read_bandwidth"]
            + stats.bytes_written / profile["write_bandwidth"])


def query_time(built: BuiltDataset, spec: QuerySpec, device: DeviceKind,
               consolidate: bool = True, pushdown: bool = True) -> Tuple[float, QueryResult]:
    """Headline query metric: CPU wall time + simulated I/O time on ``device``."""
    result = run_query(built, spec, consolidate=consolidate, pushdown=pushdown, cold=True)
    total = result.stats.wall_seconds + simulated_device_seconds(result.stats, device)
    return total, result


def batch_row_comparison(workload: str, query_names: Sequence[str],
                         format_name: str = "inferred",
                         repeats: int = 3) -> Tuple[List[Dict[str, Any]], Dict]:
    """Batch-vs-row execution comparison shared by the Figure 18/19/20 modules.

    Runs each workload query with a warm buffer cache in both execution modes,
    keeps the best of ``repeats`` wall-clock timings per mode (hot + best-of-N
    isolates the CPU cost the two modes differ in from I/O and scheduling
    noise), and checks that both modes return identical rows.  Returns
    printable rows plus a measurements dict per query: ``row_seconds``,
    ``batch_seconds``, ``speedup``, and the ``mode`` the executor actually
    used — "row" with a ``fallback`` reason when the batch planner declined
    the plan (UNNEST without pushdown etc.), which the figure modules assert
    on so a silent fallback cannot masquerade as a comparison.
    """
    built = build_dataset(workload, format_name)
    rows: List[Dict[str, Any]] = []
    measurements: Dict[str, Dict[str, Any]] = {}
    for query_name in query_names:
        make = GENERATORS[workload].QUERIES[query_name]
        timings: Dict[str, float] = {}
        result_rows: Dict[str, List] = {}
        engaged = fallback = None
        for mode in ("batch", "row"):
            executor = QueryExecutor(execution_mode=mode)
            executor.execute(built.dataset, make())  # warm the buffer cache
            best = None
            for _ in range(repeats):
                result = executor.execute(built.dataset, make())
                seconds = result.stats.wall_seconds
                best = seconds if best is None else min(best, seconds)
            timings[mode] = best
            result_rows[mode] = result.rows
            if mode == "batch":
                engaged = result.stats.execution_mode
                fallback = result.stats.fallback_reason
        shape_check(f"{workload} {query_name}: batch and row modes return identical rows",
                    result_rows["batch"] == result_rows["row"])
        speedup = (timings["row"] / timings["batch"]) if timings["batch"] else float("inf")
        measurements[query_name] = {
            "row_seconds": timings["row"],
            "batch_seconds": timings["batch"],
            "speedup": speedup,
            "mode": engaged,
            "fallback": fallback,
        }
        rows.append({
            "Query": query_name,
            "Mode": "batch" if engaged == "batch" else f"row ({fallback})",
            "Row CPU (s)": timings["row"],
            "Batch CPU (s)": timings["batch"],
            "Speedup": speedup,
        })
    return rows, measurements


def repeated_query_caching(workload: str, query_names: Sequence[str],
                           format_name: str = "inferred",
                           repeats: int = 3) -> Tuple[List[Dict[str, Any]], Dict]:
    """Cold-vs-warm repeated execution of the same SQL++ texts (PR 10 caches).

    The cold run starts from nothing reusable — plans invalidated, buffer
    *and* column-slice caches dropped — and each warm repeat goes through
    ``Dataset.query(text)`` again, so the plan cache must serve the compiled
    plan and the column-slice cache the decoded scan columns.  Returns
    printable rows plus, per query: cold/warm wall seconds (full call,
    including parse→bind→optimize on the cold side), the speedup, device
    bytes read per run, and the plan/column cache hit counters observed
    across the warm repeats.  Row equality between the cold and every warm
    run is asserted here.
    """
    from repro.obs import metrics_delta

    built = build_dataset(workload, format_name)
    generator = GENERATORS[workload]
    dataset = built.dataset
    rows: List[Dict[str, Any]] = []
    measurements: Dict[str, Dict[str, Any]] = {}
    for query_name in query_names:
        text = generator.SQLPP[query_name]
        dataset.invalidate_plans()
        built.environment.drop_caches()
        started = time.perf_counter()
        cold = dataset.query(text)
        cold_seconds = time.perf_counter() - started
        before = dataset.metrics.snapshot()
        best = None
        warm = None
        for _ in range(repeats):
            started = time.perf_counter()
            warm = dataset.query(text)
            seconds = time.perf_counter() - started
            best = seconds if best is None else min(best, seconds)
            shape_check(f"{workload} {query_name}: warm-cache rows identical to cold run",
                        warm.rows == cold.rows)
        counters = metrics_delta(dataset.metrics.snapshot(), before).get("counters", {})
        speedup = (cold_seconds / best) if best else float("inf")
        measurements[query_name] = {
            "cold_seconds": cold_seconds,
            "warm_seconds": best,
            "speedup": speedup,
            "cold_bytes": cold.stats.bytes_read,
            "warm_bytes": warm.stats.bytes_read,
            "plan_cache_hits": counters.get("plan_cache_hits", 0),
            "column_cache_hits": counters.get("column_cache_hits", 0),
            "plan_source": warm.stats.plan_source,
        }
        rows.append({
            "Query": query_name,
            "Cold (s)": cold_seconds,
            "Warm best (s)": best,
            "Speedup": speedup,
            "Cold bytes": cold.stats.bytes_read,
            "Warm bytes": warm.stats.bytes_read,
            "Plan": warm.stats.plan_source,
        })
    return rows, measurements


def check_warm_cache_speedup(workload: str, measurements: Dict, queries: Iterable[str],
                             min_speedup: float) -> None:
    """Warm repeats must beat the cold run and read strictly fewer device bytes."""
    for query_name in queries:
        measurement = measurements[query_name]
        shape_check(f"{workload} {query_name}: warm repeat hits the plan cache "
                    f"(source: {measurement['plan_source']})",
                    measurement["plan_source"] == "cache"
                    and measurement["plan_cache_hits"] > 0)
        shape_check(f"{workload} {query_name}: warm repeat hits the column-slice "
                    f"cache ({measurement['column_cache_hits']} hits)",
                    measurement["column_cache_hits"] > 0)
        shape_check(f"{workload} {query_name}: warm run reads strictly fewer device "
                    f"bytes ({measurement['warm_bytes']} vs {measurement['cold_bytes']})",
                    measurement["warm_bytes"] < measurement["cold_bytes"])
        shape_check(f"{workload} {query_name}: warm execution is >= {min_speedup:.1f}x "
                    f"faster than cold (measured {measurement['speedup']:.2f}x)",
                    measurement["speedup"] >= min_speedup)


def check_batch_engages(workload: str, measurements: Dict,
                        queries: Iterable[str]) -> None:
    """The batch planner must accept these queries (no silent row fallback)."""
    for query_name in queries:
        measurement = measurements[query_name]
        shape_check(f"{workload} {query_name}: batch execution engages "
                    f"(fallback: {measurement['fallback']})",
                    measurement["mode"] == "batch")


def check_batch_speedup(workload: str, measurements: Dict, queries: Iterable[str],
                        min_speedup: float) -> None:
    """Batch mode must beat row mode by ``min_speedup``x on these queries."""
    for query_name in queries:
        measurement = measurements[query_name]
        shape_check(f"{workload} {query_name}: batch execution engages "
                    f"(fallback: {measurement['fallback']})",
                    measurement["mode"] == "batch")
        shape_check(f"{workload} {query_name}: batch is >= {min_speedup:.1f}x faster "
                    f"than row (measured {measurement['speedup']:.2f}x)",
                    measurement["speedup"] >= min_speedup)


# ---------------------------------------------------------------------------
# reporting helpers
# ---------------------------------------------------------------------------

def query_figure(workload: str, formats: Sequence[str] = ("open", "closed", "inferred"),
                 compressions: Sequence[Optional[str]] = (None, "snappy"),
                 queries: Optional[Dict[str, Any]] = None) -> Tuple[List[Dict[str, Any]], Dict]:
    """Shared driver of the Figure 18/19/20 query experiments.

    Runs each of the workload's Q1–Q4 once per (format, compression)
    configuration with a cold buffer cache and reports, per run: the measured
    CPU (wall) seconds, the bytes read, and the simulated I/O seconds on both
    the SATA and NVMe profiles.  Each run's device-specific headline time is
    CPU + simulated I/O for that device, mirroring how the paper's execution
    times combine both costs.
    """
    queries = queries or GENERATORS[workload].QUERIES
    rows: List[Dict[str, Any]] = []
    measurements: Dict[Tuple[str, Optional[str], str], Dict[str, float]] = {}
    for compression in compressions:
        for format_name in formats:
            built = build_dataset(workload, format_name, compression=compression)
            for query_name, build_query in queries.items():
                result = run_query(built, build_query(), cold=True)
                stats = result.stats
                sata = simulated_device_seconds(stats, DeviceKind.SATA_SSD)
                nvme = simulated_device_seconds(stats, DeviceKind.NVME_SSD)
                measurement = {
                    "cpu": stats.wall_seconds,
                    "bytes_read": stats.bytes_read,
                    "sata_io": sata,
                    "nvme_io": nvme,
                    "sata_total": stats.wall_seconds + sata,
                    "nvme_total": stats.wall_seconds + nvme,
                    "rows": len(result.rows),
                }
                measurements[(format_name, compression, query_name)] = measurement
                rows.append({
                    "Query": query_name,
                    "Format": format_name,
                    "Compression": compression or "none",
                    "CPU (s)": measurement["cpu"],
                    "Bytes read": measurement["bytes_read"],
                    "SATA I/O (s)": sata,
                    "NVMe I/O (s)": nvme,
                })
    return rows, measurements


def check_io_correlates_with_storage(workload: str, measurements: Dict,
                                     queries: Iterable[str],
                                     compressions: Sequence[Optional[str]] = (None, "snappy")) -> None:
    """The paper's SATA observation: execution cost correlates with on-disk size.

    Our faithful proxy is bytes read (and hence simulated I/O time): for every
    query and compression setting the inferred dataset must read no more than
    the closed dataset, which must read no more than the open dataset.
    """
    for compression in compressions:
        for query_name in queries:
            open_bytes = measurements[("open", compression, query_name)]["bytes_read"]
            closed_bytes = measurements[("closed", compression, query_name)]["bytes_read"]
            inferred_bytes = measurements[("inferred", compression, query_name)]["bytes_read"]
            shape_check(
                f"{workload} {query_name} ({compression or 'raw'}): bytes read follow "
                "inferred <= closed <= open",
                inferred_bytes <= closed_bytes * 1.05 and closed_bytes <= open_bytes * 1.05,
            )


def check_compression_reduces_io(workload: str, measurements: Dict, queries: Iterable[str],
                                 formats: Sequence[str] = ("open", "closed", "inferred")) -> None:
    for format_name in formats:
        for query_name in queries:
            raw = measurements[(format_name, None, query_name)]["bytes_read"]
            compressed = measurements[(format_name, "snappy", query_name)]["bytes_read"]
            shape_check(f"{workload} {query_name}: compression reduces bytes read for {format_name}",
                        compressed < raw)


def check_sqlpp_parity(workload: str, queries: Iterable[str],
                       format_name: str = "inferred") -> None:
    """The workload's SQL++ query texts compile to plans whose output matches
    the fluent-builder plans' output on the same dataset (Appendix A texts)."""
    from repro.sqlpp import compile as compile_sqlpp

    generator = GENERATORS[workload]
    built = build_dataset(workload, format_name)
    executor = QueryExecutor()
    for query_name in queries:
        builder_rows = executor.execute(built.dataset,
                                        generator.QUERIES[query_name]()).rows
        sqlpp_rows = executor.execute(built.dataset,
                                      compile_sqlpp(generator.SQLPP[query_name]).spec).rows
        shape_check(f"{workload} {query_name}: SQL++ text and builder plan agree",
                    builder_rows == sqlpp_rows)


def check_results_agree(measurements: Dict, queries: Iterable[str],
                        formats: Sequence[str] = ("open", "closed", "inferred")) -> None:
    """All configurations must return the same number of rows for each query."""
    for query_name in queries:
        counts = {measurements[(format_name, compression, query_name)]["rows"]
                  for format_name in formats for compression in (None, "snappy")
                  if (format_name, compression, query_name) in measurements}
        shape_check(f"{query_name}: every configuration returns the same row count",
                    len(counts) == 1)


def lifecycle_columns(report: FeedReport) -> Dict[str, Any]:
    """Flush/merge lifecycle metrics every ingest table reports (and exports
    into the benchmark JSON via ``benchmark.extra_info``)."""
    data = report.to_dict()
    return {"Flushes": data["flushes"], "Merges": data["merges"],
            "Write amp": data["write_amplification"],
            "Stall (s)": data["ingest_stall_seconds"]}


#: FeedReport.to_dict() keys exported per run into ``benchmark.extra_info``.
_LIFECYCLE_JSON_FIELDS = ("flushes", "merges", "write_amplification",
                          "ingest_stall_seconds")


def lifecycle_json(report: FeedReport, **extra: Any) -> Dict[str, Any]:
    """One ``benchmark.extra_info`` entry built from a feed report."""
    data = report.to_dict()
    entry = {name: data[name] for name in _LIFECYCLE_JSON_FIELDS}
    if report.metrics:
        entry["metrics"] = metrics_summary(report.metrics)
    entry.update(extra)
    return entry


def metrics_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Headline numbers plus the raw instruments of a metrics-registry
    snapshot (or a :func:`repro.obs.metrics_delta` between two snapshots) —
    the JSON every benchmark attaches to ``benchmark.extra_info``."""
    counters = snapshot.get("counters", {})
    hits = counters.get("cache_hits", 0)
    misses = counters.get("cache_misses", 0)
    flushed = counters.get("lsm_bytes_flushed", 0)
    merged = counters.get("lsm_bytes_merged", 0)
    return {
        "cache_hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "write_amplification": (flushed + merged) / flushed if flushed else 0.0,
        "ingest_stall_seconds": counters.get("lsm_ingest_stall_seconds", 0.0),
        "queries_executed": counters.get("queries_executed", 0),
        "counters": dict(counters),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": dict(snapshot.get("histograms", {})),
    }


def mb(n_bytes: float) -> float:
    return n_bytes / (1024 * 1024)


def print_table(title: str, rows: List[Dict[str, Any]]) -> None:
    """Print rows as an aligned table (the figure/table the module reproduces)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("  (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {column: max(len(str(column)), max(len(_fmt(row.get(column))) for row in rows))
              for column in columns}
    header = "  " + " | ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("  " + "-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        print("  " + " | ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def shape_check(label: str, condition: bool) -> None:
    """Assert a qualitative 'shape' claim from the paper, with a clear message."""
    assert condition, f"shape check failed: {label}"
