"""Figure 26 — scale-out query performance (Twitter Q1–Q4).

With data scaled proportionally to the cluster size, the paper's query times
stay roughly flat as nodes are added (linear scale-out), the inferred
dataset is the fastest at every size, and the schema broadcast required by
the repartitioning queries (Q2/Q3) has no visible impact.

Checked shapes on the simulator: (i) the *per-node parallel* time — the
metric a real cluster would observe — grows far slower than the total
sequential work as nodes double, (ii) the schema broadcast happens exactly
for the repartitioning queries on the inferred dataset and its byte volume
is negligible next to the data read, and (iii) the bytes-read ordering
inferred < open holds at every cluster size.
"""

from harness import print_table, shape_check

from bench_fig25_scaleout_ingest import NODE_COUNTS, build_cluster

from repro.datasets import twitter

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


def _figure26():
    rows = []
    measurements = {}
    from repro.query import QueryExecutor

    executor = QueryExecutor(cold_cache=True)
    for nodes in NODE_COUNTS:
        clusters = {format_name: build_cluster(nodes, format_name)[0]
                    for format_name in ("open", "inferred")}
        for format_name, cluster in clusters.items():
            for query_name in QUERY_NAMES:
                report = cluster.execute("tweets", twitter.QUERIES[query_name](), executor)
                measurements[(nodes, format_name, query_name)] = report
                rows.append({"Nodes": nodes, "Format": format_name, "Query": query_name,
                             "Parallel (s)": report.parallel_seconds,
                             "Sequential (s)": report.sequential_seconds,
                             "Broadcast bytes": report.schema_broadcast_bytes,
                             "Rows": len(report.result.rows)})
    return rows, measurements


def test_fig26_scaleout_queries(benchmark):
    rows, measurements = benchmark.pedantic(_figure26, rounds=1, iterations=1)
    print_table("Figure 26 — scale-out query performance", rows)

    smallest, largest = NODE_COUNTS[0], NODE_COUNTS[-1]
    for query_name in QUERY_NAMES:
        small = measurements[(smallest, "inferred", query_name)]
        large = measurements[(largest, "inferred", query_name)]
        sequential_growth = large.sequential_seconds / max(small.sequential_seconds, 1e-9)
        parallel_growth = large.parallel_seconds / max(small.parallel_seconds, 1e-9)
        shape_check(f"{query_name}: parallel time scales far better than sequential work",
                    parallel_growth < sequential_growth)
        shape_check(f"{query_name}: bytes read are lower for inferred than open",
                    measurements[(largest, "inferred", query_name)].result.stats.bytes_read
                    <= measurements[(largest, "open", query_name)].result.stats.bytes_read * 1.05)

    # Schema broadcast: only the repartitioning queries on the inferred dataset ship
    # schemas.  At the paper's 3.2 TB scale the broadcast volume is utterly
    # negligible; at this harness's few-MB scale it is merely *small*, so the check
    # uses a generous bound and the per-query volumes are printed above.
    for query_name in ("Q2", "Q3"):
        report = measurements[(largest, "inferred", query_name)]
        shape_check(f"{query_name}: repartitioning query broadcast schemas",
                    report.schema_broadcast_bytes > 0)
        shape_check(f"{query_name}: broadcast volume is small relative to the data read",
                    report.schema_broadcast_bytes < 0.35 * max(report.result.stats.bytes_read, 1))
    q1_report = measurements[(largest, "open", "Q1")]
    shape_check("non-vector datasets never broadcast schemas", q1_report.schema_broadcast_bytes == 0)
