"""Figure 26 — scale-out query performance (Twitter Q1–Q4).

With data scaled proportionally to the cluster size, the paper's query times
stay roughly flat as nodes are added (linear scale-out), the inferred
dataset is the fastest at every size, and the schema broadcast required by
the repartitioning queries (Q2/Q3) has no visible impact.

Since PR 3 the executor fans partitions out over a real worker pool, so the
"Parallel (s)" column is *measured* wall time, not a simulated maximum, and
the measured speedup (sequential-equivalent over wall) is reported per run.
The node devices run with a latency-realism throttle (enabled after
ingestion) so cold reads cost real, GIL-releasing wall time — otherwise the
pure-Python CPU work would serialize on the GIL and hide the overlap a real
cluster gets for free.

Checked shapes on the simulator: (i) the measured parallel time grows far
slower than the total sequential-equivalent work as nodes double, (ii) real
overlap happens — the largest cluster's measured speedup clearly exceeds 1,
(iii) the schema broadcast happens exactly for the repartitioning queries on
the inferred dataset and its byte volume is negligible next to the data
read, and (iv) the bytes-read ordering inferred < open holds at every
cluster size.
"""

from harness import print_table, scale_factor, shape_check

from bench_fig25_scaleout_ingest import NODE_COUNTS, build_cluster

from repro.datasets import twitter

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")

#: Fraction of simulated device seconds each node actually sleeps during the
#: query runs (see SimulatedStorageDevice.throttle).  Sized so cold-read
#: latency, not Python CPU time, dominates each partition pipeline.
QUERY_IO_THROTTLE = 100.0


def _figure26():
    rows = []
    measurements = {}
    from repro.query import QueryExecutor

    for nodes in NODE_COUNTS:
        clusters = {format_name: build_cluster(nodes, format_name,
                                               io_throttle=QUERY_IO_THROTTLE)[0]
                    for format_name in ("open", "inferred")}
        for format_name, cluster in clusters.items():
            # Explicit width (one worker per partition): the speedup shape
            # checks must not depend on the ambient REPRO_PARALLELISM default.
            executor = QueryExecutor(cold_cache=True,
                                     parallelism=cluster.total_partitions())
            for query_name in QUERY_NAMES:
                report = cluster.execute("tweets", twitter.QUERIES[query_name](), executor)
                measurements[(nodes, format_name, query_name)] = report
                rows.append({"Nodes": nodes, "Format": format_name, "Query": query_name,
                             "Parallel (s)": report.parallel_seconds,
                             "Measured wall (s)": report.measured_wall_seconds,
                             "Seq-equivalent (s)": report.sequential_seconds,
                             "Speedup": report.measured_speedup,
                             "Workers": report.parallelism,
                             "Broadcast bytes": report.schema_broadcast_bytes,
                             "Rows": len(report.result.rows)})
    return rows, measurements


def test_fig26_scaleout_queries(benchmark):
    rows, measurements = benchmark.pedantic(_figure26, rounds=1, iterations=1)
    print_table("Figure 26 — scale-out query performance", rows)

    smallest, largest = NODE_COUNTS[0], NODE_COUNTS[-1]
    for query_name in QUERY_NAMES:
        small = measurements[(smallest, "inferred", query_name)]
        large = measurements[(largest, "inferred", query_name)]
        sequential_growth = large.sequential_seconds / max(small.sequential_seconds, 1e-9)
        parallel_growth = large.parallel_seconds / max(small.parallel_seconds, 1e-9)
        shape_check(f"{query_name}: measured parallel time scales far better than sequential work",
                    parallel_growth < sequential_growth)
        shape_check(f"{query_name}: bytes read are lower for inferred than open",
                    measurements[(largest, "inferred", query_name)].result.stats.bytes_read
                    <= measurements[(largest, "open", query_name)].result.stats.bytes_read * 1.05)

    # Real overlap: at the largest cluster the worker pool must beat the
    # sequential-equivalent time outright.  The bound is deliberately loose
    # (the throttled device sleeps overlap perfectly; Python CPU time does
    # not), asserted only where the fan-out is widest.
    for query_name in QUERY_NAMES:
        report = measurements[(largest, "inferred", query_name)]
        shape_check(f"{query_name}: measured speedup beats 1.15x at {largest} nodes "
                    f"(got {report.measured_speedup:.2f})",
                    report.measured_speedup > 1.15)
        shape_check(f"{query_name}: wall time below sequential-equivalent",
                    report.measured_wall_seconds < report.sequential_seconds)

    # Schema broadcast: only the repartitioning queries on the inferred dataset ship
    # schemas.  At the paper's 3.2 TB scale the broadcast volume is utterly
    # negligible; at this harness's few-MB scale it is merely *small*, so the check
    # uses a generous bound.  The broadcast payload is a function of the schema,
    # not of the data volume, so when REPRO_BENCH_SCALE shrinks the data the
    # bound is widened proportionally (the per-query volumes are printed above).
    broadcast_bound = 0.35 / scale_factor()
    for query_name in ("Q2", "Q3"):
        report = measurements[(largest, "inferred", query_name)]
        shape_check(f"{query_name}: repartitioning query broadcast schemas",
                    report.schema_broadcast_bytes > 0)
        shape_check(f"{query_name}: broadcast volume is small relative to the data read",
                    report.schema_broadcast_bytes
                    < broadcast_bound * max(report.result.stats.bytes_read, 1))
    q1_report = measurements[(largest, "open", "Q1")]
    shape_check("non-vector datasets never broadcast schemas", q1_report.schema_broadcast_bytes == 0)
