"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` (legacy editable install) keeps working
on machines without the ``wheel`` package or network access for build
isolation.
"""

from setuptools import setup

setup()
