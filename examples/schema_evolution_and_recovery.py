#!/usr/bin/env python3
"""Schema evolution and crash recovery with the tuple compactor.

This example walks through the operational story the paper tells in §3.1:

* the schema grows as records with new fields and new value types arrive
  (including a field whose type changes from int to union(int, string));
* every flushed LSM component persists the schema snapshot that covers it;
* merging components keeps only the most recent schema;
* after a "crash" (the process forgets all in-memory state), recovery
  removes the invalid half-written component, reloads the newest valid
  component's schema, replays the write-ahead log, and flushes — after
  which queries see exactly the pre-crash data again.

Run with::

    python examples/schema_evolution_and_recovery.py
"""

from repro import Dataset, StorageEnvironment, StorageFormat
from repro.query import QueryExecutor, field, scan


def show_components(dataset: Dataset) -> None:
    partition = dataset.partitions[0]
    for component in partition.index.components:
        schema_fields = component.schema.field_count if component.schema else 0
        print(f"    component {component.component_id}: "
              f"{component.record_count} records, schema fields={schema_fields}")


def main() -> None:
    environment = StorageEnvironment()
    # The with-block is the drain/close protocol: on exit, any background
    # flushes/merges are quiesced deterministically (no-op in sync mode).
    with Dataset.create("events", StorageFormat.INFERRED, environment=environment) as dataset:
        run_phases(dataset, environment)


def run_phases(dataset: Dataset, environment: StorageEnvironment) -> None:

    print("== Phase 1: the schema evolves across flushes ==")
    dataset.insert({"id": 1, "kind": "click", "value": 10})
    dataset.insert({"id": 2, "kind": "click", "value": 12})
    dataset.flush_all()
    print("  after flush 1:")
    show_components(dataset)

    dataset.insert({"id": 3, "kind": "purchase", "value": "29.99 USD",      # value becomes a union
                    "items": [{"sku": "A1", "qty": 2}]})
    dataset.insert({"id": 4, "kind": "click", "value": 7, "session": {"ip": "10.0.0.1"}})
    dataset.flush_all()
    print("  after flush 2:")
    show_components(dataset)
    print("  current schema:")
    print("   " + "\n   ".join(dataset.describe_schema().splitlines()))
    print()

    print("== Phase 2: merge keeps the most recent schema ==")
    partition = dataset.partitions[0]
    partition.index.merge(list(partition.index.components))
    show_components(dataset)
    print()

    print("== Phase 3: crash and recover ==")
    dataset.insert({"id": 5, "kind": "refund", "value": -5, "reason": "damaged"})
    dataset.insert({"id": 6, "kind": "click", "value": 3})
    print("  two more records inserted but NOT flushed (only in WAL + memtable)")

    # Crash: throw the dataset object away; keep the environment (files + WAL).
    revived = Dataset.create("events", StorageFormat.INFERRED, environment=environment)
    for partition in revived.partitions:
        partition.recover()
    print("  recovered. record count:", revived.count())
    print("  recovered schema contains 'reason':",
          revived.partitions[0].compactor.schema.field_name_id("reason") is not None)

    query = (scan("e")
             .group_by(("kind", field("e", "kind")))
             .aggregate("n", "count", None)
             .order_by("n", descending=True)
             .build())
    rows = QueryExecutor().execute(revived, query).rows
    print("  events by kind after recovery:", rows)


if __name__ == "__main__":
    main()
