#!/usr/bin/env python3
"""Quickstart: the paper's Employee example end to end.

Creates a dataset with the tuple compactor enabled (the ``WITH
{"tuple-compactor-enabled": true}`` clause of paper Figure 8), ingests a few
self-describing records, flushes them, and shows:

* the schema the tuple compactor inferred during the flush (Figures 9-10);
* that records on disk are stored compacted (field names stripped);
* how the schema shrinks again after deleting the only record that carried
  the rarely-used fields (Figure 11);
* the same analytics query running twice against the compacted records —
  once through the fluent builder and once as SQL++ text compiled by
  ``repro.sqlpp`` (``Dataset.query``) — returning identical rows.

Run with::

    python examples/quickstart.py
"""

from repro import ADate, AMultiset, APoint, Dataset, StorageFormat
from repro.query import Func, QueryExecutor, field, scan


def main() -> None:
    # CREATE DATASET Employee(EmployeeType) PRIMARY KEY id
    #   WITH {"tuple-compactor-enabled": true};
    # The context manager quiesces background LSM maintenance (flushes and
    # merges scheduled off the ingest path when REPRO_LSM_SCHEDULER is set)
    # deterministically on exit; with synchronous maintenance it is a no-op.
    with Dataset.create("Employee", StorageFormat.INFERRED, primary_key="id") as employees:
        run_demo(employees)


def run_demo(employees: Dataset) -> None:
    print("== Ingesting records (paper Figures 9 and 10) ==")
    employees.insert({"id": 0, "name": "Kim", "age": 26})
    employees.insert({"id": 1, "name": "John", "age": 22})
    employees.flush_all()                       # flush #1 -> component C0, schema S0

    employees.insert({"id": 2, "name": "Ann"})
    employees.insert({"id": 3, "name": "Bob", "age": "old"})   # age becomes union(int, string)
    rich_record = {
        "id": 4,
        "name": "Ann",
        "dependents": AMultiset([{"name": "Bob", "age": 6}, {"name": "Carol", "age": 10}]),
        "employment_date": ADate.from_iso("2018-09-20"),
        "branch_location": APoint(24.0, -56.12),
        "working_shifts": [[8, 16], [9, 17], [10, 18], "on_call"],
    }
    employees.insert(rich_record)
    employees.flush_all()                       # flush #2 -> component C1, schema S1

    print("Inferred schema after two flushes:")
    print(employees.describe_schema())
    print()

    print("== Storage ==")
    print(f"records stored      : {employees.count()}")
    print(f"on-disk size        : {employees.storage_size()} bytes")
    compactor = employees.partitions[0].compactor
    print(f"records compacted   : {compactor.records_compacted}")
    print(f"bytes saved         : {compactor.bytes_saved}")
    print()

    print("== Querying compacted records (fluent builder) ==")
    query = (scan("e")
             .group_by(("name", field("e", "name")))
             .aggregate("count", "count", None)
             .aggregate("avg_name_len", "avg", Func("length", field("e", "name")))
             .order_by("count", descending=True)
             .build())
    result = QueryExecutor().execute(employees, query)
    for row in result.rows:
        print(f"  {row}")
    print()

    print("== The same query as SQL++ text (repro.sqlpp) ==")
    text_result = employees.query("""
        SELECT name, count(*) AS count, avg(length(e.name)) AS avg_name_len
        FROM Employee AS e
        GROUP BY e.name AS name
        ORDER BY count DESC
    """)
    for row in text_result.rows:
        print(f"  {row}")
    assert text_result.rows == result.rows, "textual and builder plans must agree"
    print()

    print("== Deleting the rich record shrinks the schema (Figure 11) ==")
    employees.delete(4)
    employees.flush_all()
    print(employees.describe_schema())


if __name__ == "__main__":
    main()
