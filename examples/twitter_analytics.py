#!/usr/bin/env python3
"""Social-media analytics: open vs inferred storage on a Twitter-like feed.

Mirrors the paper's headline scenario — a data scientist ingests a stream of
tweets without declaring any schema — and compares the two ways this library
can store them:

* ``OPEN``     — self-describing ADM records (what MongoDB/Couchbase do);
* ``INFERRED`` — vector-based records compacted by the tuple compactor.

The script ingests the same synthetic tweet stream into both datasets
through a data feed, compares on-disk sizes (with and without page
compression), and runs the paper's Twitter Q2 and Q3 analytics queries
against both, reporting wall-clock and simulated-I/O times.

Run with::

    python examples/twitter_analytics.py [record_count]
"""

import sys

from repro import Dataset, DeviceKind, LSMConfig, StorageEnvironment, StorageFormat
from repro.cluster import DataFeed
from repro.datasets import twitter
from repro.query import QueryExecutor


def build(storage_format: StorageFormat, compression, records):
    environment = StorageEnvironment.for_device(DeviceKind.SATA_SSD, compression=compression)
    # Ingest with the asynchronous LSM lifecycle: flushes/merges run on a
    # background scheduler and, with several partitions, one ingest thread
    # per partition keeps the feed overlapping with maintenance.
    dataset = Dataset.create(f"tweets_{storage_format.value}_{compression or 'raw'}",
                             storage_format, environment=environment, partitions=2,
                             lsm=LSMConfig(background_maintenance=True))
    feed = DataFeed(dataset, per_partition_ingest=True)
    report = feed.run(records)
    feed.close()
    return dataset, report


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    records = list(twitter.generate(count))
    print(f"Ingesting {count} tweet-like records into four datasets...\n")

    configurations = [
        (StorageFormat.OPEN, None, "open, uncompressed"),
        (StorageFormat.OPEN, "snappy", "open, compressed"),
        (StorageFormat.INFERRED, None, "inferred (tuple compactor), uncompressed"),
        (StorageFormat.INFERRED, "snappy", "inferred (tuple compactor), compressed"),
    ]

    datasets = {}
    print(f"{'configuration':45s} {'on-disk size':>14s} {'ingest time':>12s}")
    for storage_format, compression, label in configurations:
        dataset, report = build(storage_format, compression, records)
        datasets[label] = dataset
        print(f"{label:45s} {dataset.storage_size():>12,} B {report.total_seconds:>10.2f} s")
    print()

    executor = QueryExecutor(cold_cache=True)
    for query_name in ("Q2", "Q3"):
        # The queries run from their Appendix A SQL++ text: Dataset.query()
        # compiles the string through repro.sqlpp into the same plan the
        # fluent builder (twitter.QUERIES) produces.
        print(f"== Twitter {query_name} ==")
        print("   " + " ".join(twitter.SQLPP[query_name].split()))
        for label, dataset in datasets.items():
            result = dataset.query(twitter.SQLPP[query_name], executor=executor)
            stats = result.stats
            print(f"  {label:45s} wall={stats.wall_seconds:6.3f}s "
                  f"simulated-io={stats.simulated_io_seconds:6.3f}s rows={len(result.rows)}")
        print(f"  top row: {result.rows[0]}")
        print()

    inferred = datasets["inferred (tuple compactor), uncompressed"]
    print("Inferred schema (first partition), abbreviated to 15 lines:")
    print("\n".join(inferred.describe_schema().splitlines()[:15]))

    # Quiesce the background flush/merge workers deterministically.
    for dataset in datasets.values():
        dataset.close()


if __name__ == "__main__":
    main()
